"""Validation helpers for system graphs and routing functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import RoutingError, TopologyError
from repro.model.message import Communication
from repro.topology.network import Network
from repro.topology.routing import RoutingBase


@dataclass(frozen=True)
class DegreeReport:
    """Port usage of every switch against a degree bound."""

    max_allowed: int
    degrees: Tuple[Tuple[int, int], ...]  # (switch id, degree)

    @property
    def violators(self) -> Tuple[int, ...]:
        return tuple(s for s, d in self.degrees if d > self.max_allowed)

    @property
    def satisfied(self) -> bool:
        return not self.violators


def degree_report(network: Network, max_degree: int) -> DegreeReport:
    """Check every switch's port count against ``max_degree``."""
    return DegreeReport(
        max_allowed=max_degree,
        degrees=tuple((s, network.degree(s)) for s in network.switches),
    )


def check_routes_valid(
    network: Network,
    routing: RoutingBase,
    communications: Iterable[Communication],
) -> None:
    """Verify a routing function produces connected, well-formed routes.

    Every route must start at the source's switch, end at the
    destination's switch, and traverse only existing links in a
    contiguous walk.  Raises :class:`RoutingError` on the first failure.
    """
    for comm in sorted(set(communications)):
        route = routing.route(comm)
        path = route.switch_path
        if network.switch_of(comm.source) != path[0]:
            raise RoutingError(f"route for {comm} starts at the wrong switch")
        if network.switch_of(comm.dest) != path[-1]:
            raise RoutingError(f"route for {comm} ends at the wrong switch")
        if len(route.hops) != len(path) - 1:
            raise RoutingError(f"route for {comm} has mismatched hop count")
        for (u, v), hop in zip(zip(path, path[1:]), route.hops):
            if len(hop) != 3 or hop[0] != "link":
                raise RoutingError(
                    f"route for {comm} has a malformed hop {hop!r} "
                    "(expected ('link', link_id, direction))"
                )
            _, link_id, direction = hop
            try:
                link = network.link(link_id)
            except TopologyError:
                raise RoutingError(
                    f"route for {comm} uses link {link_id} which does not "
                    "exist in the network"
                ) from None
            if direction not in (0, 1):
                raise RoutingError(
                    f"route for {comm} uses link {link_id} with invalid "
                    f"direction {direction!r}"
                )
            expected = (link.u, link.v) if direction == 0 else (link.v, link.u)
            if expected != (u, v):
                raise RoutingError(
                    f"route for {comm} traverses link {link_id} inconsistently "
                    f"({expected} vs ({u}, {v}))"
                )
        if len(set(path)) != len(path):
            raise RoutingError(f"route for {comm} revisits a switch: {path}")


def require_connected(network: Network) -> None:
    """Raise :class:`TopologyError` unless the switch graph is connected."""
    if not network.is_connected():
        raise TopologyError("network switch graph is not connected")
