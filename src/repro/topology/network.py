"""System graphs (paper Definition 1).

A :class:`Network` is a graph of switches and processors.  Processors
attach to exactly one switch each through an implicit full-duplex
injection/ejection link pair; switches are joined by explicit
full-duplex links, and a pair of switches may be connected by more than
one link (Definition 1 allows parallel links, and the synthesis
methodology relies on them).

Link resources
--------------
The contention model counts *directed* channels.  Each physical entity
contributes tokens:

* ``("inj", p)`` — processor ``p``'s injection channel into its switch,
* ``("ej", p)`` — the ejection channel from the switch to ``p``,
* ``("link", link_id, 0)`` — the ``u -> v`` direction of a link,
* ``("link", link_id, 1)`` — the ``v -> u`` direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError

LinkResource = Tuple


@dataclass(frozen=True)
class Link:
    """One full-duplex link between two switches."""

    link_id: int
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise TopologyError(f"link {self.link_id} is a self-loop on switch {self.u}")

    def other(self, switch: int) -> int:
        """The endpoint opposite ``switch``."""
        if switch == self.u:
            return self.v
        if switch == self.v:
            return self.u
        raise TopologyError(f"switch {switch} is not an endpoint of link {self.link_id}")

    def direction_from(self, switch: int) -> int:
        """0 when traversed ``u -> v``, 1 when traversed ``v -> u``."""
        if switch == self.u:
            return 0
        if switch == self.v:
            return 1
        raise TopologyError(f"switch {switch} is not an endpoint of link {self.link_id}")

    def resource(self, from_switch: int) -> LinkResource:
        """The directed channel token for traversal out of ``from_switch``."""
        return ("link", self.link_id, self.direction_from(from_switch))


def injection_resource(processor: int) -> LinkResource:
    """Directed channel token for a processor's injection link."""
    return ("inj", processor)


def ejection_resource(processor: int) -> LinkResource:
    """Directed channel token for a processor's ejection link."""
    return ("ej", processor)


class Network:
    """A mutable switch/processor graph with parallel links.

    Switches are integer ids managed by the network; processors are
    integers ``0..num_processors-1`` and each must be attached to
    exactly one switch before the network is used.
    """

    def __init__(self, num_processors: int) -> None:
        if num_processors <= 0:
            raise TopologyError(f"need at least one processor, got {num_processors}")
        self.num_processors = num_processors
        self._switch_procs: Dict[int, Set[int]] = {}
        self._proc_switch: Dict[int, int] = {}
        self._links: Dict[int, Link] = {}
        self._adj: Dict[int, Dict[int, List[int]]] = {}
        self._next_switch = 0
        self._next_link = 0

    # -- construction -------------------------------------------------

    def add_switch(self) -> int:
        """Create a new switch and return its id."""
        sid = self._next_switch
        self._next_switch += 1
        self._switch_procs[sid] = set()
        self._adj[sid] = {}
        return sid

    def attach_processor(self, processor: int, switch: int) -> None:
        """Attach ``processor`` to ``switch`` (each processor exactly once)."""
        self._require_switch(switch)
        if not 0 <= processor < self.num_processors:
            raise TopologyError(f"processor {processor} outside range(0, {self.num_processors})")
        if processor in self._proc_switch:
            raise TopologyError(f"processor {processor} is already attached")
        self._proc_switch[processor] = switch
        self._switch_procs[switch].add(processor)

    def add_link(self, u: int, v: int) -> int:
        """Add one full-duplex link between switches ``u`` and ``v``."""
        self._require_switch(u)
        self._require_switch(v)
        link = Link(self._next_link, u, v)
        self._next_link += 1
        self._links[link.link_id] = link
        self._adj[u].setdefault(v, []).append(link.link_id)
        self._adj[v].setdefault(u, []).append(link.link_id)
        return link.link_id

    def remove_link(self, link_id: int) -> None:
        """Remove a link by id."""
        link = self.link(link_id)
        del self._links[link_id]
        self._adj[link.u][link.v].remove(link_id)
        if not self._adj[link.u][link.v]:
            del self._adj[link.u][link.v]
        self._adj[link.v][link.u].remove(link_id)
        if not self._adj[link.v][link.u]:
            del self._adj[link.v][link.u]

    # -- queries ------------------------------------------------------

    @property
    def switches(self) -> Tuple[int, ...]:
        return tuple(sorted(self._switch_procs))

    @property
    def links(self) -> Tuple[Link, ...]:
        return tuple(self._links[i] for i in sorted(self._links))

    @property
    def num_switches(self) -> int:
        return len(self._switch_procs)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def link(self, link_id: int) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"no link with id {link_id}") from None

    def switch_of(self, processor: int) -> int:
        """The switch a processor is attached to."""
        try:
            return self._proc_switch[processor]
        except KeyError:
            raise TopologyError(f"processor {processor} is not attached to a switch") from None

    def processors_of(self, switch: int) -> FrozenSet[int]:
        """Processors attached to a switch."""
        self._require_switch(switch)
        return frozenset(self._switch_procs[switch])

    def neighbors(self, switch: int) -> Tuple[int, ...]:
        """Switches directly linked to ``switch`` (sorted, deduplicated)."""
        self._require_switch(switch)
        return tuple(sorted(self._adj[switch]))

    def links_between(self, u: int, v: int) -> Tuple[int, ...]:
        """Link ids joining two switches (possibly several, possibly none)."""
        self._require_switch(u)
        self._require_switch(v)
        return tuple(sorted(self._adj[u].get(v, ())))

    def degree(self, switch: int) -> int:
        """Port count of a switch: attached processors + incident links.

        This is the "node degree" used by the paper's design constraint
        (each processor port and each link port occupies one port of the
        switch).
        """
        self._require_switch(switch)
        n_links = sum(len(ids) for ids in self._adj[switch].values())
        return len(self._switch_procs[switch]) + n_links

    def max_degree(self) -> int:
        """Largest port count over all switches."""
        return max(self.degree(s) for s in self._switch_procs)

    def is_connected(self) -> bool:
        """Whether the switch graph is connected (full-duplex links make
        connectivity equivalent to strong connectivity)."""
        switches = self.switches
        if not switches:
            return False
        seen = {switches[0]}
        frontier = [switches[0]]
        while frontier:
            s = frontier.pop()
            for n in self._adj[s]:
                if n not in seen:
                    seen.add(n)
                    frontier.append(n)
        return len(seen) == len(switches)

    def validate(self) -> None:
        """Check the network is a usable system graph.

        Raises :class:`TopologyError` if any processor is unattached or
        the switch graph is disconnected.
        """
        missing = [p for p in range(self.num_processors) if p not in self._proc_switch]
        if missing:
            raise TopologyError(f"processors not attached to any switch: {missing}")
        if not self.is_connected():
            raise TopologyError("switch graph is not connected")

    def copy(self) -> "Network":
        """A deep, independent copy of this network."""
        dup = Network(self.num_processors)
        dup._next_switch = self._next_switch
        dup._next_link = self._next_link
        dup._switch_procs = {s: set(ps) for s, ps in self._switch_procs.items()}
        dup._proc_switch = dict(self._proc_switch)
        dup._links = dict(self._links)
        dup._adj = {s: {n: list(ids) for n, ids in nbrs.items()} for s, nbrs in self._adj.items()}
        return dup

    def describe(self) -> str:
        """Multi-line summary used by examples and reports."""
        lines = [
            f"network: {self.num_processors} processors, "
            f"{self.num_switches} switches, {self.num_links} links"
        ]
        for s in self.switches:
            procs = ",".join(str(p) for p in sorted(self._switch_procs[s]))
            nbrs = ", ".join(
                f"S{n}x{len(self._adj[s][n])}" for n in sorted(self._adj[s])
            )
            lines.append(f"  S{s}: procs [{procs}] links [{nbrs}] degree {self.degree(s)}")
        return "\n".join(lines)

    # -- internals ----------------------------------------------------

    def _require_switch(self, switch: int) -> None:
        if switch not in self._switch_procs:
            raise TopologyError(f"no switch with id {switch}")
