"""Source-based routing functions (paper Definition 6).

A routing function supplies, for every communication, a single ordered
path of link resources from the source processor to the destination
processor.  All routing functions here expose:

* ``route(comm) -> Route`` — the full path, and
* ``__call__(comm) -> frozenset`` — just the link-resource footprint,
  which is the shape :func:`repro.model.conflicts.network_resource_conflict_set`
  consumes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.model.message import Communication
from repro.topology.network import (
    LinkResource,
    Network,
    ejection_resource,
    injection_resource,
)


@dataclass(frozen=True)
class Route:
    """One deterministic path for a communication.

    Attributes:
        comm: the (source, dest) pair being routed.
        switch_path: ordered switch ids from the source's switch to the
            destination's switch (length >= 1).
        hops: the directed inter-switch channel tokens, one per
            consecutive switch pair, each pinned to a concrete link id.
        resources: the complete footprint — injection + hops + ejection.
    """

    comm: Communication
    switch_path: Tuple[int, ...]
    hops: Tuple[LinkResource, ...]
    resources: FrozenSet[LinkResource]

    @property
    def num_hops(self) -> int:
        """Number of inter-switch links traversed."""
        return len(self.hops)

    @property
    def link_ids(self) -> Tuple[int, ...]:
        """Concrete link ids used, in traversal order."""
        return tuple(h[1] for h in self.hops)


def make_route(
    network: Network,
    comm: Communication,
    switch_path: Sequence[int],
    link_choices: Optional[Mapping[int, int]] = None,
) -> Route:
    """Build a :class:`Route` from a switch path.

    ``link_choices`` optionally pins hop index -> link id for hops over
    parallel links; unpinned hops take the lowest link id between the
    two switches.
    """
    path = tuple(switch_path)
    if not path:
        raise RoutingError(f"empty switch path for {comm}")
    if network.switch_of(comm.source) != path[0]:
        raise RoutingError(f"path for {comm} does not start at the source's switch")
    if network.switch_of(comm.dest) != path[-1]:
        raise RoutingError(f"path for {comm} does not end at the destination's switch")
    hops = []
    for i, (u, v) in enumerate(zip(path, path[1:])):
        candidates = network.links_between(u, v)
        if not candidates:
            raise RoutingError(f"path for {comm} uses missing link between S{u} and S{v}")
        link_id = candidates[0]
        if link_choices and i in link_choices:
            link_id = link_choices[i]
            if link_id not in candidates:
                raise RoutingError(
                    f"pinned link {link_id} does not join S{u} and S{v} for {comm}"
                )
        hops.append(network.link(link_id).resource(u))
    resources = frozenset(
        [injection_resource(comm.source), ejection_resource(comm.dest), *hops]
    )
    return Route(comm=comm, switch_path=path, hops=tuple(hops), resources=resources)


class RoutingBase:
    """Shared call interface: footprint lookup via ``route``."""

    def route(self, comm: Communication) -> Route:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, comm: Communication) -> FrozenSet[LinkResource]:
        return self.route(comm).resources


class TableRouting(RoutingBase):
    """Explicit source-routing table, as emitted by the synthesizer."""

    def __init__(self, routes: Iterable[Route]) -> None:
        self._routes: Dict[Communication, Route] = {}
        for r in routes:
            if r.comm in self._routes:
                raise RoutingError(f"duplicate route for {r.comm}")
            self._routes[r.comm] = r

    def route(self, comm: Communication) -> Route:
        try:
            return self._routes[comm]
        except KeyError:
            raise RoutingError(f"no route installed for {comm}") from None

    def has_route(self, comm: Communication) -> bool:
        return comm in self._routes

    @property
    def communications(self) -> Tuple[Communication, ...]:
        return tuple(sorted(self._routes))

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes.values())


class ShortestPathRouting(RoutingBase):
    """Deterministic BFS shortest-path routing over any network.

    Ties are broken toward the lowest switch id, so the routing function
    is a function (Definition 6 requires a *single* ordered path per
    pair).  Routes are cached.

    ``avoid_links`` / ``avoid_switches`` exclude dead resources: the BFS
    never enters an avoided switch or crosses a switch pair whose only
    links are avoided, and hop pinning skips avoided parallel links.
    The fault-repair pass (:mod:`repro.faults.repair`) uses this to
    recompute routes around failures; unreachable pairs surface as
    :class:`~repro.errors.RoutingError`.
    """

    def __init__(
        self,
        network: Network,
        avoid_links: Iterable[int] = (),
        avoid_switches: Iterable[int] = (),
    ) -> None:
        network.validate()
        self._network = network
        self._avoid_links = frozenset(avoid_links)
        self._avoid_switches = frozenset(avoid_switches)
        self._cache: Dict[Communication, Route] = {}
        self._parents: Dict[int, Dict[int, int]] = {}

    def route(self, comm: Communication) -> Route:
        cached = self._cache.get(comm)
        if cached is not None:
            return cached
        src_switch = self._network.switch_of(comm.source)
        dst_switch = self._network.switch_of(comm.dest)
        for endpoint, role in ((src_switch, "source"), (dst_switch, "destination")):
            if endpoint in self._avoid_switches:
                raise RoutingError(f"{role} switch S{endpoint} of {comm} is avoided")
        path = self._switch_path(src_switch, dst_switch)
        r = make_route(self._network, comm, path, self._pin_links(path))
        self._cache[comm] = r
        return r

    def _pin_links(self, path: Tuple[int, ...]) -> Optional[Dict[int, int]]:
        """Pin each hop to its lowest non-avoided parallel link."""
        if not self._avoid_links:
            return None
        choices: Dict[int, int] = {}
        for i, (u, v) in enumerate(zip(path, path[1:])):
            usable = [
                lid
                for lid in self._network.links_between(u, v)
                if lid not in self._avoid_links
            ]
            if not usable:  # pragma: no cover - BFS never picks such a hop
                raise RoutingError(f"no usable link between S{u} and S{v}")
            choices[i] = usable[0]
        return choices

    def _usable(self, u: int, v: int) -> bool:
        """Whether at least one non-avoided link joins switches u and v."""
        if v in self._avoid_switches:
            return False
        if not self._avoid_links:
            return True
        return any(
            lid not in self._avoid_links for lid in self._network.links_between(u, v)
        )

    def _switch_path(self, src: int, dst: int) -> Tuple[int, ...]:
        parents = self._parents.get(src)
        if parents is None:
            parents = self._bfs(src)
            self._parents[src] = parents
        if dst not in parents:
            raise RoutingError(f"switch S{dst} unreachable from S{src}")
        path = [dst]
        while path[-1] != src:
            path.append(parents[path[-1]])
        return tuple(reversed(path))

    def _bfs(self, src: int) -> Dict[int, int]:
        parents = {src: src}
        queue = deque([src])
        while queue:
            s = queue.popleft()
            for n in self._network.neighbors(s):
                if n not in parents and self._usable(s, n):
                    parents[n] = s
                    queue.append(n)
        return parents


class DimensionOrderRouting(RoutingBase):
    """XY dimension-order routing on a mesh or torus.

    ``coords`` maps switch id -> (x, y).  On a torus each dimension
    takes the shorter way around; exact ties go in the positive
    direction, keeping the function deterministic.
    """

    def __init__(
        self,
        network: Network,
        coords: Mapping[int, Tuple[int, int]],
        width: int,
        height: int,
        wraparound: bool = False,
    ) -> None:
        network.validate()
        self._network = network
        self._coords = dict(coords)
        self._by_coord = {xy: s for s, xy in self._coords.items()}
        self._width = width
        self._height = height
        self._wrap = wraparound
        self._cache: Dict[Communication, Route] = {}

    def route(self, comm: Communication) -> Route:
        cached = self._cache.get(comm)
        if cached is not None:
            return cached
        src = self._network.switch_of(comm.source)
        dst = self._network.switch_of(comm.dest)
        x, y = self._coords[src]
        dx, dy = self._coords[dst]
        path = [src]
        for nx in self._axis_steps(x, dx, self._width):
            path.append(self._by_coord[(nx, y)])
            x = nx
        for ny in self._axis_steps(y, dy, self._height):
            path.append(self._by_coord[(x, ny)])
            y = ny
        r = make_route(self._network, comm, path)
        self._cache[comm] = r
        return r

    def _axis_steps(self, frm: int, to: int, extent: int) -> Iterable[int]:
        if frm == to:
            return
        if not self._wrap:
            step = 1 if to > frm else -1
            cur = frm
            while cur != to:
                cur += step
                yield cur
            return
        forward = (to - frm) % extent
        backward = (frm - to) % extent
        step = 1 if forward <= backward else -1
        cur = frm
        while cur != to:
            cur = (cur + step) % extent
            yield cur
