"""Builders for the reference topologies of the paper's evaluation.

The evaluation compares synthesized networks against a fully-connected
non-blocking crossbar (one mega-switch), a 2-D mesh with dimension-order
routing and a 2-D torus.  A ring and a fully-connected switch graph are
included as additional baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import TopologyError
from repro.topology.network import Network
from repro.topology.routing import DimensionOrderRouting, RoutingBase, ShortestPathRouting


@dataclass
class Topology:
    """A built reference topology plus its natural routing function.

    Attributes:
        name: label used in reports ("mesh-4x4", "crossbar-16", ...).
        network: the system graph.
        routing: the deterministic model-level routing function used to
            build the network resource conflict set.
        coords: switch id -> (x, y) grid position, when the topology is
            grid-shaped (used by floorplanning and the simulator's link
            delays); ``None`` otherwise.
        kind: one of "mesh", "torus", "crossbar", "ring", "fully",
            "generated".
    """

    name: str
    network: Network
    routing: RoutingBase
    coords: Optional[Dict[int, Tuple[int, int]]] = None
    kind: str = "custom"
    grid_shape: Optional[Tuple[int, int]] = None


def grid_dims(num_processors: int) -> Tuple[int, int]:
    """Near-square grid dimensions for ``num_processors`` tiles.

    Picks the factorization ``w x h`` with ``w >= h`` minimizing
    ``w - h`` (8 -> 4x2, 9 -> 3x3, 16 -> 4x4).  Prime counts degrade to
    ``n x 1``.
    """
    if num_processors <= 0:
        raise TopologyError(f"need a positive processor count, got {num_processors}")
    best = (num_processors, 1)
    for h in range(1, int(math.isqrt(num_processors)) + 1):
        if num_processors % h == 0:
            best = (num_processors // h, h)
    return best


def _grid_network(width: int, height: int, wraparound: bool) -> Tuple[Network, Dict[int, Tuple[int, int]]]:
    if width <= 0 or height <= 0:
        raise TopologyError(f"grid dimensions must be positive, got {width}x{height}")
    net = Network(width * height)
    coords: Dict[int, Tuple[int, int]] = {}
    by_coord: Dict[Tuple[int, int], int] = {}
    for y in range(height):
        for x in range(width):
            s = net.add_switch()
            net.attach_processor(y * width + x, s)
            coords[s] = (x, y)
            by_coord[(x, y)] = s
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                net.add_link(by_coord[(x, y)], by_coord[(x + 1, y)])
            if y + 1 < height:
                net.add_link(by_coord[(x, y)], by_coord[(x, y + 1)])
    if wraparound:
        # Wraparound links are only meaningful when they do not duplicate
        # an existing neighbour link (i.e. extent > 2).
        if width > 2:
            for y in range(height):
                net.add_link(by_coord[(width - 1, y)], by_coord[(0, y)])
        if height > 2:
            for x in range(width):
                net.add_link(by_coord[(x, height - 1)], by_coord[(x, 0)])
    return net, coords


def mesh(width: int, height: int) -> Topology:
    """A ``width x height`` mesh with one processor per switch and XY DOR."""
    net, coords = _grid_network(width, height, wraparound=False)
    routing = DimensionOrderRouting(net, coords, width, height, wraparound=False)
    return Topology(
        name=f"mesh-{width}x{height}",
        network=net,
        routing=routing,
        coords=coords,
        kind="mesh",
        grid_shape=(width, height),
    )


def torus(width: int, height: int) -> Topology:
    """A ``width x height`` torus with shortest-way dimension-order routing.

    The model-level routing is DOR with wraparound; the flit-level
    simulator replaces it with fully-adaptive routing as in the paper.
    """
    net, coords = _grid_network(width, height, wraparound=True)
    routing = DimensionOrderRouting(net, coords, width, height, wraparound=True)
    return Topology(
        name=f"torus-{width}x{height}",
        network=net,
        routing=routing,
        coords=coords,
        kind="torus",
        grid_shape=(width, height),
    )


def crossbar(num_processors: int) -> Topology:
    """A single non-blocking mega-switch connecting all processors.

    This is the paper's ideal reference network and the starting point
    of the recursive-bisection methodology.
    """
    net = Network(num_processors)
    s = net.add_switch()
    for p in range(num_processors):
        net.attach_processor(p, s)
    return Topology(
        name=f"crossbar-{num_processors}",
        network=net,
        routing=ShortestPathRouting(net),
        coords=None,
        kind="crossbar",
    )


def ring(num_processors: int) -> Topology:
    """A unidirectional-topology ring (full-duplex links) baseline."""
    if num_processors < 3:
        raise TopologyError("a ring needs at least 3 processors")
    net = Network(num_processors)
    switches = []
    for p in range(num_processors):
        s = net.add_switch()
        net.attach_processor(p, s)
        switches.append(s)
    for i, s in enumerate(switches):
        net.add_link(s, switches[(i + 1) % num_processors])
    return Topology(
        name=f"ring-{num_processors}",
        network=net,
        routing=ShortestPathRouting(net),
        coords=None,
        kind="ring",
    )


def fully_connected(num_processors: int) -> Topology:
    """One switch per processor with a link between every switch pair."""
    net = Network(num_processors)
    switches = []
    for p in range(num_processors):
        s = net.add_switch()
        net.attach_processor(p, s)
        switches.append(s)
    for i, u in enumerate(switches):
        for v in switches[i + 1 :]:
            net.add_link(u, v)
    return Topology(
        name=f"fully-{num_processors}",
        network=net,
        routing=ShortestPathRouting(net),
        coords=None,
        kind="fully",
    )


def fat_tree(
    num_processors: int, leaf_size: int = 4, num_spines: int = 2
) -> Topology:
    """A two-level fat tree (folded Clos): leaves host the processors,
    every leaf links to every spine.

    The paper names fat trees among the commonly used switched
    topologies; this builder provides the baseline.  Routing is
    deterministic up-down: source-leaf -> spine chosen by
    ``(src + dst) % num_spines`` -> destination leaf, so Definition 6's
    single-path requirement holds.
    """
    if num_processors < 2:
        raise TopologyError("a fat tree needs at least two processors")
    if leaf_size < 1 or num_spines < 1:
        raise TopologyError("leaf_size and num_spines must be positive")
    num_leaves = (num_processors + leaf_size - 1) // leaf_size
    if num_leaves < 2:
        raise TopologyError(
            "fat tree degenerates to one leaf; use crossbar() instead"
        )
    net = Network(num_processors)
    leaves = [net.add_switch() for _ in range(num_leaves)]
    spines = [net.add_switch() for _ in range(num_spines)]
    for p in range(num_processors):
        net.attach_processor(p, leaves[p // leaf_size])
    up_links = {}
    for li, leaf in enumerate(leaves):
        for si, spine in enumerate(spines):
            up_links[(li, si)] = net.add_link(leaf, spine)
    routing = _FatTreeRouting(net, leaves, spines, leaf_size)
    return Topology(
        name=f"fattree-{num_processors}x{num_leaves}l{num_spines}s",
        network=net,
        routing=routing,
        coords=None,
        kind="fattree",
    )


class _FatTreeRouting(ShortestPathRouting):
    """Deterministic up-down routing with spine selection by flow hash."""

    def __init__(self, network: Network, leaves, spines, leaf_size: int) -> None:
        super().__init__(network)
        self._leaves = list(leaves)
        self._spines = list(spines)
        self._leaf_size = leaf_size

    def route(self, comm):
        from repro.topology.routing import make_route

        cached = self._cache.get(comm)
        if cached is not None:
            return cached
        src_leaf = self._network.switch_of(comm.source)
        dst_leaf = self._network.switch_of(comm.dest)
        if src_leaf == dst_leaf:
            path = (src_leaf,)
        else:
            spine = self._spines[(comm.source + comm.dest) % len(self._spines)]
            path = (src_leaf, spine, dst_leaf)
        r = make_route(self._network, comm, path)
        self._cache[comm] = r
        return r


def mesh_for(num_processors: int) -> Topology:
    """The near-square mesh used as baseline for ``num_processors``."""
    w, h = grid_dims(num_processors)
    return mesh(w, h)


def torus_for(num_processors: int) -> Topology:
    """The near-square torus used as baseline for ``num_processors``."""
    w, h = grid_dims(num_processors)
    return torus(w, h)
