"""System graphs, reference topologies and routing functions."""

from repro.topology.builders import (
    Topology,
    crossbar,
    fat_tree,
    fully_connected,
    grid_dims,
    mesh,
    mesh_for,
    ring,
    torus,
    torus_for,
)
from repro.topology.network import (
    Link,
    Network,
    ejection_resource,
    injection_resource,
)
from repro.topology.routing import (
    DimensionOrderRouting,
    Route,
    RoutingBase,
    ShortestPathRouting,
    TableRouting,
    make_route,
)
from repro.topology.validate import (
    DegreeReport,
    check_routes_valid,
    degree_report,
    require_connected,
)

__all__ = [
    "DegreeReport",
    "DimensionOrderRouting",
    "Link",
    "Network",
    "Route",
    "RoutingBase",
    "ShortestPathRouting",
    "TableRouting",
    "Topology",
    "check_routes_valid",
    "crossbar",
    "degree_report",
    "fat_tree",
    "ejection_resource",
    "fully_connected",
    "grid_dims",
    "injection_resource",
    "make_route",
    "mesh",
    "mesh_for",
    "require_connected",
    "ring",
    "torus",
    "torus_for",
]
