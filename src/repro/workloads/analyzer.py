"""The communication pattern analyzer (paper Section 4).

Reconstructs a :class:`~repro.model.pattern.CommunicationPattern` from
an execution trace under the paper's synchronized-call assumption:
records of the same communication library call (same tag) across all
processes belong to one contention period, ideally overlapping in time.
Each period is laid out on its own unit time slot with a small gap, so
consecutive periods never interact — exactly the simplification the
paper adopts (and whose cost it measures as the residual gap to the
crossbar).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.errors import WorkloadError
from repro.model.message import Message
from repro.model.pattern import CommunicationPattern
from repro.workloads.events import Program
from repro.workloads.trace import RECV, SEND, Trace, trace_program

# Each contention period occupies [i * PHASE_STRIDE, i * PHASE_STRIDE +
# PHASE_DURATION]; the gap keeps the periods' cliques disjoint.
PHASE_STRIDE = 1.0
PHASE_DURATION = 0.9


def check_trace_consistent(trace: Trace) -> None:
    """Verify every send has a matching receive within its call tag."""
    by_tag_sends: Dict[str, List[Tuple[int, int]]] = {}
    by_tag_recvs: Dict[str, List[Tuple[int, int]]] = {}
    for r in trace.records:
        if r.op == SEND:
            by_tag_sends.setdefault(r.tag, []).append((r.process, r.peer))
        else:
            by_tag_recvs.setdefault(r.tag, []).append((r.peer, r.process))
    for tag in set(by_tag_sends) | set(by_tag_recvs):
        sends = sorted(by_tag_sends.get(tag, []))
        recvs = sorted(by_tag_recvs.get(tag, []))
        if sends != recvs:
            raise WorkloadError(
                f"trace {trace.name}: call {tag!r} has unmatched "
                f"sends/receives ({len(sends)} sends, {len(recvs)} recvs)"
            )


def contention_periods_of(trace: Trace) -> List[Tuple[str, List[Tuple[int, int, int]]]]:
    """Group the trace's sends into contention periods by library call.

    Returns ``(tag, [(source, dest, size), ...])`` in first-appearance
    order.  Duplicate (source, dest) transfers within one call are
    rejected: a process posting two simultaneous messages on the same
    pair cannot be separated by any routing and indicates a malformed
    phase.
    """
    periods: Dict[str, List[Tuple[int, int, int]]] = {}
    order: List[str] = []
    for r in trace.records:
        if r.op != SEND:
            continue
        if r.tag not in periods:
            periods[r.tag] = []
            order.append(r.tag)
        if any((s, d) == (r.process, r.peer) for s, d, _ in periods[r.tag]):
            raise WorkloadError(
                f"trace {trace.name}: call {r.tag!r} sends twice on "
                f"({r.process}, {r.peer})"
            )
        periods[r.tag].append((r.process, r.peer, r.size_bytes))
    return [(tag, periods[tag]) for tag in order]


def extract_pattern(source: Union[Trace, Program]) -> CommunicationPattern:
    """Build the communication pattern of a trace (or program).

    Each contention period ``i`` is mapped to the time interval
    ``[i, i + 0.9]``; all its messages share that interval (synchronized
    calls), so the clique analysis recovers one clique per period.
    """
    trace = trace_program(source) if isinstance(source, Program) else source
    check_trace_consistent(trace)
    messages: List[Message] = []
    for i, (tag, sends) in enumerate(contention_periods_of(trace)):
        t0 = i * PHASE_STRIDE
        for src, dst, size in sends:
            messages.append(
                Message(
                    source=src,
                    dest=dst,
                    t_start=t0,
                    t_finish=t0 + PHASE_DURATION,
                    size_bytes=max(1, size),
                    tag=tag,
                )
            )
    return CommunicationPattern(
        messages=tuple(messages),
        num_processes=trace.num_processes,
        name=trace.name,
    )
