"""Synthetic pattern generators: random permutations, hotspots, etc.

Used by scaling benchmarks and property tests to exercise the
methodology on patterns beyond the NAS suite.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import WorkloadError
from repro.model.message import Message
from repro.model.pattern import CommunicationPattern


def random_permutation_pattern(
    n: int,
    num_phases: int,
    seed: int = 0,
    size_bytes: int = 512,
    name: str = "",
) -> CommunicationPattern:
    """``num_phases`` contention periods, each a random full permutation
    without fixed points (a derangement-ish shuffle)."""
    if n < 2:
        raise WorkloadError(f"need at least two processes, got {n}")
    if num_phases < 1:
        raise WorkloadError(f"need at least one phase, got {num_phases}")
    rng = random.Random(seed)
    messages: List[Message] = []
    for phase in range(num_phases):
        targets = _fixed_point_free_shuffle(n, rng)
        for src, dst in enumerate(targets):
            messages.append(
                Message(
                    source=src,
                    dest=dst,
                    t_start=float(phase),
                    t_finish=phase + 0.9,
                    size_bytes=size_bytes,
                    tag=f"perm{phase}",
                )
            )
    return CommunicationPattern(
        messages=tuple(messages),
        num_processes=n,
        name=name or f"randperm-{n}x{num_phases}",
    )


def _fixed_point_free_shuffle(n: int, rng: random.Random) -> List[int]:
    """A uniform-ish permutation with no fixed points (rotation repair)."""
    perm = list(range(n))
    rng.shuffle(perm)
    for i in range(n):
        if perm[i] == i:
            j = (i + 1) % n
            perm[i], perm[j] = perm[j], perm[i]
    return perm


def hotspot_pattern(
    n: int,
    hotspot: int = 0,
    num_phases: int = 1,
    size_bytes: int = 512,
    name: str = "",
) -> CommunicationPattern:
    """Sequential phases in which each process sends to one hotspot.

    Each phase holds a single message (they cannot overlap: the hotspot
    can only absorb one at a time through its ejection link), so the
    pattern is contention-free on any connected topology — a useful
    degenerate case for the synthesizer.
    """
    if not 0 <= hotspot < n:
        raise WorkloadError(f"hotspot {hotspot} outside range(0, {n})")
    messages: List[Message] = []
    slot = 0
    for phase in range(num_phases):
        for src in range(n):
            if src == hotspot:
                continue
            messages.append(
                Message(
                    source=src,
                    dest=hotspot,
                    t_start=float(slot),
                    t_finish=slot + 0.9,
                    size_bytes=size_bytes,
                    tag=f"hot{phase}",
                )
            )
            slot += 1
    return CommunicationPattern(
        messages=tuple(messages), num_processes=n, name=name or f"hotspot-{n}"
    )


def neighbor_ring_pattern(
    n: int,
    num_phases: int = 2,
    size_bytes: int = 512,
    name: str = "",
) -> CommunicationPattern:
    """Alternating +1 / -1 ring shifts — the friendliest possible load."""
    if n < 3:
        raise WorkloadError(f"a ring pattern needs at least 3 processes, got {n}")
    messages: List[Message] = []
    for phase in range(num_phases):
        step = 1 if phase % 2 == 0 else -1
        for src in range(n):
            messages.append(
                Message(
                    source=src,
                    dest=(src + step) % n,
                    t_start=float(phase),
                    t_finish=phase + 0.9,
                    size_bytes=size_bytes,
                    tag=f"ring{phase}",
                )
            )
    return CommunicationPattern(
        messages=tuple(messages), num_processes=n, name=name or f"ring-{n}"
    )
