"""Execution traces (the paper's MPE-style communication event logue).

The paper obtains communication patterns by profiling benchmark runs
into a trace of communication library calls.  We reproduce the
pipeline: programs are logically executed into a :class:`Trace` of send
and receive records tagged with their originating library call, and the
analyzer (:mod:`repro.workloads.analyzer`) reconstructs contention
periods from matching calls across processes.  Traces round-trip
through a JSON-lines file format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from repro.errors import WorkloadError
from repro.workloads.events import ComputeEvent, Program, RecvEvent, SendEvent

SEND = "send"
RECV = "recv"


@dataclass(frozen=True)
class TraceRecord:
    """One logged communication library call."""

    process: int
    op: str
    peer: int
    size_bytes: int
    tag: str

    def __post_init__(self) -> None:
        if self.op not in (SEND, RECV):
            raise WorkloadError(f"unknown trace op {self.op!r}")


@dataclass(frozen=True)
class Trace:
    """A complete communication event logue of one program run."""

    name: str
    num_processes: int
    records: Tuple[TraceRecord, ...]

    def sends(self) -> Tuple[TraceRecord, ...]:
        return tuple(r for r in self.records if r.op == SEND)

    def recvs(self) -> Tuple[TraceRecord, ...]:
        return tuple(r for r in self.records if r.op == RECV)

    def tags_in_order(self) -> Tuple[str, ...]:
        """Distinct call tags by first appearance (program phase order)."""
        seen = []
        for r in self.records:
            if r.tag not in seen:
                seen.append(r.tag)
        return tuple(seen)


def trace_program(program: Program) -> Trace:
    """Logically execute a program into its communication trace.

    Events are walked per process in program order; compute events leave
    no trace records (the analyzer only needs call structure).  Records
    are emitted process-major, which is irrelevant to the analyzer (it
    groups by tag).
    """
    records: List[TraceRecord] = []
    for proc, stream in enumerate(program.events):
        for event in stream:
            if isinstance(event, SendEvent):
                records.append(
                    TraceRecord(
                        process=proc,
                        op=SEND,
                        peer=event.dest,
                        size_bytes=event.size_bytes,
                        tag=event.tag,
                    )
                )
            elif isinstance(event, RecvEvent):
                records.append(
                    TraceRecord(
                        process=proc,
                        op=RECV,
                        peer=event.source,
                        size_bytes=0,
                        tag=event.tag,
                    )
                )
            elif not isinstance(event, ComputeEvent):  # pragma: no cover
                raise WorkloadError(f"unknown event {event!r}")
    return Trace(name=program.name, num_processes=program.num_processes, records=tuple(records))


def write_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as JSON lines (one header line, one per record)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {"name": trace.name, "num_processes": trace.num_processes}
        fh.write(json.dumps(header) + "\n")
        for r in trace.records:
            fh.write(
                json.dumps(
                    {
                        "process": r.process,
                        "op": r.op,
                        "peer": r.peer,
                        "size_bytes": r.size_bytes,
                        "tag": r.tag,
                    }
                )
                + "\n"
            )


def read_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`write_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise WorkloadError(f"trace file {path} is empty")
    header = json.loads(lines[0])
    records = []
    for line in lines[1:]:
        raw = json.loads(line)
        records.append(
            TraceRecord(
                process=raw["process"],
                op=raw["op"],
                peer=raw["peer"],
                size_bytes=raw["size_bytes"],
                tag=raw["tag"],
            )
        )
    return Trace(
        name=header["name"],
        num_processes=header["num_processes"],
        records=tuple(records),
    )
