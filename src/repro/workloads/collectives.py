"""Collective-communication building blocks.

Expands the collectives that dominate the NAS benchmarks (reductions,
broadcasts, all-to-all, transpose) into sequences of point-to-point
message phases, the level at which the contention model operates.
Every function returns a list of phases; each phase is a list of
``(source, dest)`` pairs forming a partial permutation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import WorkloadError

Phase = List[Tuple[int, int]]


def _require_group(group: Sequence[int]) -> None:
    if len(group) != len(set(group)):
        raise WorkloadError(f"group has duplicate members: {group}")
    if len(group) < 2:
        raise WorkloadError(f"collectives need at least two members, got {group}")


def pairwise_exchange(group: Sequence[int], distance: int) -> Phase:
    """Bidirectional exchange between members ``i`` and ``i XOR distance``."""
    _require_group(group)
    phase: Phase = []
    n = len(group)
    for i in range(n):
        j = i ^ distance
        if j < n and i != j:
            phase.append((group[i], group[j]))
    return phase


def recursive_doubling(group: Sequence[int]) -> List[Phase]:
    """All-reduce by recursive doubling: log2 rounds of XOR exchanges.

    Requires a power-of-two group size.
    """
    _require_group(group)
    n = len(group)
    if n & (n - 1):
        raise WorkloadError(f"recursive doubling needs a power-of-two group, got {n}")
    phases = []
    distance = 1
    while distance < n:
        phases.append(pairwise_exchange(group, distance))
        distance *= 2
    return phases


def recursive_halving_reduce(group: Sequence[int]) -> List[Phase]:
    """Reduce to ``group[0]``: each round the upper half sends down."""
    _require_group(group)
    n = len(group)
    if n & (n - 1):
        raise WorkloadError(f"recursive halving needs a power-of-two group, got {n}")
    phases = []
    half = n // 2
    while half >= 1:
        phases.append([(group[i + half], group[i]) for i in range(half)])
        half //= 2
    return phases


def binomial_broadcast(group: Sequence[int], root_index: int = 0) -> List[Phase]:
    """Broadcast from ``group[root_index]`` along a binomial tree."""
    _require_group(group)
    n = len(group)
    if n & (n - 1):
        raise WorkloadError(f"binomial broadcast needs a power-of-two group, got {n}")
    if not 0 <= root_index < n:
        raise WorkloadError(f"root index {root_index} outside the group")
    # Work in root-relative ranks, translate back at the end.
    phases = []
    have = 1
    while have < n:
        phase = [
            (group[(rank + root_index) % n], group[(rank + have + root_index) % n])
            for rank in range(have)
            if rank + have < n
        ]
        phases.append(phase)
        have *= 2
    return phases


def shifted_all_to_all(group: Sequence[int]) -> List[Phase]:
    """All-to-all personalized exchange as ``n - 1`` shifted permutations.

    Phase ``k`` has member ``i`` sending to member ``i + k (mod n)`` —
    the standard contention-avoiding schedule for all-to-all.
    """
    _require_group(group)
    n = len(group)
    phases = []
    for k in range(1, n):
        phases.append([(group[i], group[(i + k) % n]) for i in range(n)])
    return phases


def transpose_exchange(rows: int, cols: int, base: int = 0) -> Phase:
    """Matrix-transpose exchange over a ``rows x cols`` process grid.

    Processor ``(r, c)`` (id ``base + r*cols + c``) exchanges with the
    transposed flattened index — for square grids the paper's CG
    transpose; for ``cols == 2*rows`` the NAS CG layout's exchange.
    """
    if rows < 1 or cols < 1:
        raise WorkloadError(f"bad grid {rows}x{cols}")
    n = rows * cols
    phase: Phase = []
    for me in range(n):
        partner = (me % rows) * cols + me // rows
        if partner != me:
            phase.append((base + me, base + partner))
    return phase


def grid_neighbor_shift(
    rows: int, cols: int, axis: str, step: int, wrap: bool = True, base: int = 0
) -> Phase:
    """Every process sends to its grid neighbour ``step`` away on ``axis``.

    With ``wrap`` the shift is cyclic (a full permutation); without it,
    border processes with no neighbour stay silent (partial
    permutation).
    """
    if axis not in ("x", "y"):
        raise WorkloadError(f"axis must be 'x' or 'y', got {axis!r}")
    phase: Phase = []
    for r in range(rows):
        for c in range(cols):
            if axis == "x":
                nc, nr = c + step, r
                if wrap:
                    nc %= cols
                elif not 0 <= nc < cols:
                    continue
            else:
                nc, nr = c, r + step
                if wrap:
                    nr %= rows
                elif not 0 <= nr < rows:
                    continue
            src = base + r * cols + c
            dst = base + nr * cols + nc
            if src != dst:
                phase.append((src, dst))
    return phase


def diagonal_shift(rows: int, cols: int, step: int = 1, base: int = 0) -> Phase:
    """Cyclic shift along the grid diagonal (used by the BT/SP sweeps)."""
    phase: Phase = []
    for r in range(rows):
        for c in range(cols):
            nr = (r + step) % rows
            nc = (c + step) % cols
            src = base + r * cols + c
            dst = base + nr * cols + nc
            if src != dst:
                phase.append((src, dst))
    return phase
