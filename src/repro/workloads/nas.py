"""Synthetic generators for the five NAS benchmarks of the evaluation.

The paper extracts communication patterns from BT, CG, FFT, MG and SP
runs on 8/9/16-node clusters.  We regenerate each benchmark's
documented communication structure as a phase-parallel program (the
substitution recorded in DESIGN.md):

* **CG** — per iteration, row-group reduction exchanges at doubling
  distances followed by the matrix-transpose exchange (exactly the
  paper's Figure 1 for 16 processes).
* **FFT** — 2-D blocked transform: all-to-all within rows, then within
  columns, as shifted permutations.  Row (column) groups run their
  exchange steps independently — there is no synchronization across
  groups during a within-group all-to-all — so each group's step is its
  own contention period.
* **MG** — V-cycle levels of nearest-neighbour boundary exchanges with
  shrinking message sizes and a shrinking active-process subset at
  coarser levels, plus a small-message tree reduction and broadcast.
* **BT / SP** — ADI sweeps on a square process grid.  The sweeps are
  *pipelined wavefronts* (cell (r, c) forwards to (r, c+1) only after
  receiving from (r, c-1)), so each pipeline stage — a handful of
  messages, one per row/column — is one contention period, not the
  whole sweep at once.  SP uses smaller messages and more iterations
  (same algorithm family, as the paper notes).

Compute time per phase scales inversely with the process count (fixed
problem size), reproducing the paper's observation that the 16-node
configurations are more communication bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.model.pattern import CommunicationPattern
from repro.workloads.analyzer import extract_pattern
from repro.workloads.collectives import (
    binomial_broadcast,
    pairwise_exchange,
    recursive_halving_reduce,
    shifted_all_to_all,
    transpose_exchange,
)
from repro.workloads.events import PhaseProgramBuilder, Program
from repro.workloads.trace import Trace, trace_program

BENCHMARK_NAMES = ("bt", "cg", "fft", "mg", "sp")

# The paper's evaluation sizes: BT and SP need a perfect square.
PAPER_SMALL_SIZES: Dict[str, int] = {"bt": 9, "cg": 8, "fft": 8, "mg": 8, "sp": 9}
PAPER_LARGE_SIZE = 16

# Synthetic scaling beyond the paper's 16-node evaluation (the ROADMAP
# 64-256-node target).  Both sizes satisfy every builder's shape
# requirement: perfect squares for BT/SP, powers of two for the rest.
SCALED_SIZES: Tuple[int, ...] = (64, 256)

_DEFAULT_JITTER = 0.08


@dataclass(frozen=True)
class Benchmark:
    """A generated benchmark: program, trace and extracted pattern."""

    name: str
    program: Program
    trace: Trace
    pattern: CommunicationPattern
    grid: Tuple[int, int]  # (rows, cols)

    @property
    def num_processes(self) -> int:
        return self.program.num_processes


def _finish(name: str, builder: PhaseProgramBuilder, grid: Tuple[int, int]) -> Benchmark:
    program = builder.build()
    trace = trace_program(program)
    return Benchmark(
        name=name,
        program=program,
        trace=trace,
        pattern=extract_pattern(trace),
        grid=grid,
    )


def _pow2_grid(n: int) -> Tuple[int, int]:
    """Near-square (rows, cols) for a power-of-two process count."""
    if n < 2 or n & (n - 1):
        raise WorkloadError(f"this benchmark needs a power-of-two process count, got {n}")
    log = n.bit_length() - 1
    cols = 1 << ((log + 1) // 2)
    return (n // cols, cols)


def _square_grid(n: int) -> Tuple[int, int]:
    side = math.isqrt(n)
    if side * side != n:
        raise WorkloadError(f"BT/SP need a perfect-square process count, got {n}")
    return (side, side)


def _rows_of(rows: int, cols: int):
    return [[r * cols + c for c in range(cols)] for r in range(rows)]


def _cols_of(rows: int, cols: int):
    return [[r * cols + c for r in range(rows)] for c in range(cols)]


def _compute_per_phase(base: int, n: int) -> int:
    """Fixed-problem-size scaling: compute shrinks as processes grow."""
    return max(1, base * PAPER_LARGE_SIZE // n)


def cg(
    n: int,
    iterations: int = 3,
    message_bytes: int = 4096,
    compute_base: int = 1000,
    jitter: float = _DEFAULT_JITTER,
    seed: int = 0,
) -> Benchmark:
    """Conjugate Gradient: row reductions plus transpose exchange."""
    rows, cols = _pow2_grid(n)
    builder = PhaseProgramBuilder(n, f"cg-{n}", jitter=jitter, seed=seed)
    compute = _compute_per_phase(compute_base, n)
    row_groups = _rows_of(rows, cols)
    for it in range(iterations):
        distance = 1
        while distance < cols:
            builder.compute(compute)
            phase = [
                (s, d, message_bytes)
                for group in row_groups
                for s, d in pairwise_exchange(group, distance)
            ]
            builder.phase(phase, tag=f"it{it}-reduce-d{distance}")
            distance *= 2
        builder.compute(compute)
        transpose = [
            (s, d, message_bytes) for s, d in transpose_exchange(rows, cols)
        ]
        builder.phase(transpose, tag=f"it{it}-transpose")
    return _finish(f"cg-{n}", builder, (rows, cols))


def fft(
    n: int,
    iterations: int = 2,
    message_bytes: int = 2048,
    compute_base: int = 1800,
    jitter: float = _DEFAULT_JITTER,
    seed: int = 0,
) -> Benchmark:
    """3-D FFT with 2-D blocking: row then column all-to-all."""
    rows, cols = _pow2_grid(n)
    builder = PhaseProgramBuilder(n, f"fft-{n}", jitter=jitter, seed=seed)
    compute = _compute_per_phase(compute_base, n)
    row_groups = _rows_of(rows, cols)
    col_groups = _cols_of(rows, cols)
    for it in range(iterations):
        # All groups leave the preceding global phase together, so every
        # group's *first* exchange step lands in one contention period;
        # later steps decohere (groups pace themselves independently)
        # and become separate periods.
        for axis, groups in (("row", row_groups), ("col", col_groups)):
            if axis == "col" and rows < 2:
                continue
            staged = [shifted_all_to_all(g) for g in groups]
            builder.compute(compute)
            builder.phase(
                [(s, d, message_bytes) for stages in staged for s, d in stages[0]],
                tag=f"it{it}-{axis}-a2a0",
            )
            for g, stages in enumerate(staged):
                for k, phase in enumerate(stages[1:], start=1):
                    builder.compute(compute)
                    builder.phase(
                        [(s, d, message_bytes) for s, d in phase],
                        tag=f"it{it}-{axis}{g}-a2a{k}",
                    )
    return _finish(f"fft-{n}", builder, (rows, cols))


def mg(
    n: int,
    iterations: int = 2,
    finest_bytes: int = 512,
    collective_bytes: int = 64,
    levels: int = 3,
    compute_base: int = 2200,
    jitter: float = _DEFAULT_JITTER,
    seed: int = 0,
) -> Benchmark:
    """Multi-Grid: per-level boundary exchanges + reduction/broadcast."""
    rows, cols = _pow2_grid(n)
    builder = PhaseProgramBuilder(n, f"mg-{n}", jitter=jitter, seed=seed)
    compute = _compute_per_phase(compute_base, n)
    everyone = list(range(n))
    for it in range(iterations):
        size = finest_bytes
        for level in range(levels):
            # Boundary exchange at this level: only every 2^level-th
            # process row/column stays active (grid coarsening), and
            # each active row exchanges as its own period (rows proceed
            # independently through the V-cycle smoother).
            stride = 1 << level
            active_rows = list(range(0, rows, stride))
            active_cols = list(range(0, cols, stride))
            # Finest level: the give/take exchange happens right after
            # the global residual computation, so all rows (then all
            # columns) exchange in one contention period.  Coarser
            # levels involve fewer processes and drift apart, one period
            # per row/column.
            row_rings = [
                [r * cols + c for c in active_cols]
                for r in active_rows
            ]
            col_rings = [
                [r * cols + c for r in active_rows]
                for c in active_cols
            ]
            for axis, rings in (("row", row_rings), ("col", col_rings)):
                rings = [ring for ring in rings if len(ring) >= 2]
                if not rings:
                    continue
                if level == 0:
                    builder.compute(compute)
                    builder.phase(
                        [
                            (ring[i], ring[(i + 1) % len(ring)], size)
                            for ring in rings
                            for i in range(len(ring))
                        ],
                        tag=f"it{it}-L0-{axis}",
                    )
                else:
                    for g, ring in enumerate(rings):
                        builder.compute(compute)
                        builder.phase(
                            [
                                (ring[i], ring[(i + 1) % len(ring)], size)
                                for i in range(len(ring))
                            ],
                            tag=f"it{it}-L{level}-{axis}{g}",
                        )
            size = max(collective_bytes, size // 4)
        # Small-message tree reduction to rank 0 and broadcast back.
        for k, phase in enumerate(recursive_halving_reduce(everyone)):
            builder.compute(compute // 2)
            builder.phase(
                [(s, d, collective_bytes) for s, d in phase],
                tag=f"it{it}-reduce-{k}",
            )
        for k, phase in enumerate(binomial_broadcast(everyone)):
            builder.compute(compute // 2)
            builder.phase(
                [(s, d, collective_bytes) for s, d in phase],
                tag=f"it{it}-bcast-{k}",
            )
    return _finish(f"mg-{n}", builder, (rows, cols))


def _adi_sweeps(
    name: str,
    n: int,
    iterations: int,
    message_bytes: int,
    compute_base: int,
    jitter: float,
    seed: int,
) -> Benchmark:
    """Shared BT/SP generator: pipelined ADI sweeps along x, y and the
    diagonal, forward and backward.

    Each sweep is a wavefront pipeline: stage ``k`` carries one message
    per row (or column/diagonal), because a cell can only forward after
    the substitution data from its predecessor arrives.  Each stage is
    therefore one contention period of ``rows`` messages — the staging
    the data dependencies enforce at run time as well.
    """
    rows, cols = _square_grid(n)
    builder = PhaseProgramBuilder(n, f"{name}-{n}", jitter=jitter, seed=seed)
    compute = _compute_per_phase(compute_base, n)

    def x_sweep(direction: int):
        stages = []
        cs = range(cols - 1) if direction > 0 else range(cols - 1, 0, -1)
        for c in cs:
            stages.append(
                [(r * cols + c, r * cols + c + direction) for r in range(rows)]
            )
        return stages

    def y_sweep(direction: int):
        stages = []
        rs = range(rows - 1) if direction > 0 else range(rows - 1, 0, -1)
        for r in rs:
            stages.append(
                [(r * cols + c, (r + direction) * cols + c) for c in range(cols)]
            )
        return stages

    def diag_sweep(direction: int):
        # The multi-partition z-sweep: successive cells along z belong
        # to processors offset diagonally in *both* grid dimensions, so
        # the processor-level wavefront pairs are skewed non-neighbours
        # (approximating NAS BT/SP's multipartition mapping).
        skew = 2 % cols if cols > 2 else 1
        stages = []
        rs = range(rows - 1) if direction > 0 else range(rows - 1, 0, -1)
        for r in rs:
            stages.append(
                [
                    (
                        r * cols + k,
                        (r + direction) * cols + (k + direction * skew) % cols,
                    )
                    for k in range(cols)
                ]
            )
        return stages

    sweeps = [
        ("x+", x_sweep(1)),
        ("x-", x_sweep(-1)),
        ("y+", y_sweep(1)),
        ("y-", y_sweep(-1)),
        ("d+", diag_sweep(1)),
        ("d-", diag_sweep(-1)),
    ]
    # copy_faces: the boundary exchange preceding the sweeps is a
    # simultaneous sendrecv with each grid neighbour (periodic), i.e.
    # four full-permutation contention periods per iteration.  These
    # dense periods are what makes BT/SP the most resource-hungry
    # patterns of the suite (paper Section 4.1).
    faces = [
        ("fx+", [(r * cols + c, r * cols + (c + 1) % cols) for r in range(rows) for c in range(cols)]),
        ("fx-", [(r * cols + c, r * cols + (c - 1) % cols) for r in range(rows) for c in range(cols)]),
        ("fy+", [(r * cols + c, ((r + 1) % rows) * cols + c) for r in range(rows) for c in range(cols)]),
        ("fy-", [(r * cols + c, ((r - 1) % rows) * cols + c) for r in range(rows) for c in range(cols)]),
    ]
    if cols > 3:
        # Under multipartition each processor owns cells scattered along
        # the 3-D diagonal, so face exchanges also pair processors two
        # grid columns apart (a distance-2 permutation that no 2-D grid
        # embedding can route neighbour-to-neighbour).
        faces.append(
            (
                "fz+",
                [
                    (r * cols + c, ((r + 1) % rows) * cols + (c + 2) % cols)
                    for r in range(rows)
                    for c in range(cols)
                ],
            )
        )
        faces.append(
            (
                "fz-",
                [
                    (r * cols + c, ((r - 1) % rows) * cols + (c - 2) % cols)
                    for r in range(rows)
                    for c in range(cols)
                ],
            )
        )
    for it in range(iterations):
        for label, phase in faces:
            builder.compute(compute)
            builder.phase(
                [(s, d, message_bytes) for s, d in phase if s != d],
                tag=f"it{it}-{label}",
            )
        for label, stages in sweeps:
            for k, stage in enumerate(stages):
                builder.compute(compute)
                builder.phase(
                    [(s, d, message_bytes) for s, d in stage],
                    tag=f"it{it}-{label}-s{k}",
                )
    return _finish(f"{name}-{n}", builder, (rows, cols))


def bt(
    n: int,
    iterations: int = 2,
    message_bytes: int = 2048,
    compute_base: int = 1200,
    jitter: float = _DEFAULT_JITTER,
    seed: int = 0,
) -> Benchmark:
    """Block-Tridiagonal solver (ADI sweeps, large messages)."""
    return _adi_sweeps("bt", n, iterations, message_bytes, compute_base, jitter, seed)


def sp(
    n: int,
    iterations: int = 3,
    message_bytes: int = 1024,
    compute_base: int = 1000,
    jitter: float = _DEFAULT_JITTER,
    seed: int = 0,
) -> Benchmark:
    """Scalar-Pentadiagonal solver (same sweeps, smaller messages)."""
    return _adi_sweeps("sp", n, iterations, message_bytes, compute_base, jitter, seed)


_BUILDERS = {"bt": bt, "cg": cg, "fft": fft, "mg": mg, "sp": sp}


def benchmark(name: str, n: int, **kwargs) -> Benchmark:
    """Build a benchmark by name ("bt", "cg", "fft", "mg", "sp")."""
    try:
        build = _BUILDERS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {sorted(_BUILDERS)}"
        ) from None
    return build(n, **kwargs)


def paper_suite(size: str = "small") -> Dict[str, Benchmark]:
    """The paper's benchmark suite at its 8/9-node or 16-node sizes."""
    if size == "small":
        return {name: benchmark(name, PAPER_SMALL_SIZES[name]) for name in BENCHMARK_NAMES}
    if size == "large":
        return {name: benchmark(name, PAPER_LARGE_SIZE) for name in BENCHMARK_NAMES}
    raise WorkloadError(f"size must be 'small' or 'large', got {size!r}")


def scaled_suite(n: int = 64) -> Dict[str, Benchmark]:
    """The suite synthetically scaled past the paper's evaluation.

    The phase-program builders parameterize cleanly in ``n``, so the
    scaled corpus is the same five benchmarks at 64 or 256 processes —
    both perfect squares (BT/SP) and powers of two (CG/FFT/MG).  These
    are the sizes the ROADMAP's 64-256-node synthesis target and the
    portfolio benches measure against.
    """
    if n not in SCALED_SIZES:
        raise WorkloadError(f"scaled suite sizes are {SCALED_SIZES}, got {n}")
    return {name: benchmark(name, n) for name in BENCHMARK_NAMES}
