"""Workloads: NAS-like benchmark generators, traces and the pattern
analyzer (paper Section 4's profiling pipeline)."""

from repro.workloads.analyzer import (
    check_trace_consistent,
    contention_periods_of,
    extract_pattern,
)
from repro.workloads.collectives import (
    binomial_broadcast,
    diagonal_shift,
    grid_neighbor_shift,
    pairwise_exchange,
    recursive_doubling,
    recursive_halving_reduce,
    shifted_all_to_all,
    transpose_exchange,
)
from repro.workloads.events import (
    ComputeEvent,
    Event,
    PhaseProgramBuilder,
    Program,
    RecvEvent,
    SendEvent,
)
from repro.workloads.nas import (
    BENCHMARK_NAMES,
    PAPER_LARGE_SIZE,
    PAPER_SMALL_SIZES,
    SCALED_SIZES,
    Benchmark,
    benchmark,
    bt,
    cg,
    fft,
    mg,
    paper_suite,
    scaled_suite,
    sp,
)
from repro.workloads.synthetic import (
    hotspot_pattern,
    neighbor_ring_pattern,
    random_permutation_pattern,
)
from repro.workloads.trace import (
    Trace,
    TraceRecord,
    read_trace,
    trace_program,
    write_trace,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "ComputeEvent",
    "Event",
    "PAPER_LARGE_SIZE",
    "PAPER_SMALL_SIZES",
    "PhaseProgramBuilder",
    "Program",
    "RecvEvent",
    "SCALED_SIZES",
    "SendEvent",
    "Trace",
    "TraceRecord",
    "benchmark",
    "binomial_broadcast",
    "bt",
    "cg",
    "check_trace_consistent",
    "contention_periods_of",
    "diagonal_shift",
    "extract_pattern",
    "fft",
    "grid_neighbor_shift",
    "hotspot_pattern",
    "mg",
    "neighbor_ring_pattern",
    "pairwise_exchange",
    "paper_suite",
    "random_permutation_pattern",
    "read_trace",
    "recursive_doubling",
    "recursive_halving_reduce",
    "scaled_suite",
    "shifted_all_to_all",
    "sp",
    "trace_program",
    "transpose_exchange",
    "write_trace",
]
