"""Per-process program events and phase-structured program builders.

Programs model the paper's phase-parallel applications: every process
alternates computation with communication phases, and within a phase
corresponding communication library calls are assumed to line up across
processes (the paper's synchronized-call assumption).  The builder also
supports per-process compute jitter, which reintroduces the *time skew*
the paper identifies as the source of residual contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ComputeEvent:
    """Local computation for a number of cycles."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise WorkloadError(f"compute cycles cannot be negative: {self.cycles}")


@dataclass(frozen=True)
class SendEvent:
    """Send ``size_bytes`` to ``dest`` (blocking only for the overhead)."""

    dest: int
    size_bytes: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise WorkloadError(f"message size must be positive: {self.size_bytes}")


@dataclass(frozen=True)
class RecvEvent:
    """Block until the next unmatched message from ``source`` arrives."""

    source: int
    tag: str = ""


Event = Union[ComputeEvent, SendEvent, RecvEvent]

# One phase: the (source, dest, size) messages exchanged in it.
PhaseMessages = Sequence[Tuple[int, int, int]]


@dataclass(frozen=True)
class Program:
    """A complete multi-process program.

    Attributes:
        name: label ("CG-16", ...).
        num_processes: process count.
        events: per-process event sequences.
        phase_tags: tags of the communication phases, in order (used by
            the pattern analyzer).
    """

    name: str
    num_processes: int
    events: Tuple[Tuple[Event, ...], ...]
    phase_tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.events) != self.num_processes:
            raise WorkloadError(
                f"program {self.name} has {len(self.events)} event streams "
                f"for {self.num_processes} processes"
            )
        for proc, stream in enumerate(self.events):
            for event in stream:
                if isinstance(event, SendEvent) and not 0 <= event.dest < self.num_processes:
                    raise WorkloadError(
                        f"process {proc} sends to out-of-range process {event.dest}"
                    )
                if isinstance(event, RecvEvent) and not 0 <= event.source < self.num_processes:
                    raise WorkloadError(
                        f"process {proc} receives from out-of-range process {event.source}"
                    )

    @property
    def total_messages(self) -> int:
        return sum(
            1 for stream in self.events for e in stream if isinstance(e, SendEvent)
        )

    @property
    def total_bytes(self) -> int:
        return sum(
            e.size_bytes for stream in self.events for e in stream if isinstance(e, SendEvent)
        )

    def communication_pairs(self) -> tuple:
        """The distinct (source, dest) communications the program uses,
        sorted — the pair set routing tables and cache keys are built
        over."""
        from repro.model.message import Communication

        pairs = {
            Communication(proc, event.dest)
            for proc, stream in enumerate(self.events)
            for event in stream
            if isinstance(event, SendEvent)
        }
        return tuple(sorted(pairs))

    def sends_balanced(self) -> bool:
        """Whether every send has a matching receive (per pair counts)."""
        sends: Dict[Tuple[int, int], int] = {}
        recvs: Dict[Tuple[int, int], int] = {}
        for proc, stream in enumerate(self.events):
            for e in stream:
                if isinstance(e, SendEvent):
                    sends[(proc, e.dest)] = sends.get((proc, e.dest), 0) + 1
                elif isinstance(e, RecvEvent):
                    recvs[(e.source, proc)] = recvs.get((e.source, proc), 0) + 1
        return sends == recvs


class PhaseProgramBuilder:
    """Builds phase-parallel programs.

    Each communication phase appends, for every process: an optional
    compute block (with per-process jitter), then that process's sends,
    then its receives.  Send-before-receive within a phase keeps
    pairwise exchanges deadlock-free under blocking receives.
    """

    def __init__(
        self,
        num_processes: int,
        name: str,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if num_processes <= 0:
            raise WorkloadError(f"need a positive process count, got {num_processes}")
        if not 0.0 <= jitter < 1.0:
            raise WorkloadError(f"jitter fraction must be in [0, 1), got {jitter}")
        self.num_processes = num_processes
        self.name = name
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._events: List[List[Event]] = [[] for _ in range(num_processes)]
        self._phase_tags: List[str] = []

    def compute(self, cycles: int, processes: Optional[Sequence[int]] = None) -> "PhaseProgramBuilder":
        """Add a compute block (jittered per process) to the given
        processes (default: all)."""
        targets = range(self.num_processes) if processes is None else processes
        for p in targets:
            jittered = cycles
            if self.jitter > 0.0 and cycles > 0:
                factor = 1.0 + self._rng.uniform(-self.jitter, self.jitter)
                jittered = max(0, int(round(cycles * factor)))
            self._events[p].append(ComputeEvent(jittered))
        return self

    def phase(self, messages: PhaseMessages, tag: str = "") -> "PhaseProgramBuilder":
        """Add one communication phase.

        ``messages`` lists the (source, dest, size) transfers that make
        up the phase — one matching library call per process involved.
        """
        tag = tag or f"phase{len(self._phase_tags)}"
        self._phase_tags.append(tag)
        for src, dst, size in messages:
            if src == dst:
                raise WorkloadError(f"phase {tag} has a self-message at {src}")
            self._events[src].append(SendEvent(dest=dst, size_bytes=size, tag=tag))
        for src, dst, _ in messages:
            self._events[dst].append(RecvEvent(source=src, tag=tag))
        return self

    def build(self) -> Program:
        """Finalize the program."""
        return Program(
            name=self.name,
            num_processes=self.num_processes,
            events=tuple(tuple(stream) for stream in self._events),
            phase_tags=tuple(self._phase_tags),
        )
