"""Stable serialization of simulation results and cache payloads.

Link resources are tuples (``("link", 3, 0)``, ``("inj", 2)``,
``("ej", 5)``) and therefore not JSON keys.  :func:`encode_resource`
gives each one a stable string form (``"link:3:0"``) used by the
on-disk result cache and the utilization report, and
:func:`decode_resource` inverts it exactly.

:func:`result_to_dict` / :func:`result_from_dict` round-trip a
:class:`~repro.simulator.stats.SimulationResult` through JSON-safe
dictionaries losslessly (floats survive via JSON's shortest-repr
round-trip), so cached results are byte-identical to freshly computed
ones once both pass through :func:`canonical_json`.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import ReproError
from repro.simulator.config import SimConfig
from repro.simulator.openloop import LoadPoint
from repro.simulator.stats import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (see design_to_dict)
    from repro.model.pattern import CommunicationPattern
    from repro.synthesis.generator import GeneratedDesign

_RESOURCE_KINDS = ("link", "inj", "ej")


class SerializationError(ReproError):
    """A payload could not be encoded or decoded."""


def encode_resource(resource: Tuple) -> str:
    """Stable string form of a directed-channel resource tuple.

    ``("link", 3, 0)`` -> ``"link:3:0"``; ``("inj", 2)`` -> ``"inj:2"``.
    """
    if not isinstance(resource, tuple) or not resource:
        raise SerializationError(f"not a resource tuple: {resource!r}")
    kind = resource[0]
    if kind not in _RESOURCE_KINDS:
        raise SerializationError(f"unknown resource kind {kind!r} in {resource!r}")
    if kind == "link" and len(resource) != 3:
        raise SerializationError(f"link resource needs (kind, id, dir): {resource!r}")
    if kind in ("inj", "ej") and len(resource) != 2:
        raise SerializationError(f"{kind} resource needs (kind, processor): {resource!r}")
    for part in resource[1:]:
        if not isinstance(part, int) or isinstance(part, bool):
            raise SerializationError(f"non-integer field {part!r} in {resource!r}")
    return ":".join([kind] + [str(p) for p in resource[1:]])


def decode_resource(encoded: str) -> Tuple:
    """Invert :func:`encode_resource`."""
    parts = encoded.split(":")
    if parts[0] not in _RESOURCE_KINDS:
        raise SerializationError(f"unknown resource encoding {encoded!r}")
    try:
        fields = tuple(int(p) for p in parts[1:])
    except ValueError:
        raise SerializationError(f"malformed resource encoding {encoded!r}") from None
    resource = (parts[0],) + fields
    # Validate shape by re-encoding.
    if encode_resource(resource) != encoded:
        raise SerializationError(f"malformed resource encoding {encoded!r}")
    return resource


def encode_link_utilization(utilization: Dict[Tuple, float]) -> Dict[str, float]:
    """String-keyed, sort-stable form of a per-channel busy-fraction map."""
    return {
        encode_resource(res): frac
        for res, frac in sorted(utilization.items(), key=lambda kv: encode_resource(kv[0]))
    }


def decode_link_utilization(encoded: Dict[str, float]) -> Dict[Tuple, float]:
    return {decode_resource(key): frac for key, frac in encoded.items()}


def config_to_dict(config: SimConfig) -> dict:
    return asdict(config)


def config_from_dict(raw: dict) -> SimConfig:
    return SimConfig(**raw)


def result_to_dict(result: SimulationResult) -> dict:
    """JSON-safe dictionary form of a simulation result."""
    return {
        "topology_name": result.topology_name,
        "program_name": result.program_name,
        "execution_cycles": result.execution_cycles,
        "comm_cycles_per_process": list(result.comm_cycles_per_process),
        "delivered_packets": result.delivered_packets,
        "deadlocks_detected": result.deadlocks_detected,
        "retransmissions": result.retransmissions,
        "fault_packet_kills": result.fault_packet_kills,
        "flit_hops": result.flit_hops,
        "link_utilization": encode_link_utilization(result.link_utilization),
        "config": config_to_dict(result.config),
        "packet_latencies": list(result.packet_latencies),
    }


def result_from_dict(raw: dict) -> SimulationResult:
    """Invert :func:`result_to_dict`."""
    return SimulationResult(
        topology_name=raw["topology_name"],
        program_name=raw["program_name"],
        execution_cycles=raw["execution_cycles"],
        comm_cycles_per_process=tuple(raw["comm_cycles_per_process"]),
        delivered_packets=raw["delivered_packets"],
        deadlocks_detected=raw["deadlocks_detected"],
        retransmissions=raw["retransmissions"],
        fault_packet_kills=raw["fault_packet_kills"],
        flit_hops=raw["flit_hops"],
        link_utilization=decode_link_utilization(raw["link_utilization"]),
        config=config_from_dict(raw["config"]),
        packet_latencies=tuple(raw["packet_latencies"]),
    )


def loadpoint_to_dict(point: LoadPoint) -> dict:
    """JSON-safe dictionary form of one open-loop measurement."""
    return {
        "offered_flits_per_node_cycle": point.offered_flits_per_node_cycle,
        "accepted_flits_per_node_cycle": point.accepted_flits_per_node_cycle,
        "avg_latency": point.avg_latency,
        "delivered": point.delivered,
        "saturated": point.saturated,
        "p50_latency": point.p50_latency,
        "p95_latency": point.p95_latency,
        "p99_latency": point.p99_latency,
    }


def loadpoint_from_dict(raw: dict) -> LoadPoint:
    """Invert :func:`loadpoint_to_dict`."""
    return LoadPoint(
        offered_flits_per_node_cycle=raw["offered_flits_per_node_cycle"],
        accepted_flits_per_node_cycle=raw["accepted_flits_per_node_cycle"],
        avg_latency=raw["avg_latency"],
        delivered=raw["delivered"],
        saturated=raw["saturated"],
        p50_latency=raw["p50_latency"],
        p95_latency=raw["p95_latency"],
        p99_latency=raw["p99_latency"],
    )


def design_to_dict(design: "GeneratedDesign") -> dict:
    """JSON-safe, lossless dictionary form of a synthesized design.

    The encoding leans on two :class:`~repro.topology.network.Network`
    invariants — ``add_switch`` and ``add_link`` assign sequential ids —
    so switches are implied by count, links are a list indexed by link
    id, and rebuilding them in order reproduces every id exactly.
    Routes pin their per-hop parallel-link choices, the Theorem 1
    certificate keeps its witnesses, and the partition counters ride as
    :class:`~repro.synthesis.generator.DesignStats`.  The synthesis
    imports are deferred: ``repro.synthesis.portfolio`` imports this
    module's siblings at module scope, so importing synthesis here at
    module scope would cycle.
    """
    net = design.network
    if list(net.switches) != list(range(net.num_switches)):
        raise SerializationError(
            f"non-sequential switch ids {net.switches!r}; cannot encode losslessly"
        )
    links = sorted(net.links, key=lambda l: l.link_id)
    if [l.link_id for l in links] != list(range(len(links))):
        raise SerializationError(
            "non-sequential link ids; cannot encode losslessly"
        )
    cert = design.certificate
    return {
        "pattern_name": design.pattern.name,
        "seed": design.seed,
        "num_processors": net.num_processors,
        "num_switches": net.num_switches,
        "processors": [net.switch_of(p) for p in range(net.num_processors)],
        "links": [[l.u, l.v] for l in links],
        "routes": [
            [r.comm.source, r.comm.dest, list(r.switch_path), list(r.link_ids)]
            for r in sorted(
                design.topology.routing.table,
                key=lambda r: (r.comm.source, r.comm.dest),
            )
        ],
        "switch_map": [[s, n] for s, n in sorted(design.switch_map.items())],
        "pipe_links": sorted(
            [sorted(pair), list(ids)] for pair, ids in design.pipe_links.items()
        ),
        "stats": asdict(design.stats),
        "certificate": {
            "contention_free": cert.contention_free,
            "contention_set_size": cert.contention_set_size,
            "conflict_set_size": cert.conflict_set_size,
            "violations": [
                [list(v.event.as_4tuple), [str(l) for l in v.links]]
                for v in cert.violations
            ],
        },
    }


def design_from_dict(raw: dict, pattern: "CommunicationPattern") -> "GeneratedDesign":
    """Invert :func:`design_to_dict` against the original pattern.

    The pattern itself is not serialized (the cache key already pins its
    full fingerprint); the caller supplies it and the clique analysis is
    recomputed — ``CliqueAnalysis.of`` is a pure function of the
    pattern.  ``result`` is ``None`` on the rehydrated design: the
    partition state does not survive serialization, only its counters do
    (``stats``).  Round-tripping the result through
    :func:`design_to_dict` is byte-identical.
    """
    from repro.model.cliques import CliqueAnalysis
    from repro.model.contention import ContentionEvent
    from repro.model.message import Communication
    from repro.model.theorem import ContentionCertificate, ContentionViolation
    from repro.synthesis.generator import DesignStats, FallbackRouting, GeneratedDesign
    from repro.topology.builders import Topology
    from repro.topology.network import Network
    from repro.topology.routing import TableRouting, make_route

    if raw["pattern_name"] != pattern.name:
        raise SerializationError(
            f"design was synthesized for pattern {raw['pattern_name']!r}, "
            f"got {pattern.name!r}"
        )
    net = Network(raw["num_processors"])
    for _ in range(raw["num_switches"]):
        net.add_switch()
    for proc, switch in enumerate(raw["processors"]):
        net.attach_processor(proc, switch)
    for u, v in raw["links"]:
        net.add_link(u, v)
    routes = [
        make_route(
            net,
            Communication(source, dest),
            switch_path,
            link_choices=dict(enumerate(link_ids)),
        )
        for source, dest, switch_path, link_ids in raw["routes"]
    ]
    routing = FallbackRouting(TableRouting(routes), net)
    rawcert = raw["certificate"]
    certificate = ContentionCertificate(
        contention_free=rawcert["contention_free"],
        contention_set_size=rawcert["contention_set_size"],
        conflict_set_size=rawcert["conflict_set_size"],
        violations=tuple(
            ContentionViolation(
                event=ContentionEvent.of(
                    Communication(s1, d1), Communication(s2, d2)
                ),
                links=tuple(links),
            )
            for (s1, d1, s2, d2), links in rawcert["violations"]
        ),
    )
    topology = Topology(
        name=f"generated-{pattern.name}",
        network=net,
        routing=routing,
        coords=None,
        kind="generated",
    )
    return GeneratedDesign(
        topology=topology,
        pattern=pattern,
        analysis=CliqueAnalysis.of(pattern),
        certificate=certificate,
        switch_map={s: n for s, n in raw["switch_map"]},
        pipe_links={
            frozenset(pair): tuple(ids) for pair, ids in raw["pipe_links"]
        },
        seed=raw["seed"],
        stats=DesignStats(**raw["stats"]),
        result=None,
    )


def canonical_json(payload) -> str:
    """Canonical JSON text: sorted keys, no whitespace.

    Two payloads are byte-identical iff their canonical JSON strings
    are equal — the determinism harness's definition of "same results".
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
