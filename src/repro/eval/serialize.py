"""Stable serialization of simulation results and cache payloads.

Link resources are tuples (``("link", 3, 0)``, ``("inj", 2)``,
``("ej", 5)``) and therefore not JSON keys.  :func:`encode_resource`
gives each one a stable string form (``"link:3:0"``) used by the
on-disk result cache and the utilization report, and
:func:`decode_resource` inverts it exactly.

:func:`result_to_dict` / :func:`result_from_dict` round-trip a
:class:`~repro.simulator.stats.SimulationResult` through JSON-safe
dictionaries losslessly (floats survive via JSON's shortest-repr
round-trip), so cached results are byte-identical to freshly computed
ones once both pass through :func:`canonical_json`.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, Tuple

from repro.errors import ReproError
from repro.simulator.config import SimConfig
from repro.simulator.openloop import LoadPoint
from repro.simulator.stats import SimulationResult

_RESOURCE_KINDS = ("link", "inj", "ej")


class SerializationError(ReproError):
    """A payload could not be encoded or decoded."""


def encode_resource(resource: Tuple) -> str:
    """Stable string form of a directed-channel resource tuple.

    ``("link", 3, 0)`` -> ``"link:3:0"``; ``("inj", 2)`` -> ``"inj:2"``.
    """
    if not isinstance(resource, tuple) or not resource:
        raise SerializationError(f"not a resource tuple: {resource!r}")
    kind = resource[0]
    if kind not in _RESOURCE_KINDS:
        raise SerializationError(f"unknown resource kind {kind!r} in {resource!r}")
    if kind == "link" and len(resource) != 3:
        raise SerializationError(f"link resource needs (kind, id, dir): {resource!r}")
    if kind in ("inj", "ej") and len(resource) != 2:
        raise SerializationError(f"{kind} resource needs (kind, processor): {resource!r}")
    for part in resource[1:]:
        if not isinstance(part, int) or isinstance(part, bool):
            raise SerializationError(f"non-integer field {part!r} in {resource!r}")
    return ":".join([kind] + [str(p) for p in resource[1:]])


def decode_resource(encoded: str) -> Tuple:
    """Invert :func:`encode_resource`."""
    parts = encoded.split(":")
    if parts[0] not in _RESOURCE_KINDS:
        raise SerializationError(f"unknown resource encoding {encoded!r}")
    try:
        fields = tuple(int(p) for p in parts[1:])
    except ValueError:
        raise SerializationError(f"malformed resource encoding {encoded!r}") from None
    resource = (parts[0],) + fields
    # Validate shape by re-encoding.
    if encode_resource(resource) != encoded:
        raise SerializationError(f"malformed resource encoding {encoded!r}")
    return resource


def encode_link_utilization(utilization: Dict[Tuple, float]) -> Dict[str, float]:
    """String-keyed, sort-stable form of a per-channel busy-fraction map."""
    return {
        encode_resource(res): frac
        for res, frac in sorted(utilization.items(), key=lambda kv: encode_resource(kv[0]))
    }


def decode_link_utilization(encoded: Dict[str, float]) -> Dict[Tuple, float]:
    return {decode_resource(key): frac for key, frac in encoded.items()}


def config_to_dict(config: SimConfig) -> dict:
    return asdict(config)


def config_from_dict(raw: dict) -> SimConfig:
    return SimConfig(**raw)


def result_to_dict(result: SimulationResult) -> dict:
    """JSON-safe dictionary form of a simulation result."""
    return {
        "topology_name": result.topology_name,
        "program_name": result.program_name,
        "execution_cycles": result.execution_cycles,
        "comm_cycles_per_process": list(result.comm_cycles_per_process),
        "delivered_packets": result.delivered_packets,
        "deadlocks_detected": result.deadlocks_detected,
        "retransmissions": result.retransmissions,
        "fault_packet_kills": result.fault_packet_kills,
        "flit_hops": result.flit_hops,
        "link_utilization": encode_link_utilization(result.link_utilization),
        "config": config_to_dict(result.config),
        "packet_latencies": list(result.packet_latencies),
    }


def result_from_dict(raw: dict) -> SimulationResult:
    """Invert :func:`result_to_dict`."""
    return SimulationResult(
        topology_name=raw["topology_name"],
        program_name=raw["program_name"],
        execution_cycles=raw["execution_cycles"],
        comm_cycles_per_process=tuple(raw["comm_cycles_per_process"]),
        delivered_packets=raw["delivered_packets"],
        deadlocks_detected=raw["deadlocks_detected"],
        retransmissions=raw["retransmissions"],
        fault_packet_kills=raw["fault_packet_kills"],
        flit_hops=raw["flit_hops"],
        link_utilization=decode_link_utilization(raw["link_utilization"]),
        config=config_from_dict(raw["config"]),
        packet_latencies=tuple(raw["packet_latencies"]),
    )


def loadpoint_to_dict(point: LoadPoint) -> dict:
    """JSON-safe dictionary form of one open-loop measurement."""
    return {
        "offered_flits_per_node_cycle": point.offered_flits_per_node_cycle,
        "accepted_flits_per_node_cycle": point.accepted_flits_per_node_cycle,
        "avg_latency": point.avg_latency,
        "delivered": point.delivered,
        "saturated": point.saturated,
        "p50_latency": point.p50_latency,
        "p95_latency": point.p95_latency,
        "p99_latency": point.p99_latency,
    }


def loadpoint_from_dict(raw: dict) -> LoadPoint:
    """Invert :func:`loadpoint_to_dict`."""
    return LoadPoint(
        offered_flits_per_node_cycle=raw["offered_flits_per_node_cycle"],
        accepted_flits_per_node_cycle=raw["accepted_flits_per_node_cycle"],
        avg_latency=raw["avg_latency"],
        delivered=raw["delivered"],
        saturated=raw["saturated"],
        p50_latency=raw["p50_latency"],
        p95_latency=raw["p95_latency"],
        p99_latency=raw["p99_latency"],
    )


def canonical_json(payload) -> str:
    """Canonical JSON text: sorted keys, no whitespace.

    Two payloads are byte-identical iff their canonical JSON strings
    are equal — the determinism harness's definition of "same results".
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
