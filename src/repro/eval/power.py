"""Energy model for evaluated networks (paper Section 5 future work).

The paper's conclusion proposes extending the methodology toward
power-efficient on-chip networks.  This module provides the standard
first-order NoC energy accounting over a finished simulation:

* **dynamic energy** — every flit-hop pays one switch traversal plus a
  wire traversal proportional to the link's length in tiles;
* **static energy** — switches and wire capacitance leak for the whole
  execution, proportional to area (switch count + total link length).

Absolute numbers use generic per-event picojoule constants; the useful
output is the *relative* energy of two networks running the same
program (the generated networks win on both terms: fewer switches to
leak and shorter average paths to traverse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.simulator.stats import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants (picojoules).

    Defaults are representative early-2000s 0.18um-class figures; only
    their ratios matter for topology comparisons.
    """

    switch_traversal_pj: float = 1.0
    link_traversal_pj_per_tile: float = 0.5
    switch_leakage_pj_per_cycle: float = 0.002
    link_leakage_pj_per_cycle_per_tile: float = 0.001

    def __post_init__(self) -> None:
        for name in (
            "switch_traversal_pj",
            "link_traversal_pj_per_tile",
            "switch_leakage_pj_per_cycle",
            "link_leakage_pj_per_cycle_per_tile",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulation on one network."""

    topology_name: str
    dynamic_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.static_pj


def estimate_energy(
    result: SimulationResult,
    num_switches: int,
    link_lengths: Optional[Mapping[int, int]] = None,
    num_links: int = 0,
    model: Optional[EnergyModel] = None,
) -> EnergyReport:
    """Estimate the energy of a finished simulation.

    Args:
        result: the simulation to account.
        num_switches: switches in the simulated network.
        link_lengths: link id -> length in tiles (from the floorplan);
            missing links count as length 1.
        num_links: total links (needed when ``link_lengths`` omits
            some); defaults to ``len(link_lengths)``.
        model: energy constants.
    """
    model = model or EnergyModel()
    link_lengths = dict(link_lengths or {})
    if num_links == 0:
        num_links = len(link_lengths)
    cycles = result.execution_cycles

    # Dynamic: reconstruct per-channel flit counts from the utilization
    # map (busy fraction x cycles = flits sent on that channel).
    dynamic = 0.0
    for cid, utilization in result.link_utilization.items():
        flits = utilization * cycles
        dynamic += flits * model.switch_traversal_pj
        if cid[0] == "link":
            length = max(1, link_lengths.get(cid[1], 1))
            dynamic += flits * model.link_traversal_pj_per_tile * length

    total_length = sum(max(1, link_lengths.get(i, 1)) for i in range(num_links)) if num_links else 0
    if link_lengths:
        total_length = sum(max(1, v) for v in link_lengths.values())
    static = cycles * (
        num_switches * model.switch_leakage_pj_per_cycle
        + total_length * model.link_leakage_pj_per_cycle_per_tile
    )
    return EnergyReport(
        topology_name=result.topology_name,
        dynamic_pj=dynamic,
        static_pj=static,
    )
