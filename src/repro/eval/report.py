"""ASCII tables in the shape of the paper's figures."""

from __future__ import annotations

from typing import List, Sequence

from repro.eval.experiments import CrossWorkloadRow, Figure7Row, Figure8Row


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])


def figure7_table(rows: List[Figure7Row], title: str) -> str:
    """Resources normalized to the mesh (mesh = 1.00 by definition)."""
    body = [
        [
            r.benchmark,
            f"{r.generated_switch_ratio:.2f}",
            f"{r.generated_link_ratio:.2f}",
            f"{r.torus_switch_ratio:.2f}",
            f"{r.torus_link_ratio:.2f}",
            f"{r.num_switches}",
            f"{r.num_links}",
        ]
        for r in rows
    ]
    headers = [
        "benchmark",
        "gen switch",
        "gen link",
        "torus switch",
        "torus link",
        "#sw",
        "#links",
    ]
    return f"{title}\n" + _table(headers, body)


def figure8_table(rows: List[Figure8Row], title: str) -> str:
    """Execution/communication time normalized to the crossbar."""
    body = [
        [
            r.benchmark,
            r.topology,
            f"{r.execution_ratio:.3f}",
            f"{r.communication_ratio:.3f}",
            f"{r.deadlocks}",
        ]
        for r in rows
    ]
    headers = ["benchmark", "topology", "exec/xbar", "comm/xbar", "deadlocks"]
    return f"{title}\n" + _table(headers, body)


def cross_workload_table(rows: List[CrossWorkloadRow], title: str) -> str:
    body = [
        [
            r.guest,
            r.network,
            f"{r.execution_cycles}",
            f"{100 * r.degradation_vs_own:+.1f}%",
        ]
        for r in rows
    ]
    headers = ["guest", "network", "exec cycles", "vs own net"]
    return f"{title}\n" + _table(headers, body)
