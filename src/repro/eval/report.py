"""ASCII tables in the shape of the paper's figures."""

from __future__ import annotations

from typing import List, Sequence

from repro.eval.experiments import CrossWorkloadRow, Figure7Row, Figure8Row
from repro.eval.resilience import ResilienceReport
from repro.eval.serialize import encode_resource
from repro.simulator.stats import SimulationResult


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])


def figure7_table(rows: List[Figure7Row], title: str) -> str:
    """Resources normalized to the mesh (mesh = 1.00 by definition)."""
    body = [
        [
            r.benchmark,
            f"{r.generated_switch_ratio:.2f}",
            f"{r.generated_link_ratio:.2f}",
            f"{r.torus_switch_ratio:.2f}",
            f"{r.torus_link_ratio:.2f}",
            f"{r.num_switches}",
            f"{r.num_links}",
        ]
        for r in rows
    ]
    headers = [
        "benchmark",
        "gen switch",
        "gen link",
        "torus switch",
        "torus link",
        "#sw",
        "#links",
    ]
    return f"{title}\n" + _table(headers, body)


def figure8_table(rows: List[Figure8Row], title: str) -> str:
    """Execution/communication time normalized to the crossbar."""
    body = [
        [
            r.benchmark,
            r.topology,
            f"{r.execution_ratio:.3f}",
            f"{r.communication_ratio:.3f}",
            f"{r.deadlocks}",
        ]
        for r in rows
    ]
    headers = ["benchmark", "topology", "exec/xbar", "comm/xbar", "deadlocks"]
    return f"{title}\n" + _table(headers, body)


def cross_workload_table(rows: List[CrossWorkloadRow], title: str) -> str:
    body = [
        [
            r.guest,
            r.network,
            f"{r.execution_cycles}",
            f"{100 * r.degradation_vs_own:+.1f}%",
        ]
        for r in rows
    ]
    headers = ["guest", "network", "exec cycles", "vs own net"]
    return f"{title}\n" + _table(headers, body)


def utilization_table(result: SimulationResult, title: str, top: int = 0) -> str:
    """Per-channel busy fractions, busiest first.

    Channels are shown with their stable string encoding
    (``link:<id>:<dir>``, ``inj:<proc>``, ``ej:<proc>``) — the same keys
    the result cache serializes under.  ``top`` limits the table to the
    N busiest channels (0 = all).
    """
    ranked = sorted(
        result.link_utilization.items(),
        key=lambda kv: (-kv[1], encode_resource(kv[0])),
    )
    if top > 0:
        ranked = ranked[:top]
    body = [[encode_resource(res), f"{100 * frac:.1f}%"] for res, frac in ranked]
    headers = ["channel", "busy"]
    return f"{title}\n" + _table(headers, body)


def resilience_table(report: ResilienceReport, title: str) -> str:
    """Per-scenario degradation plus the aggregate summary line.

    Baseline is the fault-free run; "infl" is execution time over it.
    Disconnected scenarios show the deliverable-message fraction and no
    timing (the program cannot finish on a partitioned network).
    """
    body = []
    for o in report.outcomes:
        body.append(
            [
                o.scenario.name,
                o.status,
                "-" if o.execution_cycles is None else f"{o.execution_cycles}",
                "-" if o.inflation is None else f"{o.inflation:.3f}",
                f"{100 * o.delivered_fraction:.0f}%",
                f"{o.rerouted_pairs}",
                f"{o.disconnected_pairs}",
                f"{o.retransmissions}",
                "-" if o.disconnected else f"{o.p99}",
            ]
        )
    headers = [
        "scenario",
        "status",
        "exec",
        "infl",
        "delivered",
        "rerouted",
        "cut pairs",
        "retrans",
        "p99 lat",
    ]
    baseline_line = (
        f"fault-free baseline: {report.baseline.execution_cycles} cycles, "
        f"p50/p95/p99 latency {report.baseline.p50_packet_latency}/"
        f"{report.baseline.p95_packet_latency}/{report.baseline.p99_packet_latency}"
    )
    return "\n".join(
        [f"{title}", baseline_line, _table(headers, body), report.summary()]
    )
