"""The paper's evaluation (Section 4) as reproducible experiments."""

from repro.eval.experiments import (
    CrossWorkloadRow,
    Figure7Row,
    Figure8Row,
    cross_workload_rows,
    figure7_rows,
    figure8_rows,
    paper_sizes,
)
from repro.eval.report import (
    cross_workload_table,
    figure7_table,
    figure8_table,
    resilience_table,
)
from repro.eval.resilience import (
    ResilienceReport,
    ScenarioOutcome,
    program_pairs,
    run_resilience,
)
from repro.eval.runner import (
    TOPOLOGY_ORDER,
    BenchmarkSetup,
    prepare,
    run_cross_workload,
    run_performance,
)

__all__ = [
    "BenchmarkSetup",
    "CrossWorkloadRow",
    "Figure7Row",
    "Figure8Row",
    "ResilienceReport",
    "ScenarioOutcome",
    "TOPOLOGY_ORDER",
    "cross_workload_rows",
    "cross_workload_table",
    "figure7_rows",
    "figure7_table",
    "figure8_rows",
    "figure8_table",
    "paper_sizes",
    "prepare",
    "program_pairs",
    "resilience_table",
    "run_cross_workload",
    "run_performance",
    "run_resilience",
]
