"""Resilience evaluation: fault campaigns over topologies.

For each fault scenario the runner first repairs the routing function
around permanently dead resources (:mod:`repro.faults.repair`).  If any
communication the program needs is disconnected, the scenario is scored
without simulation — a minimal network that lost its only path cannot
deliver, and replaying the program would block forever.  Otherwise the
program is replayed with the fault injected and the repaired routes,
and degradation is measured against the fault-free baseline:
execution-time inflation, delivered-packet fraction, retransmissions,
fault-induced packet kills, and latency percentiles.

All topologies — including the torus, which the paper simulates with
fully-adaptive routing — are evaluated with deterministic source
routing here, so the repair pass applies uniformly and fault-free
baselines are directly comparable to degraded runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.eval.parallel import (
    ProgressCallback,
    ResilienceCell,
    ResultCache,
    run_cells,
)
from repro.eval.serialize import result_from_dict
from repro.faults.spec import FaultScenario
from repro.model.message import Communication
from repro.simulator.config import SimConfig
from repro.simulator.stats import SimulationResult
from repro.topology.builders import Topology
from repro.workloads.events import Program


def program_pairs(program: Program) -> Tuple[Communication, ...]:
    """The distinct (source, dest) pairs a program communicates over."""
    return program.communication_pairs()


@dataclass(frozen=True)
class ScenarioOutcome:
    """Degradation of one fault scenario relative to the fault-free run.

    Attributes:
        scenario: the injected faults.
        status: ``"ok"`` (repaired and fully delivered) or
            ``"disconnected"`` (some program pair lost its only path).
        rerouted_pairs: program pairs the repair pass moved to new routes.
        disconnected_pairs: program pairs with no surviving path.
        execution_cycles: degraded completion time (``None`` when
            disconnected — the program cannot finish).
        inflation: execution time over the fault-free baseline (>= 1.0
            up to scheduling noise; ``None`` when disconnected).
        delivered_fraction: deliverable messages over total messages.
            1.0 for repaired scenarios; below 1.0 when disconnection
            strands messages.
        retransmissions: packets re-injected (timeout- or fault-killed).
        fault_packet_kills: packets whose flits were lost on a failing
            channel.
        deadlocks: timeout-triggered recovery activations.
        p50/p95/p99: delivered-packet latency percentiles (0 when the
            scenario was not simulated).
    """

    scenario: FaultScenario
    status: str
    rerouted_pairs: int
    disconnected_pairs: int
    execution_cycles: Optional[int]
    inflation: Optional[float]
    delivered_fraction: float
    retransmissions: int
    fault_packet_kills: int
    deadlocks: int
    p50: int
    p95: int
    p99: int

    @property
    def disconnected(self) -> bool:
        return self.status == "disconnected"


@dataclass(frozen=True)
class ResilienceReport:
    """Aggregate outcome of one fault campaign on one topology."""

    topology_name: str
    program_name: str
    baseline: SimulationResult
    outcomes: Tuple[ScenarioOutcome, ...]

    @property
    def num_scenarios(self) -> int:
        return len(self.outcomes)

    @property
    def num_disconnected(self) -> int:
        return sum(1 for o in self.outcomes if o.disconnected)

    @property
    def connectivity(self) -> float:
        """Fraction of scenarios the network survives fully connected."""
        if not self.outcomes:
            return 1.0
        return 1.0 - self.num_disconnected / self.num_scenarios

    @property
    def max_inflation(self) -> float:
        """Worst execution-time inflation over the connected scenarios."""
        return max(
            (o.inflation for o in self.outcomes if o.inflation is not None),
            default=1.0,
        )

    @property
    def mean_inflation(self) -> float:
        inflations = [o.inflation for o in self.outcomes if o.inflation is not None]
        if not inflations:
            return 1.0
        return sum(inflations) / len(inflations)

    @property
    def min_delivered_fraction(self) -> float:
        return min((o.delivered_fraction for o in self.outcomes), default=1.0)

    @property
    def total_retransmissions(self) -> int:
        return sum(o.retransmissions for o in self.outcomes)

    def summary(self) -> str:
        """One-line aggregate used by the CLI and benches."""
        return (
            f"{self.program_name} on {self.topology_name}: "
            f"{self.num_scenarios} scenarios, "
            f"{100 * self.connectivity:.0f}% survive connected, "
            f"mean inflation {self.mean_inflation:.3f}x "
            f"(worst {self.max_inflation:.3f}x), "
            f"min delivered {100 * self.min_delivered_fraction:.0f}%, "
            f"{self.total_retransmissions} retransmissions"
        )


def run_resilience(
    program: Program,
    topology: Topology,
    scenarios: Iterable[FaultScenario],
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResilienceReport:
    """Sweep fault scenarios for one program on one topology.

    The fault-free baseline uses the topology's own (deterministic)
    routing function; each scenario uses the repaired table, so the
    baseline and the degraded runs share the routing discipline.  The
    baseline and every scenario are independent cells fanned out (and
    cached) through :mod:`repro.eval.parallel`.
    """
    config = config or SimConfig()
    scenario_list = list(scenarios)
    cells = [
        ResilienceCell(
            label=f"{program.name}/{topology.name}/baseline",
            program=program,
            topology=topology,
            config=config,
            link_delays=link_delays,
            scenario=None,
        )
    ]
    cells.extend(
        ResilienceCell(
            label=f"{program.name}/{topology.name}/{scenario.name}",
            program=program,
            topology=topology,
            config=config,
            link_delays=link_delays,
            scenario=scenario,
        )
        for scenario in scenario_list
    )
    payloads = [
        o.payload for o in run_cells(cells, jobs=jobs, cache=cache, progress=progress)
    ]
    baseline = result_from_dict(payloads[0]["result"])
    total_messages = program.total_messages
    outcomes = []
    for scenario, payload in zip(scenario_list, payloads[1:]):
        if payload["status"] == "disconnected":
            stranded = payload["stranded_messages"]
            outcomes.append(
                ScenarioOutcome(
                    scenario=scenario,
                    status="disconnected",
                    rerouted_pairs=payload["rerouted_pairs"],
                    disconnected_pairs=payload["disconnected_pairs"],
                    execution_cycles=None,
                    inflation=None,
                    delivered_fraction=(
                        (total_messages - stranded) / total_messages
                        if total_messages
                        else 1.0
                    ),
                    retransmissions=0,
                    fault_packet_kills=0,
                    deadlocks=0,
                    p50=0,
                    p95=0,
                    p99=0,
                )
            )
            continue
        result = result_from_dict(payload["result"])
        outcomes.append(
            ScenarioOutcome(
                scenario=scenario,
                status="ok",
                rerouted_pairs=payload["rerouted_pairs"],
                disconnected_pairs=0,
                execution_cycles=result.execution_cycles,
                inflation=result.execution_cycles / max(1, baseline.execution_cycles),
                delivered_fraction=(
                    result.delivered_packets / total_messages if total_messages else 1.0
                ),
                retransmissions=result.retransmissions,
                fault_packet_kills=result.fault_packet_kills,
                deadlocks=result.deadlocks_detected,
                p50=result.p50_packet_latency,
                p95=result.p95_packet_latency,
                p99=result.p99_packet_latency,
            )
        )
    return ResilienceReport(
        topology_name=topology.name,
        program_name=program.name,
        baseline=baseline,
        outcomes=tuple(outcomes),
    )
