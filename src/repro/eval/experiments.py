"""The paper's experiments as structured row producers.

Each function regenerates one table/figure of the evaluation section:

* :func:`figure7_rows` — switch/link area of the generated networks
  normalized to the mesh (Figure 7a for the 8/9-node sizes, 7b for 16).
* :func:`figure8_rows` — total execution and communication time of
  mesh/torus/generated networks normalized to the crossbar (Figure 8).
* :func:`cross_workload_rows` — FFT and BT traces replayed on the
  CG-generated network (Section 4.2's robustness paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.eval.runner import BenchmarkSetup, prepare, run_cross_workload, run_performance
from repro.floorplan.area import TORUS_LINK_FACTOR, measure_area
from repro.simulator.config import SimConfig
from repro.workloads.nas import BENCHMARK_NAMES, PAPER_LARGE_SIZE, PAPER_SMALL_SIZES


def paper_sizes(size: str) -> Dict[str, int]:
    """Benchmark name -> process count for "small" (8/9) or "large" (16)."""
    if size == "small":
        return dict(PAPER_SMALL_SIZES)
    return {name: PAPER_LARGE_SIZE for name in BENCHMARK_NAMES}


@dataclass(frozen=True)
class Figure7Row:
    """One bar group of Figure 7: resources normalized to the mesh."""

    benchmark: str
    num_processes: int
    generated_switch_ratio: float
    generated_link_ratio: float
    torus_switch_ratio: float = 1.0
    torus_link_ratio: float = TORUS_LINK_FACTOR
    num_switches: int = 0
    num_links: int = 0


def figure7_rows(size: str, seed: int = 0) -> List[Figure7Row]:
    """Regenerate Figure 7(a) ("small") or 7(b) ("large")."""
    rows = []
    for name, n in paper_sizes(size).items():
        setup = prepare(name, n, seed=seed)
        report = measure_area(
            setup.design.topology, seed=seed, floorplan=setup.floorplan
        )
        rows.append(
            Figure7Row(
                benchmark=setup.name,
                num_processes=n,
                generated_switch_ratio=report.switch_ratio,
                generated_link_ratio=report.link_ratio,
                num_switches=report.num_switches,
                num_links=setup.design.num_links,
            )
        )
    return rows


@dataclass(frozen=True)
class Figure8Row:
    """One bar group of Figure 8: times normalized to the crossbar."""

    benchmark: str
    num_processes: int
    topology: str
    execution_ratio: float
    communication_ratio: float
    execution_cycles: int
    avg_comm_cycles: float
    deadlocks: int


def figure8_rows(
    size: str, seed: int = 0, config: Optional[SimConfig] = None
) -> List[Figure8Row]:
    """Regenerate Figure 8(a) ("small") or 8(b) ("large")."""
    rows = []
    for name, n in paper_sizes(size).items():
        setup = prepare(name, n, seed=seed)
        results = run_performance(setup, config=config)
        base = results["crossbar"]
        for kind in ("crossbar", "mesh", "torus", "generated"):
            r = results[kind]
            rows.append(
                Figure8Row(
                    benchmark=setup.name,
                    num_processes=n,
                    topology=kind,
                    execution_ratio=r.execution_cycles / base.execution_cycles,
                    communication_ratio=(
                        r.avg_comm_cycles / base.avg_comm_cycles
                        if base.avg_comm_cycles
                        else 1.0
                    ),
                    execution_cycles=r.execution_cycles,
                    avg_comm_cycles=r.avg_comm_cycles,
                    deadlocks=r.deadlocks_detected,
                )
            )
    return rows


@dataclass(frozen=True)
class CrossWorkloadRow:
    """One row of the Section 4.2 robustness study."""

    guest: str
    network: str  # "own", "host" (CG network) or "mesh"
    execution_cycles: int
    degradation_vs_own: float


def cross_workload_rows(
    seed: int = 0, config: Optional[SimConfig] = None
) -> List[CrossWorkloadRow]:
    """FFT-16 and BT-16 replayed on the CG-16 generated network."""
    host = prepare("cg", PAPER_LARGE_SIZE, seed=seed)
    rows = []
    for guest_name in ("fft", "bt"):
        guest = prepare(guest_name, PAPER_LARGE_SIZE, seed=seed)
        results = run_cross_workload(host, guest, config=config)
        own = results["own"].execution_cycles
        for network in ("own", "host", "mesh"):
            cycles = results[network].execution_cycles
            rows.append(
                CrossWorkloadRow(
                    guest=guest.name,
                    network=network,
                    execution_cycles=cycles,
                    degradation_vs_own=cycles / own - 1.0,
                )
            )
    return rows
