"""The paper's experiments as structured row producers.

Each function regenerates one table/figure of the evaluation section:

* :func:`figure7_rows` — switch/link area of the generated networks
  normalized to the mesh (Figure 7a for the 8/9-node sizes, 7b for 16).
* :func:`figure8_rows` — total execution and communication time of
  mesh/torus/generated networks normalized to the crossbar (Figure 8).
* :func:`cross_workload_rows` — FFT and BT traces replayed on the
  CG-generated network (Section 4.2's robustness paragraph).

All row producers accept ``jobs``/``cache``/``progress`` and fan their
simulation cells out through :mod:`repro.eval.parallel`; rows are always
built from the JSON round-tripped payloads, so serial, parallel and
cache-hit invocations produce identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eval.parallel import (
    PerformanceCell,
    ProgressCallback,
    ResultCache,
    SetupTask,
    prepare_setups,
    run_cells,
)
from repro.eval.runner import TOPOLOGY_ORDER, BenchmarkSetup
from repro.eval.serialize import result_from_dict
from repro.floorplan.area import TORUS_LINK_FACTOR, measure_area
from repro.simulator.config import SimConfig
from repro.workloads.nas import BENCHMARK_NAMES, PAPER_LARGE_SIZE, PAPER_SMALL_SIZES


def paper_sizes(size: str) -> Dict[str, int]:
    """Benchmark name -> process count for "small" (8/9) or "large" (16)."""
    if size == "small":
        return dict(PAPER_SMALL_SIZES)
    return {name: PAPER_LARGE_SIZE for name in BENCHMARK_NAMES}


def _setups(
    sizes: Dict[str, int],
    seed: int,
    jobs: Optional[int],
    cache: Optional[ResultCache],
) -> Dict[str, BenchmarkSetup]:
    tasks = {name: SetupTask(name, n, seed=seed) for name, n in sizes.items()}
    built = prepare_setups(list(tasks.values()), jobs=jobs, cache=cache)
    return {name: built[task] for name, task in tasks.items()}


@dataclass(frozen=True)
class Figure7Row:
    """One bar group of Figure 7: resources normalized to the mesh."""

    benchmark: str
    num_processes: int
    generated_switch_ratio: float
    generated_link_ratio: float
    torus_switch_ratio: float = 1.0
    torus_link_ratio: float = TORUS_LINK_FACTOR
    num_switches: int = 0
    num_links: int = 0


def figure7_rows(
    size: str,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Figure7Row]:
    """Regenerate Figure 7(a) ("small") or 7(b) ("large").

    Figure 7 needs no simulation — only the synthesized designs and
    their floorplans — so parallelism and caching apply to the setups.
    """
    sizes = paper_sizes(size)
    setups = _setups(sizes, seed, jobs, cache)
    rows = []
    for name, n in sizes.items():
        setup = setups[name]
        report = measure_area(
            setup.design.topology, seed=seed, floorplan=setup.floorplan
        )
        rows.append(
            Figure7Row(
                benchmark=setup.name,
                num_processes=n,
                generated_switch_ratio=report.switch_ratio,
                generated_link_ratio=report.link_ratio,
                num_switches=report.num_switches,
                num_links=setup.design.num_links,
            )
        )
    return rows


@dataclass(frozen=True)
class Figure8Row:
    """One bar group of Figure 8: times normalized to the crossbar."""

    benchmark: str
    num_processes: int
    topology: str
    execution_ratio: float
    communication_ratio: float
    execution_cycles: int
    avg_comm_cycles: float
    deadlocks: int


def figure8_rows(
    size: str,
    seed: int = 0,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Figure8Row]:
    """Regenerate Figure 8(a) ("small") or 8(b) ("large")."""
    config = config or SimConfig()
    sizes = paper_sizes(size)
    setups = _setups(sizes, seed, jobs, cache)
    cells = [
        PerformanceCell(
            label=f"{setups[name].name}/{kind}",
            program=setups[name].benchmark.program,
            topology=setups[name].topology(kind),
            config=config,
            link_delays=setups[name].link_delays(kind),
        )
        for name in sizes
        for kind in TOPOLOGY_ORDER
    ]
    outcomes = run_cells(cells, jobs=jobs, cache=cache, progress=progress)
    rows = []
    per_kind = len(TOPOLOGY_ORDER)
    for group, name in enumerate(sizes):
        setup = setups[name]
        results = {
            kind: result_from_dict(outcomes[group * per_kind + i].payload)
            for i, kind in enumerate(TOPOLOGY_ORDER)
        }
        base = results["crossbar"]
        for kind in TOPOLOGY_ORDER:
            r = results[kind]
            rows.append(
                Figure8Row(
                    benchmark=setup.name,
                    num_processes=sizes[name],
                    topology=kind,
                    execution_ratio=r.execution_cycles / base.execution_cycles,
                    communication_ratio=(
                        r.avg_comm_cycles / base.avg_comm_cycles
                        if base.avg_comm_cycles
                        else 1.0
                    ),
                    execution_cycles=r.execution_cycles,
                    avg_comm_cycles=r.avg_comm_cycles,
                    deadlocks=r.deadlocks_detected,
                )
            )
    return rows


@dataclass(frozen=True)
class CrossWorkloadRow:
    """One row of the Section 4.2 robustness study."""

    guest: str
    network: str  # "own", "host" (CG network) or "mesh"
    execution_cycles: int
    degradation_vs_own: float


def cross_workload_rows(
    seed: int = 0,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[CrossWorkloadRow]:
    """FFT-16 and BT-16 replayed on the CG-16 generated network."""
    config = config or SimConfig()
    guests = ("fft", "bt")
    sizes = {name: PAPER_LARGE_SIZE for name in ("cg",) + guests}
    setups = _setups(sizes, seed, jobs, cache)
    host = setups["cg"]

    def cell(guest: BenchmarkSetup, network: str) -> PerformanceCell:
        if network == "own":
            topology, delays = guest.design.topology, guest.floorplan.link_delays()
        elif network == "host":
            topology, delays = host.design.topology, host.floorplan.link_delays()
        else:
            topology, delays = guest.baselines["mesh"], None
        return PerformanceCell(
            label=f"{guest.name}/{network}",
            program=guest.benchmark.program,
            topology=topology,
            config=config,
            link_delays=delays,
        )

    networks = ("own", "host", "mesh")
    cells = [cell(setups[g], network) for g in guests for network in networks]
    outcomes = run_cells(cells, jobs=jobs, cache=cache, progress=progress)
    rows = []
    for group, g in enumerate(guests):
        results = {
            network: result_from_dict(outcomes[group * len(networks) + i].payload)
            for i, network in enumerate(networks)
        }
        own = results["own"].execution_cycles
        for network in networks:
            cycles = results[network].execution_cycles
            rows.append(
                CrossWorkloadRow(
                    guest=setups[g].name,
                    network=network,
                    execution_cycles=cycles,
                    degradation_vs_own=cycles / own - 1.0,
                )
            )
    return rows
