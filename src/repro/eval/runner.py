"""Orchestration: benchmark -> synthesized design -> floorplan -> sims.

Setups are cached per (benchmark, size, seed), since synthesis and
placement dominate the cost of regenerating the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from repro.floorplan.place import Floorplan, place
from repro.obs import DISABLED, Observability
from repro.simulator.config import SimConfig
from repro.simulator.simulation import simulate
from repro.simulator.stats import SimulationResult
from repro.synthesis.generator import GeneratedDesign, generate_network
from repro.topology.builders import Topology, crossbar, mesh_for, torus_for
from repro.workloads.nas import Benchmark, benchmark

# Topologies compared throughout the paper's evaluation.
TOPOLOGY_ORDER = ("crossbar", "mesh", "torus", "generated")


@dataclass
class BenchmarkSetup:
    """Everything needed to evaluate one benchmark configuration."""

    benchmark: Benchmark
    design: GeneratedDesign
    floorplan: Floorplan
    baselines: Dict[str, Topology]

    @property
    def name(self) -> str:
        return self.benchmark.name

    def topology(self, kind: str) -> Topology:
        if kind == "generated":
            return self.design.topology
        return self.baselines[kind]

    def link_delays(self, kind: str) -> Optional[Dict[int, int]]:
        """Per-link delays: floorplan lengths for the generated network,
        one cycle for mesh links, two for (folded) torus wraparounds."""
        if kind == "generated":
            return self.floorplan.link_delays()
        if kind == "torus":
            top = self.baselines["torus"]
            delays = {}
            for link in top.network.links:
                (x1, y1) = top.coords[link.u]
                (x2, y2) = top.coords[link.v]
                wrap = abs(x1 - x2) > 1 or abs(y1 - y2) > 1
                delays[link.link_id] = 2 if wrap else 1
            return delays
        return None


def _build_setup(
    name: str, n: int, seed: int, restarts: int, obs: Observability
) -> BenchmarkSetup:
    tracer = obs.tracer
    with tracer.span("setup.benchmark", benchmark=name, n=n):
        bench = benchmark(name, n)
    with tracer.span("setup.synthesize", benchmark=name, n=n, seed=seed):
        design = generate_network(bench.pattern, seed=seed, restarts=restarts, obs=obs)
    with tracer.span("setup.floorplan", benchmark=name, n=n, seed=seed):
        plan = place(design.network, seed=seed, obs=obs)
    with tracer.span("setup.baselines", n=n):
        baselines = {
            "crossbar": crossbar(n),
            "mesh": mesh_for(n),
            "torus": torus_for(n),
        }
    return BenchmarkSetup(
        benchmark=bench,
        design=design,
        floorplan=plan,
        baselines=baselines,
    )


@lru_cache(maxsize=None)
def _prepare_cached(name: str, n: int, seed: int, restarts: int) -> BenchmarkSetup:
    return _build_setup(name, n, seed, restarts, DISABLED)


def prepare(
    name: str,
    n: int,
    seed: int = 0,
    restarts: int = 8,
    obs: Optional[Observability] = None,
) -> BenchmarkSetup:
    """Build (and cache) the full setup for one benchmark at size n.

    With observability enabled the in-process memo is bypassed — a
    profiled setup must actually run its synthesis and placement phases
    to have anything to measure (synthesis is deterministic per seed, so
    the rebuilt setup is identical to a memoized one).
    """
    if obs is None or not obs.enabled:
        return _prepare_cached(name, n, seed, restarts)
    return _build_setup(name, n, seed, restarts, obs)


def run_performance(
    setup: BenchmarkSetup,
    config: Optional[SimConfig] = None,
    kinds: tuple = TOPOLOGY_ORDER,
    obs: Optional[Observability] = None,
) -> Dict[str, SimulationResult]:
    """Simulate the benchmark's program on each requested topology."""
    config = config or SimConfig()
    obs = obs if obs is not None else DISABLED
    results = {}
    for kind in kinds:
        with obs.tracer.span("eval.performance", benchmark=setup.name, kind=kind):
            results[kind] = simulate(
                setup.benchmark.program,
                setup.topology(kind),
                config,
                link_delays=setup.link_delays(kind),
                obs=obs,
            )
    return results


def run_cross_workload(
    host_setup: BenchmarkSetup,
    guest_setup: BenchmarkSetup,
    config: Optional[SimConfig] = None,
) -> Dict[str, SimulationResult]:
    """Replay a guest benchmark on the host's generated network
    (Section 4.2's robustness study).

    Returns results for the guest on its own network, on the host's
    network, and on the mesh baseline.
    """
    config = config or SimConfig()
    program = guest_setup.benchmark.program
    return {
        "own": simulate(
            program,
            guest_setup.design.topology,
            config,
            link_delays=guest_setup.floorplan.link_delays(),
        ),
        "host": simulate(
            program,
            host_setup.design.topology,
            config,
            link_delays=host_setup.floorplan.link_delays(),
        ),
        "mesh": simulate(program, guest_setup.baselines["mesh"], config),
    }
