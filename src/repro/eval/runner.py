"""Orchestration: benchmark -> synthesized design -> floorplan -> sims.

Setups are cached per (benchmark, size, seed), since synthesis and
placement dominate the cost of regenerating the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from repro.floorplan.place import Floorplan, place
from repro.simulator.config import SimConfig
from repro.simulator.simulation import simulate
from repro.simulator.stats import SimulationResult
from repro.synthesis.generator import GeneratedDesign, generate_network
from repro.topology.builders import Topology, crossbar, mesh_for, torus_for
from repro.workloads.nas import Benchmark, benchmark

# Topologies compared throughout the paper's evaluation.
TOPOLOGY_ORDER = ("crossbar", "mesh", "torus", "generated")


@dataclass
class BenchmarkSetup:
    """Everything needed to evaluate one benchmark configuration."""

    benchmark: Benchmark
    design: GeneratedDesign
    floorplan: Floorplan
    baselines: Dict[str, Topology]

    @property
    def name(self) -> str:
        return self.benchmark.name

    def topology(self, kind: str) -> Topology:
        if kind == "generated":
            return self.design.topology
        return self.baselines[kind]

    def link_delays(self, kind: str) -> Optional[Dict[int, int]]:
        """Per-link delays: floorplan lengths for the generated network,
        one cycle for mesh links, two for (folded) torus wraparounds."""
        if kind == "generated":
            return self.floorplan.link_delays()
        if kind == "torus":
            top = self.baselines["torus"]
            delays = {}
            for link in top.network.links:
                (x1, y1) = top.coords[link.u]
                (x2, y2) = top.coords[link.v]
                wrap = abs(x1 - x2) > 1 or abs(y1 - y2) > 1
                delays[link.link_id] = 2 if wrap else 1
            return delays
        return None


@lru_cache(maxsize=None)
def prepare(name: str, n: int, seed: int = 0, restarts: int = 8) -> BenchmarkSetup:
    """Build (and cache) the full setup for one benchmark at size n."""
    bench = benchmark(name, n)
    design = generate_network(bench.pattern, seed=seed, restarts=restarts)
    plan = place(design.network, seed=seed)
    return BenchmarkSetup(
        benchmark=bench,
        design=design,
        floorplan=plan,
        baselines={
            "crossbar": crossbar(n),
            "mesh": mesh_for(n),
            "torus": torus_for(n),
        },
    )


def run_performance(
    setup: BenchmarkSetup,
    config: Optional[SimConfig] = None,
    kinds: tuple = TOPOLOGY_ORDER,
) -> Dict[str, SimulationResult]:
    """Simulate the benchmark's program on each requested topology."""
    config = config or SimConfig()
    results = {}
    for kind in kinds:
        results[kind] = simulate(
            setup.benchmark.program,
            setup.topology(kind),
            config,
            link_delays=setup.link_delays(kind),
        )
    return results


def run_cross_workload(
    host_setup: BenchmarkSetup,
    guest_setup: BenchmarkSetup,
    config: Optional[SimConfig] = None,
) -> Dict[str, SimulationResult]:
    """Replay a guest benchmark on the host's generated network
    (Section 4.2's robustness study).

    Returns results for the guest on its own network, on the host's
    network, and on the mesh baseline.
    """
    config = config or SimConfig()
    program = guest_setup.benchmark.program
    return {
        "own": simulate(
            program,
            guest_setup.design.topology,
            config,
            link_delays=guest_setup.floorplan.link_delays(),
        ),
        "host": simulate(
            program,
            host_setup.design.topology,
            config,
            link_delays=host_setup.floorplan.link_delays(),
        ),
        "mesh": simulate(program, guest_setup.baselines["mesh"], config),
    }
