"""Parallel cached evaluation runner.

Every paper-shape experiment (Figures 7/8, the cross-workload study,
the resilience campaigns) is a grid of independent *cells*: one
(program, topology, config, fault-scenario) simulation each.  This
module fans cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and backs them with a content-addressed on-disk result cache, so a
re-run of an unchanged grid is nearly free and a changed grid only
recomputes the cells it invalidated.

Cache keying
------------
A cell's key is the SHA-256 of the canonical JSON of everything that
determines its result:

* the program's full event streams (compute cycles included — jitter
  changes timing and therefore results),
* the topology description plus a routing fingerprint (the concrete
  per-pair switch paths and link ids for source-routed networks, or
  the adaptive policy name for the torus),
* the :class:`~repro.simulator.config.SimConfig`,
* per-link delays and the fault scenario, when present,
* a code version tag (:data:`CACHE_VERSION`) — bumping the package
  version or the cache schema invalidates every entry.

Cache layout (under ``.repro-cache/`` by default)::

    results/<sha256>.json   one simulation payload per cell
    setups/<sha256>.pkl     pickled BenchmarkSetup per (name, n, seed)

Determinism
-----------
Serial (``jobs=None``), parallel (``jobs=N``) and cache-hit execution
all produce byte-identical payloads: every path returns the JSON-safe
payload dictionary (fresh results round-trip through
:func:`~repro.eval.serialize.result_to_dict` exactly), and the
determinism harness in ``tests/eval/test_determinism.py`` pins this
with golden fixtures.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.eval.serialize import canonical_json, config_to_dict, result_to_dict
from repro.model.pattern import CommunicationPattern
from repro.obs import DISABLED, Observability
from repro.faults.repair import repair_routes
from repro.faults.spec import FaultScenario, LinkFault, SwitchFault
from repro.faults.state import FaultState
from repro.simulator.config import SimConfig
from repro.simulator.routing import BoundSourceRouted
from repro.simulator.simulation import simulate
from repro.topology.builders import Topology
from repro.workloads.events import Program, SendEvent

if TYPE_CHECKING:  # pragma: no cover - runtime import would cycle via
    # repro.synthesis.portfolio, which imports this module at module scope.
    from repro.synthesis.annealing import AnnealSchedule
    from repro.synthesis.constraints import DesignConstraints

# Bump to invalidate every cached entry after a change that alters
# simulation or synthesis results without changing any input.
# Schema 2: link utilization normalized over simulated cycles
# (including the post-completion drain) instead of execution cycles.
# Schema 3: open-loop payloads carry p50/p95/p99 latency percentiles.
CACHE_SCHEMA = 3

DEFAULT_CACHE_DIR = ".repro-cache"


def code_version_tag() -> str:
    """Version component of every cache key."""
    from repro import __version__

    return f"repro-{__version__}/schema-{CACHE_SCHEMA}"


def resolve_jobs(jobs: Optional[int]) -> Optional[int]:
    """Normalize a ``--jobs`` value: None/1 -> serial, 0/negative -> all
    cores, N -> N workers."""
    if jobs is None or jobs == 1:
        return None
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# ---------------------------------------------------------------------------
# On-disk cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Content-addressed cache of cell payloads and benchmark setups."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def setups_dir(self) -> Path:
        return self.root / "setups"

    @property
    def jobs_dir(self) -> Path:
        """Completed service job bundles (see :mod:`repro.service`)."""
        return self.root / "jobs"

    def _atomic_write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # -- result payloads (JSON) ---------------------------------------

    def get_result(self, key: str) -> Optional[dict]:
        path = self.results_dir / f"{key}.json"
        try:
            import json

            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A torn or corrupt entry is a miss; drop it.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put_result(self, key: str, payload: dict) -> None:
        self._atomic_write(
            self.results_dir / f"{key}.json",
            canonical_json(payload).encode("utf-8"),
        )

    # -- service job bundles (JSON) -----------------------------------

    def get_bundle(self, key: str) -> Optional[dict]:
        """A completed job's result bundle, or ``None`` on a miss."""
        path = self.jobs_dir / f"{key}.json"
        try:
            import json

            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put_bundle(self, key: str, bundle: dict) -> None:
        self._atomic_write(
            self.jobs_dir / f"{key}.json",
            canonical_json(bundle).encode("utf-8"),
        )

    # -- benchmark setups (pickle) ------------------------------------

    def get_setup(self, key: str):
        path = self.setups_dir / f"{key}.pkl"
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put_setup(self, key: str, setup) -> None:
        self._atomic_write(
            self.setups_dir / f"{key}.pkl",
            pickle.dumps(setup, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # -- maintenance ---------------------------------------------------

    def _entries(self) -> List[Path]:
        out: List[Path] = []
        for d in (self.results_dir, self.setups_dir, self.jobs_dir):
            if d.is_dir():
                out.extend(p for p in d.iterdir() if p.is_file())
        return out

    def clear(self) -> int:
        """Remove every cached entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    @staticmethod
    def _classify_result(payload: dict) -> str:
        """Which cell family produced a cached result payload.

        :class:`SynthesisCell` payloads carry either a serialized design
        or an ``infeasible`` status; every other shape (simulation
        results, resilience outcomes, open-loop points) is an eval
        cell.  Classification inspects content — the payload bytes are
        pinned by the determinism goldens, so no marker field can be
        added without invalidating them.
        """
        if not isinstance(payload, dict):
            return "eval"
        if "design" in payload or payload.get("status") == "infeasible":
            return "synthesis"
        return "eval"

    def stats(self) -> dict:
        """Entry counts and total size, for ``repro cache info``.

        Result payloads are broken out by cell family: ``results`` /
        ``bytes`` stay the historical totals, while ``eval_results``,
        ``synthesis_results`` (with ``synthesis_ok`` /
        ``synthesis_infeasible`` and ``synthesis_bytes``) and the
        service-job ``bundles`` section enumerate what the totals are
        made of.
        """
        import json

        counts = {
            "eval_results": 0,
            "eval_bytes": 0,
            "synthesis_results": 0,
            "synthesis_ok": 0,
            "synthesis_infeasible": 0,
            "synthesis_bytes": 0,
            "bundles": 0,
            "bundle_bytes": 0,
        }
        entries = self._entries()
        results = 0
        setups = 0
        for path in entries:
            if path.suffix == ".pkl":
                setups += 1
                continue
            size = path.stat().st_size
            if path.parent == self.jobs_dir:
                counts["bundles"] += 1
                counts["bundle_bytes"] += size
                continue
            results += 1
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = None
            family = self._classify_result(payload) if payload is not None else "eval"
            if family == "synthesis":
                counts["synthesis_results"] += 1
                counts["synthesis_bytes"] += size
                if payload is not None and payload.get("status") == "infeasible":
                    counts["synthesis_infeasible"] += 1
                else:
                    counts["synthesis_ok"] += 1
            else:
                counts["eval_results"] += 1
                counts["eval_bytes"] += size
        return {
            "root": str(self.root),
            "results": results,
            "setups": setups,
            "bytes": sum(p.stat().st_size for p in entries),
            **counts,
        }


# ---------------------------------------------------------------------------
# Cache-key fingerprints
# ---------------------------------------------------------------------------


def _program_fingerprint(program: Program) -> dict:
    """Full event-stream fingerprint (the trace plus compute timing)."""
    streams = []
    for stream in program.events:
        events = []
        for event in stream:
            if isinstance(event, SendEvent):
                events.append(["s", event.dest, event.size_bytes, event.tag])
            elif hasattr(event, "source"):
                events.append(["r", event.source, event.tag])
            else:
                events.append(["c", event.cycles])
        streams.append(events)
    return {
        "name": program.name,
        "num_processes": program.num_processes,
        "events": streams,
    }


def _routing_fingerprint(topology: Topology, program: Program, source_routed: bool) -> dict:
    """Concrete routes for deterministic policies, policy name otherwise."""
    if topology.kind == "torus" and not source_routed:
        return {"policy": "adaptive-minimal"}
    routes = {}
    for comm in program.communication_pairs():
        r = topology.routing.route(comm)
        routes[f"{comm.source}->{comm.dest}"] = [
            list(r.switch_path),
            list(r.link_ids),
        ]
    return {"policy": "source", "routes": routes}


def _topology_fingerprint(
    topology: Topology,
    program: Program,
    link_delays: Optional[Dict[int, int]],
    source_routed: bool,
) -> dict:
    return {
        "name": topology.name,
        "kind": topology.kind,
        "graph": topology.network.describe(),
        "routing": _routing_fingerprint(topology, program, source_routed),
        "link_delays": (
            sorted(link_delays.items()) if link_delays is not None else None
        ),
    }


def _openloop_topology_fingerprint(
    topology: Topology, link_delays: Optional[Dict[int, int]]
) -> dict:
    """Program-independent topology fingerprint for open-loop cells.

    Open-loop traffic draws destinations over *all* node pairs, so the
    routing fingerprint covers the full pair matrix for deterministic
    (source-routed) policies; the torus stays a policy name exactly as
    in :func:`_routing_fingerprint`.
    """
    if topology.kind == "torus":
        routing: dict = {"policy": "adaptive-minimal"}
    else:
        from repro.model.message import Communication

        n = topology.network.num_processors
        routes = {}
        for src in range(n):
            for dest in range(n):
                if src == dest:
                    continue
                r = topology.routing.route(Communication(src, dest))
                routes[f"{src}->{dest}"] = [list(r.switch_path), list(r.link_ids)]
        routing = {"policy": "source", "routes": routes}
    return {
        "name": topology.name,
        "kind": topology.kind,
        "graph": topology.network.describe(),
        "routing": routing,
        "link_delays": (
            sorted(link_delays.items()) if link_delays is not None else None
        ),
    }


def _scenario_fingerprint(scenario: FaultScenario) -> dict:
    faults = []
    for f in scenario.faults:
        end = "perm" if f.end is None else str(f.end)
        if isinstance(f, LinkFault):
            faults.append(f"link:{f.link_id}:{f.start}:{end}")
        elif isinstance(f, SwitchFault):
            faults.append(f"switch:{f.switch_id}:{f.start}:{end}")
        else:  # pragma: no cover - future fault classes
            raise ReproError(f"unknown fault spec {f!r}")
    return {"name": scenario.name, "faults": sorted(faults)}


def cell_key(payload: dict) -> str:
    """SHA-256 content key of a cell's canonical fingerprint payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _pattern_fingerprint(pattern: CommunicationPattern) -> dict:
    """Full communication-pattern fingerprint (timing windows included —
    they shape the contention cliques and therefore the design)."""
    return {
        "name": pattern.name,
        "num_processes": pattern.num_processes,
        "messages": [
            [m.source, m.dest, m.t_start, m.t_finish, m.size_bytes, m.tag]
            for m in pattern.messages
        ],
    }


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PerformanceCell:
    """One program replayed on one topology with the paper's default
    routing policy for that topology class."""

    label: str
    program: Program
    topology: Topology
    config: SimConfig
    link_delays: Optional[Dict[int, int]] = None

    def key(self) -> str:
        return cell_key(
            {
                "version": code_version_tag(),
                "kind": "performance",
                "program": _program_fingerprint(self.program),
                "topology": _topology_fingerprint(
                    self.topology, self.program, self.link_delays, source_routed=False
                ),
                "config": config_to_dict(self.config),
            }
        )

    def compute(self, obs: Optional[Observability] = None) -> dict:
        result = simulate(
            self.program,
            self.topology,
            self.config,
            link_delays=self.link_delays,
            obs=obs,
        )
        return result_to_dict(result)


@dataclass(frozen=True)
class ResilienceCell:
    """One fault scenario (or the fault-free baseline, ``scenario=None``)
    of a resilience campaign.

    All resilience runs use deterministic source routing so the repaired
    tables compare like-for-like with the baseline (see
    :mod:`repro.eval.resilience`).
    """

    label: str
    program: Program
    topology: Topology
    config: SimConfig
    link_delays: Optional[Dict[int, int]] = None
    scenario: Optional[FaultScenario] = None

    def key(self) -> str:
        return cell_key(
            {
                "version": code_version_tag(),
                "kind": "resilience",
                "program": _program_fingerprint(self.program),
                "topology": _topology_fingerprint(
                    self.topology, self.program, self.link_delays, source_routed=True
                ),
                "config": config_to_dict(self.config),
                "scenario": (
                    _scenario_fingerprint(self.scenario) if self.scenario else None
                ),
            }
        )

    def compute(self, obs: Optional[Observability] = None) -> dict:
        pairs = self.program.communication_pairs()
        if self.scenario is None:
            result = simulate(
                self.program,
                self.topology,
                self.config,
                link_delays=self.link_delays,
                routing=BoundSourceRouted(self.topology.routing, self.topology.network),
                obs=obs,
            )
            return {"status": "baseline", "result": result_to_dict(result)}
        repair = repair_routes(self.topology, self.scenario, pairs=pairs)
        if repair.disconnected:
            lost = set(repair.disconnected)
            stranded = sum(
                1
                for proc, stream in enumerate(self.program.events)
                for event in stream
                if isinstance(event, SendEvent)
                and any(c.source == proc and c.dest == event.dest for c in lost)
            )
            return {
                "status": "disconnected",
                "rerouted_pairs": len(repair.rerouted),
                "disconnected_pairs": len(repair.disconnected),
                "stranded_messages": stranded,
            }
        result = simulate(
            self.program,
            self.topology,
            self.config,
            link_delays=self.link_delays,
            routing=BoundSourceRouted(repair.routing, self.topology.network),
            fault_state=FaultState(self.topology.network, self.scenario),
            obs=obs,
        )
        return {
            "status": "ok",
            "rerouted_pairs": len(repair.rerouted),
            "result": result_to_dict(result),
        }


@dataclass(frozen=True)
class OpenLoopCell:
    """One open-loop measurement: a (topology, pattern, rate) point.

    The pattern rides as its canonical registry *spec string* (e.g.
    ``"tornado"``, ``"hotspot:3:0.8"``) rather than a callable, so the
    cell pickles across the process pool and the cache key is stable;
    workers resolve it through :func:`repro.sweeps.patterns.resolve_pattern`
    against the cell's own topology (which also covers the
    routing-aware ``adversarial`` pattern — the permutation is a
    deterministic function of the fingerprinted topology).
    """

    label: str
    topology: Topology
    pattern: str
    injection_rate: float
    config: SimConfig
    packet_bytes: int = 32
    warmup_cycles: int = 500
    measure_cycles: int = 2000
    drain_cycles: int = 2000
    link_delays: Optional[Dict[int, int]] = None
    seed: int = 0

    def key(self) -> str:
        return cell_key(
            {
                "version": code_version_tag(),
                "kind": "openloop",
                "topology": _openloop_topology_fingerprint(
                    self.topology, self.link_delays
                ),
                "pattern": self.pattern,
                "injection_rate": self.injection_rate,
                "packet_bytes": self.packet_bytes,
                "warmup_cycles": self.warmup_cycles,
                "measure_cycles": self.measure_cycles,
                "drain_cycles": self.drain_cycles,
                "seed": self.seed,
                "config": config_to_dict(self.config),
            }
        )

    def compute(self, obs: Optional[Observability] = None) -> dict:
        from repro.eval.serialize import loadpoint_to_dict
        from repro.simulator.openloop import run_open_loop
        from repro.sweeps.patterns import resolve_pattern

        point = run_open_loop(
            self.topology,
            self.injection_rate,
            pattern=resolve_pattern(self.pattern, topology=self.topology),
            packet_bytes=self.packet_bytes,
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            drain_cycles=self.drain_cycles,
            config=self.config,
            link_delays=self.link_delays,
            seed=self.seed,
            obs=obs,
        )
        return loadpoint_to_dict(point)


@dataclass(frozen=True)
class SynthesisCell:
    """One seeded synthesis run of a portfolio (``repro.synthesis.portfolio``).

    The cache key covers everything that determines the generated
    design: the pattern's full fingerprint (message timing windows
    shape the contention cliques), the design constraints, the seed,
    the optional :class:`~repro.synthesis.annealing.AnnealSchedule`
    driving temperature moves, the ablation knobs, and the code version
    tag.  The payload is either ``{"status": "ok", "design": ...}``
    with the design losslessly serialized through
    :func:`repro.eval.serialize.design_to_dict`, or
    ``{"status": "infeasible", "error": ...}`` — failures are cached
    like successes, so a repeated portfolio never re-pays for a seed
    whose constraints proved unsatisfiable (at 64+ nodes a failed run
    costs as much as a successful one).

    Synthesis imports happen inside :meth:`compute`:
    ``repro.synthesis.portfolio`` imports this module at module scope,
    so the reverse import must be deferred.
    """

    label: str
    pattern: CommunicationPattern
    seed: int
    constraints: Optional["DesignConstraints"] = None
    schedule: Optional["AnnealSchedule"] = None
    restarts: int = 1
    reroute: bool = True
    moves: bool = True

    def key(self) -> str:
        return cell_key(
            {
                "version": code_version_tag(),
                "kind": "synthesis",
                "pattern": _pattern_fingerprint(self.pattern),
                "constraints": (
                    asdict(self.constraints) if self.constraints is not None else None
                ),
                "seed": self.seed,
                "schedule": (
                    asdict(self.schedule) if self.schedule is not None else None
                ),
                "restarts": self.restarts,
                "reroute": self.reroute,
                "moves": self.moves,
            }
        )

    def compute(self, obs: Optional[Observability] = None) -> dict:
        from repro.errors import SynthesisError
        from repro.eval.serialize import design_to_dict
        from repro.synthesis.generator import generate_network

        try:
            design = generate_network(
                self.pattern,
                constraints=self.constraints,
                seed=self.seed,
                restarts=self.restarts,
                reroute=self.reroute,
                moves=self.moves,
                anneal_schedule=self.schedule,
                obs=obs,
            )
        except SynthesisError as exc:
            return {"status": "infeasible", "error": str(exc)}
        return {"status": "ok", "design": design_to_dict(design)}


Cell = Union[PerformanceCell, ResilienceCell, OpenLoopCell, SynthesisCell]


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell: its payload plus cache/timing metadata."""

    label: str
    key: str
    cache_hit: bool
    seconds: float
    payload: dict


ProgressCallback = Callable[[CellOutcome, int, int], None]


def print_progress(outcome: CellOutcome, index: int, total: int) -> None:
    """Default per-cell progress line (stderr, survives stdout capture)."""
    status = "cached" if outcome.cache_hit else f"{outcome.seconds:.2f}s"
    print(f"[{index}/{total}] {outcome.label}: {status}", file=sys.stderr, flush=True)


def _execute_cell(
    cell: Cell, cache_root: Optional[str], obs: Optional[Observability] = None
) -> CellOutcome:
    """Run one cell (worker side): consult the cache, compute on miss.

    ``obs`` is only threaded on in-process (serial) execution — an
    observability bundle cannot cross the process-pool boundary.
    """
    started = time.perf_counter()
    key = cell.key()
    if cache_root is not None:
        cached = ResultCache(cache_root).get_result(key)
        if cached is not None:
            return CellOutcome(
                label=cell.label,
                key=key,
                cache_hit=True,
                seconds=time.perf_counter() - started,
                payload=cached,
            )
    payload = cell.compute(obs=obs)
    if cache_root is not None:
        ResultCache(cache_root).put_result(key, payload)
    return CellOutcome(
        label=cell.label,
        key=key,
        cache_hit=False,
        seconds=time.perf_counter() - started,
        payload=payload,
    )


def _observe_outcome(obs: Observability, outcome: CellOutcome) -> None:
    """Coordinator-side accounting for one executed cell.

    Workers cannot carry an observability bundle across the process
    boundary, so the coordinator re-emits each cell as a pre-timed span
    from the :class:`CellOutcome` timing and counts cache traffic here.
    """
    m = obs.metrics
    m.counter("eval.cache.lookups").inc()
    if outcome.cache_hit:
        m.counter("eval.cache.hits").inc()
    else:
        m.counter("eval.cache.misses").inc()
    m.record_wall(f"eval.cell.{outcome.label}", outcome.seconds)
    obs.tracer.complete(
        "eval.cell",
        outcome.seconds,
        label=outcome.label,
        cache_hit=outcome.cache_hit,
    )


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Observability] = None,
) -> List[CellOutcome]:
    """Execute every cell, serially or over a process pool.

    Returns outcomes in cell order regardless of completion order, so
    callers build rows deterministically.  ``jobs=None`` (or 1) runs in
    process — the reference path the determinism harness compares
    against; ``jobs=N`` fans out over N workers; ``jobs<=0`` uses every
    core.  ``obs`` records cache hit/miss counters and one span per
    cell (coordinator side only — payloads are never touched, so
    observability cannot perturb the determinism guarantee).
    """
    obs = obs if obs is not None else DISABLED
    cache_root = str(cache.root) if cache is not None else None
    workers = resolve_jobs(jobs)
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    if workers is None or total <= 1:
        for i, cell in enumerate(cells):
            outcome = _execute_cell(cell, cache_root, obs=obs if obs.enabled else None)
            outcomes[i] = outcome
            if obs.enabled:
                _observe_outcome(obs, outcome)
            if progress is not None:
                progress(outcome, i + 1, total)
        return [o for o in outcomes if o is not None]
    done = 0
    with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
        futures = {
            pool.submit(_execute_cell, cell, cache_root): i
            for i, cell in enumerate(cells)
        }
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                outcome = fut.result()
                outcomes[futures[fut]] = outcome
                done += 1
                if obs.enabled:
                    _observe_outcome(obs, outcome)
                if progress is not None:
                    progress(outcome, done, total)
    return [o for o in outcomes if o is not None]


# ---------------------------------------------------------------------------
# Parallel benchmark-setup preparation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetupTask:
    """One (benchmark, size, seed) setup of the evaluation grid."""

    benchmark: str
    n: int
    seed: int = 0
    restarts: int = 8

    def key(self) -> str:
        return cell_key(
            {
                "version": code_version_tag(),
                "kind": "setup",
                "benchmark": self.benchmark,
                "n": self.n,
                "seed": self.seed,
                "restarts": self.restarts,
            }
        )


def _build_setup(task: SetupTask, cache_root: Optional[str]):
    """Build one setup (worker side), writing it through to the cache.

    Synthesis and placement are fully seeded, so rebuilding the same
    task in any process yields the identical setup (pinned by the
    seed-determinism tests).
    """
    from repro.eval.runner import prepare

    setup = prepare(task.benchmark, task.n, seed=task.seed, restarts=task.restarts)
    if cache_root is not None:
        ResultCache(cache_root).put_setup(task.key(), setup)
    return setup


def prepare_setups(
    tasks: Sequence[SetupTask],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Dict[SetupTask, "object"]:
    """Prepare every setup of a grid, in parallel and through the cache."""
    cache_root = str(cache.root) if cache is not None else None
    setups: Dict[SetupTask, object] = {}
    misses: List[SetupTask] = []
    for task in tasks:
        if task in setups:
            continue
        cached = cache.get_setup(task.key()) if cache is not None else None
        if cached is not None:
            setups[task] = cached
        else:
            misses.append(task)
    workers = resolve_jobs(jobs)
    if workers is None or len(misses) <= 1:
        for task in misses:
            setups[task] = _build_setup(task, cache_root)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
            futures = {
                pool.submit(_build_setup, task, cache_root): task for task in misses
            }
            for fut, task in futures.items():
                setups[task] = fut.result()
    return setups
