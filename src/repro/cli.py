"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``synthesize`` — run the design methodology on a built-in benchmark
  or a trace file and print the generated network.
* ``simulate`` — replay a benchmark on one topology and print stats.
* ``figure7`` / ``figure8`` — regenerate the paper's evaluation tables.
* ``cross-workload`` — the Section 4.2 robustness study.
* ``resilience`` — fault-injection campaign: degradation of generated
  networks vs baselines under link/switch failures.
* ``verify`` — static safety certification of one network under one
  benchmark's pattern: deadlock freedom (channel-dependency-graph
  acyclicity with cycle witnesses), Theorem 1, degree, connectivity and
  route validity, emitted as a canonical JSON certificate (see
  ``docs/VERIFICATION.md``).
* ``profile`` — run one benchmark fully observed and print a
  phase/time/counter breakdown (see ``docs/OBSERVABILITY.md``).
* ``sweep`` — automated saturation sweep of one synthetic traffic
  pattern on one topology: adaptive knee bisection, schema-versioned
  canonical-JSON curve artifact (see ``docs/SWEEPS.md``).
* ``cache`` — inspect or clear the on-disk evaluation result cache.
* ``serve`` — run the synthesis-as-a-service job API: an asyncio HTTP
  server that canonicalizes workload specs to content-addressed job
  keys, single-flights duplicate submissions, and serves byte-identical
  result bundles (see ``docs/SERVICE.md``).
* ``submit`` — submit one job to a running service and (by default)
  wait for and print its result bundle.

``synthesize``, ``simulate`` and ``profile`` accept ``--trace``
(``--trace-out`` for synthesize) and ``--metrics-out`` to export the
run's trace (JSONL or Chrome trace JSON) and metrics snapshot.

The grid-shaped commands (figure7/figure8/cross-workload/resilience)
accept ``--jobs N`` to fan cells out over a process pool, ``--no-cache``
/ ``--cache-dir`` to control the content-addressed result cache, and
``--progress`` for per-cell timing lines on stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _add_runner_options(cmd: argparse.ArgumentParser) -> None:
    """Shared parallel-runner/cache flags for grid-shaped commands."""
    cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the evaluation grid "
        "(1 = serial, 0 = all cores; default 1)",
    )
    cmd.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )
    cmd.add_argument(
        "--progress", action="store_true",
        help="print per-cell timing lines to stderr",
    )


def _runner_kwargs(args) -> dict:
    """Translate the shared flags into row-producer keyword arguments."""
    from repro.eval.parallel import DEFAULT_CACHE_DIR, ResultCache, print_progress

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    return {
        "jobs": args.jobs,
        "cache": cache,
        "progress": print_progress if args.progress else None,
    }


def _add_obs_options(cmd: argparse.ArgumentParser, trace_flag: str = "--trace") -> None:
    """Shared observability output flags (``synthesize`` already uses
    ``--trace`` for its input trace file, so it takes ``--trace-out``)."""
    cmd.add_argument(
        trace_flag, dest="trace_out", default=None, metavar="PATH",
        help="write a trace of the run (.jsonl for JSONL, anything else "
        "for Chrome trace JSON viewable in chrome://tracing or Perfetto)",
    )
    cmd.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the collected metrics snapshot as JSON",
    )
    cmd.add_argument(
        "--sample-every", type=int, default=128, metavar="CYCLES",
        help="cycles between simulator occupancy samples (default 128)",
    )


def _obs_from(args):
    """An enabled bundle when any obs output was requested, else None."""
    from repro.obs import enabled_observability

    if args.trace_out is None and args.metrics_out is None:
        return None
    return enabled_observability(sample_every=args.sample_every)


def _write_obs(args, obs) -> None:
    if obs is None:
        return
    if args.trace_out:
        obs.tracer.write(args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        obs.metrics.write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Application-specific on-chip interconnect synthesis "
            "(Ho & Pinkston, HPCA 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    syn = sub.add_parser("synthesize", help="design a network for a pattern")
    source = syn.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark", choices=("bt", "cg", "fft", "mg", "sp"))
    source.add_argument("--trace", help="path to a JSONL trace file")
    syn.add_argument("--nodes", type=int, default=16)
    syn.add_argument("--max-degree", type=int, default=5)
    syn.add_argument("--seed", type=int, default=0)
    syn.add_argument("--restarts", type=int, default=8)
    syn.add_argument(
        "--portfolio", type=int, default=None, metavar="K",
        help="fan K seeded synthesis runs through the cached eval runner "
        "and keep the deterministic winner (replaces serial --restarts)",
    )
    syn.add_argument(
        "--seed-base", type=int, default=None, metavar="S",
        help="first seed of the portfolio grid (default: --seed)",
    )
    syn.add_argument(
        "--objective", default="links", choices=("links", "switches", "avg-hops"),
        help="portfolio ranking objective (default links)",
    )
    syn.add_argument(
        "--target-objective", type=float, default=None, metavar="X",
        help="early-stop the portfolio once a candidate reaches this "
        "objective value (races in --jobs-wide waves; trades the "
        "cross-jobs determinism guarantee for wall time)",
    )
    syn.add_argument(
        "--floorplan", action="store_true", help="also place and render the result"
    )
    _add_runner_options(syn)
    _add_obs_options(syn, trace_flag="--trace-out")

    sim = sub.add_parser("simulate", help="replay a benchmark on a topology")
    sim.add_argument("--benchmark", required=True, choices=("bt", "cg", "fft", "mg", "sp"))
    sim.add_argument("--nodes", type=int, default=16)
    sim.add_argument(
        "--topology",
        default="generated",
        choices=("crossbar", "mesh", "torus", "generated"),
    )
    sim.add_argument("--seed", type=int, default=0)
    _add_obs_options(sim)

    prof = sub.add_parser(
        "profile",
        help="run one benchmark fully observed; print a phase/time/counter table",
    )
    prof.add_argument(
        "--benchmark", default="cg", choices=("bt", "cg", "fft", "mg", "sp")
    )
    prof.add_argument("--nodes", type=int, default=8)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--restarts", type=int, default=8)
    prof.add_argument(
        "--topologies",
        default="crossbar,mesh,torus,generated",
        help="comma-separated topology kinds to simulate",
    )
    prof.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    prof.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )
    _add_obs_options(prof)

    for name in ("figure7", "figure8"):
        fig = sub.add_parser(name, help=f"regenerate the paper's {name}")
        fig.add_argument("--size", default="small", choices=("small", "large"))
        fig.add_argument("--seed", type=int, default=0)
        _add_runner_options(fig)

    cross = sub.add_parser("cross-workload", help="Section 4.2 robustness study")
    cross.add_argument("--seed", type=int, default=0)
    _add_runner_options(cross)

    res = sub.add_parser(
        "resilience", help="fault-injection campaign across topologies"
    )
    res.add_argument(
        "--benchmark", default="cg", choices=("bt", "cg", "fft", "mg", "sp")
    )
    res.add_argument("--nodes", type=int, default=8)
    res.add_argument(
        "--topologies",
        default="generated,mesh",
        help="comma-separated topology kinds (generated, mesh, torus, crossbar)",
    )
    res.add_argument(
        "--faults", default="link", choices=("link", "switch", "both"),
        help="which resource class fails",
    )
    res.add_argument(
        "--double", action="store_true", help="also inject every fault pair"
    )
    res.add_argument(
        "--max-scenarios", type=int, default=None,
        help="sample the campaign down to this many scenarios (seeded)",
    )
    res.add_argument(
        "--transient", type=int, default=None, metavar="CYCLES",
        help="make faults transient, lasting CYCLES cycles from their "
        "start (disables route repair so retransmission is observable)",
    )
    res.add_argument(
        "--fault-start", type=int, default=0, metavar="CYCLE",
        help="cycle every fault activates at (default 0; set mid-run so "
        "transient faults catch flits in flight)",
    )
    res.add_argument("--seed", type=int, default=0)
    _add_runner_options(res)

    ver = sub.add_parser(
        "verify",
        help="statically certify a routed network (deadlock freedom, "
        "Theorem 1, degree, connectivity, route validity)",
    )
    ver.add_argument(
        "--benchmark", required=True, choices=("bt", "cg", "fft", "mg", "sp")
    )
    ver.add_argument("--nodes", type=int, default=16)
    ver.add_argument(
        "--topology",
        default="generated",
        choices=("generated", "mesh", "torus", "crossbar"),
    )
    ver.add_argument("--seed", type=int, default=0)
    ver.add_argument(
        "--max-degree", type=int, default=None, metavar="D",
        help="degree bound to certify against (defaults to the synthesis "
        "constraint for generated networks, unbounded otherwise)",
    )
    ver.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the canonical certificate JSON to PATH",
    )
    ver.add_argument(
        "--dynamic", action="store_true",
        help="cross-validate the certificate against a flit-level replay "
        "of the pattern (zero contention stalls / zero deadlock recoveries)",
    )
    require = ver.add_mutually_exclusive_group()
    require.add_argument(
        "--require-contention-free", dest="require_cf",
        action="store_true", default=None,
        help="fail unless Theorem 1 holds (default for generated networks)",
    )
    require.add_argument(
        "--no-require-contention-free", dest="require_cf", action="store_false",
        help="report contention findings without failing on them "
        "(default for baselines)",
    )

    swp = sub.add_parser(
        "sweep",
        help="saturation sweep of a synthetic pattern on one topology",
    )
    swp.add_argument(
        "--pattern", default="uniform", metavar="SPEC",
        help="synthetic pattern spec: a registered name (run with "
        "--list-patterns to see them) or a parameterized form like "
        "hotspot:3:0.8 (default uniform)",
    )
    swp.add_argument(
        "--list-patterns", action="store_true",
        help="print the registered pattern catalog and exit",
    )
    swp.add_argument(
        "--topology",
        default="mesh",
        choices=("mesh", "torus", "crossbar", "generated", "generated-spare"),
        help="network under test (generated* synthesize for --benchmark)",
    )
    swp.add_argument("--nodes", type=int, default=16)
    swp.add_argument(
        "--benchmark", default="cg", choices=("bt", "cg", "fft", "mg", "sp"),
        help="benchmark the generated topologies are synthesized for",
    )
    swp.add_argument("--seed", type=int, default=0)
    swp.add_argument("--restarts", type=int, default=8)
    swp.add_argument(
        "--min-rate", type=float, default=0.05, metavar="R",
        help="lowest offered rate in flits/node/cycle (default 0.05)",
    )
    swp.add_argument(
        "--max-rate", type=float, default=1.0, metavar="R",
        help="highest offered rate in flits/node/cycle (default 1.0)",
    )
    swp.add_argument(
        "--points", type=int, default=6, metavar="N",
        help="initial evenly spaced rates before refinement (default 6)",
    )
    swp.add_argument(
        "--refine", type=int, default=4, metavar="N",
        help="bisection steps around the knee (default 4)",
    )
    swp.add_argument(
        "--criterion", default="mean-knee", choices=("mean-knee", "p99-knee"),
        help="saturation criterion: knee of the mean latency curve "
        "(default) or of the p99 tail-latency curve",
    )
    swp.add_argument(
        "--plot", dest="plot_out", default=None, metavar="PATH",
        help="write a p50/p95/p99 latency-vs-rate chart (SVG when PATH "
        "ends in .svg, ASCII otherwise)",
    )
    swp.add_argument(
        "--strict-patterns", action="store_true",
        help="fail when the pattern's size requirement does not hold "
        "instead of falling back to uniform traffic",
    )
    swp.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the canonical SaturationCurve JSON to PATH",
    )
    swp.add_argument(
        "--csv", dest="csv_out", default=None, metavar="PATH",
        help="write the measured points as CSV to PATH",
    )
    _add_runner_options(swp)
    _add_obs_options(swp)

    srv = sub.add_parser(
        "serve", help="run the synthesis-as-a-service job API over HTTP"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8787,
        help="listening port (0 = ephemeral; default 8787)",
    )
    srv.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent job executions (default 2)",
    )
    srv.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per job's cell grid "
        "(1 = serial, 0 = all cores; default 1)",
    )
    srv.add_argument(
        "--no-cache", action="store_true",
        help="run without the on-disk result/bundle cache",
    )
    srv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )
    srv.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH once listening "
        "(for scripts using --port 0)",
    )

    sbm = sub.add_parser(
        "submit", help="submit a job to a running service"
    )
    sbm.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="service base URL (default http://127.0.0.1:8787)",
    )
    sbm.add_argument(
        "--spec", default=None, metavar="PATH",
        help="JSON job-spec file ('-' for stdin); without it the "
        "synthesize flags below build the spec",
    )
    sbm.add_argument("--benchmark", default="cg", choices=("bt", "cg", "fft", "mg", "sp"))
    sbm.add_argument("--nodes", type=int, default=16)
    sbm.add_argument("--seed", type=int, default=0)
    sbm.add_argument("--restarts", type=int, default=8)
    sbm.add_argument("--max-degree", type=int, default=5)
    sbm.add_argument(
        "--portfolio", type=int, default=None, metavar="K",
        help="synthesize a K-seed portfolio instead of one run",
    )
    sbm.add_argument(
        "--no-wait", action="store_true",
        help="print the submission receipt and return without polling",
    )
    sbm.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="status poll interval while waiting (default 0.2)",
    )
    sbm.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up waiting after this long (default 600)",
    )
    sbm.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the result bundle to PATH instead of stdout",
    )

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default .repro-cache)",
    )

    insp = sub.add_parser("inspect", help="visualize a benchmark's pattern")
    insp.add_argument("--benchmark", required=True, choices=("bt", "cg", "fft", "mg", "sp"))
    insp.add_argument("--nodes", type=int, default=16)
    return parser


def _cmd_synthesize(args) -> int:
    from repro.floorplan import place
    from repro.synthesis import (
        DesignConstraints,
        PortfolioConfig,
        generate_network,
        synthesize_portfolio,
    )
    from repro.workloads import benchmark, extract_pattern, read_trace

    if args.benchmark:
        pattern = benchmark(args.benchmark, args.nodes).pattern
    else:
        pattern = extract_pattern(read_trace(args.trace))
    obs = _obs_from(args)
    constraints = DesignConstraints(max_degree=args.max_degree)
    if args.portfolio is not None:
        runner = _runner_kwargs(args)
        result = synthesize_portfolio(
            pattern,
            constraints=constraints,
            config=PortfolioConfig(
                size=args.portfolio,
                seed_base=args.seed_base if args.seed_base is not None else args.seed,
                objective=args.objective,
                target_objective=args.target_objective,
            ),
            obs=obs,
            **runner,
        )
        design = result.design
        print(result.render())
        print()
    else:
        design = generate_network(
            pattern,
            constraints=constraints,
            seed=args.seed,
            restarts=args.restarts,
            obs=obs,
        )
    print(design.network.describe())
    print(f"contention-free: {design.certificate.contention_free}")
    print(
        f"bisections: {design.stats.bisections}, "
        f"route moves: {design.stats.route_moves}, "
        f"processor moves: {design.stats.processor_moves}"
    )
    if args.floorplan:
        plan = place(design.network, seed=args.seed, obs=obs)
        print()
        print(plan.render())
        print(f"link area: {plan.total_link_area} (feasible: {plan.feasible})")
    _write_obs(args, obs)
    return 0


def _cmd_simulate(args) -> int:
    from repro.eval import prepare, run_performance

    obs = _obs_from(args)
    setup = prepare(args.benchmark, args.nodes, seed=args.seed)
    results = run_performance(setup, kinds=(args.topology,), obs=obs)
    print(results[args.topology].summary())
    _write_obs(args, obs)
    return 0


def _cmd_profile(args) -> int:
    from repro.eval.parallel import DEFAULT_CACHE_DIR, ResultCache
    from repro.obs.profile import run_profile

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    kinds = tuple(k.strip() for k in args.topologies.split(",") if k.strip())
    known = ("generated", "mesh", "torus", "crossbar")
    unknown = [k for k in kinds if k not in known]
    if unknown:
        raise ReproError(f"unknown topology kinds {unknown}; choose from {known}")
    report = run_profile(
        args.benchmark,
        args.nodes,
        seed=args.seed,
        restarts=args.restarts,
        kinds=kinds,
        cache=cache,
        sample_every=args.sample_every,
    )
    print(report.render())
    _write_obs(args, report.obs)
    return 0


def _cmd_figure7(args) -> int:
    from repro.eval import figure7_rows, figure7_table

    kwargs = _runner_kwargs(args)
    kwargs.pop("progress")  # figure 7 has no simulation cells
    label = "7(a)" if args.size == "small" else "7(b)"
    print(
        figure7_table(
            figure7_rows(args.size, seed=args.seed, **kwargs),
            f"Figure {label}: resources normalized to the mesh",
        )
    )
    return 0


def _cmd_figure8(args) -> int:
    from repro.eval import figure8_rows, figure8_table

    label = "8(a)" if args.size == "small" else "8(b)"
    print(
        figure8_table(
            figure8_rows(args.size, seed=args.seed, **_runner_kwargs(args)),
            f"Figure {label}: time normalized to the crossbar",
        )
    )
    return 0


def _cmd_cross_workload(args) -> int:
    from repro.eval import cross_workload_rows, cross_workload_table

    print(
        cross_workload_table(
            cross_workload_rows(seed=args.seed, **_runner_kwargs(args)),
            "Section 4.2: foreign traces on the CG-16 network",
        )
    )
    return 0


def _cmd_resilience(args) -> int:
    from repro.errors import FaultError
    from repro.eval import prepare, resilience_table, run_resilience
    from repro.faults import CampaignSpec, build_campaign

    kinds = ("link", "switch") if args.faults == "both" else (args.faults,)
    topologies = tuple(k.strip() for k in args.topologies.split(",") if k.strip())
    known = ("generated", "mesh", "torus", "crossbar")
    unknown = [k for k in topologies if k not in known]
    if unknown:
        raise FaultError(f"unknown topology kinds {unknown}; choose from {known}")
    setup = prepare(args.benchmark, args.nodes, seed=args.seed)
    for i, kind in enumerate(topologies):
        topology = setup.topology(kind)
        campaign = build_campaign(
            topology.network,
            CampaignSpec(
                kinds=kinds,
                double=args.double,
                max_scenarios=args.max_scenarios,
                seed=args.seed,
                start=args.fault_start,
                end=(
                    args.fault_start + args.transient
                    if args.transient is not None
                    else None
                ),
            ),
        )
        report = run_resilience(
            setup.benchmark.program,
            topology,
            campaign,
            link_delays=setup.link_delays(kind),
            **_runner_kwargs(args),
        )
        if i:
            print()
        fault_label = "+".join(kinds) + (
            f" transient({args.transient})" if args.transient else ""
        )
        print(
            resilience_table(
                report,
                f"Resilience of {topology.name} under single"
                f"{'/double' if args.double else ''} {fault_label} faults",
            )
        )
    return 0


def _cmd_verify(args) -> int:
    from repro.eval import prepare
    from repro.synthesis import DesignConstraints
    from repro.verify import certify, cross_validate

    setup = prepare(args.benchmark, args.nodes, seed=args.seed)
    topology = setup.topology(args.topology)
    pattern = setup.benchmark.pattern
    max_degree = args.max_degree
    if max_degree is None and args.topology == "generated":
        max_degree = DesignConstraints().max_degree
    certificate = certify(topology, pattern, max_degree=max_degree)
    print(certificate.render())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(certificate.to_json())
        print(f"certificate written to {args.json_out}", file=sys.stderr)
    require_cf = args.require_cf
    if require_cf is None:
        require_cf = args.topology == "generated"
    status = 0 if certificate.ok(require_contention_free=require_cf) else 1
    if args.dynamic:
        report, mismatches = cross_validate(
            certificate,
            topology,
            pattern,
            link_delays=setup.link_delays(args.topology),
        )
        print(report.summary())
        for mismatch in mismatches:
            print(f"cross-validation mismatch: {mismatch}", file=sys.stderr)
            status = 1
    return status


def _cmd_sweep(args) -> int:
    from repro.sweeps import (
        SweepConfig,
        curve_csv,
        curve_plot,
        pattern_entries,
        run_sweep,
        study_topology,
    )

    if args.list_patterns:
        for entry in pattern_entries():
            marks = []
            if entry.requires:
                marks.append(f"requires {entry.requires}")
            if entry.needs_topology:
                marks.append("routing-aware")
            suffix = f" [{', '.join(marks)}]" if marks else ""
            print(f"{entry.name:<16} {entry.description}{suffix}")
        return 0
    obs = _obs_from(args)
    top_label, topology, link_delays = study_topology(
        args.topology,
        args.nodes,
        benchmark=args.benchmark,
        seed=args.seed,
        restarts=args.restarts,
    )
    curve = run_sweep(
        topology,
        args.pattern,
        sweep=SweepConfig(
            min_rate=args.min_rate,
            max_rate=args.max_rate,
            initial_points=args.points,
            refine_iters=args.refine,
            seed=args.seed,
            criterion=args.criterion,
        ),
        link_delays=link_delays,
        obs=obs,
        label=top_label,
        strict_patterns=args.strict_patterns,
        **_runner_kwargs(args),
    )
    print(curve.render())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(curve.to_json())
        print(f"curve written to {args.json_out}", file=sys.stderr)
    if args.csv_out:
        with open(args.csv_out, "w") as fh:
            fh.write(curve_csv(curve))
        print(f"points written to {args.csv_out}", file=sys.stderr)
    if args.plot_out:
        fmt = "svg" if args.plot_out.lower().endswith(".svg") else "ascii"
        with open(args.plot_out, "w") as fh:
            fh.write(curve_plot(curve, fmt=fmt))
        print(f"plot written to {args.plot_out}", file=sys.stderr)
    _write_obs(args, obs)
    return 0


def _cmd_serve(args) -> int:
    from repro.eval.parallel import DEFAULT_CACHE_DIR
    from repro.service import ServiceConfig, run_serve

    cache_dir = None if args.no_cache else (args.cache_dir or DEFAULT_CACHE_DIR)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        jobs=args.jobs,
        cache_dir=cache_dir,
    )
    return run_serve(config, port_file=args.port_file)


def _cmd_submit(args) -> int:
    import json

    from repro.service import ServiceClient

    if args.spec is not None:
        if args.spec == "-":
            raw = json.load(sys.stdin)
        else:
            with open(args.spec, encoding="utf-8") as fh:
                raw = json.load(fh)
    else:
        raw = {
            "kind": "synthesize",
            "benchmark": args.benchmark,
            "nodes": args.nodes,
            "seed": args.seed,
            "restarts": args.restarts,
            "max_degree": args.max_degree,
        }
        if args.portfolio is not None:
            raw["portfolio"] = args.portfolio
    client = ServiceClient(args.url, timeout=args.timeout)
    receipt = client.submit(raw)
    print(
        f"job {receipt['job_id']} {receipt['state']} "
        f"(dedupe: {receipt['dedupe']}, submissions: {receipt['submissions']})",
        file=sys.stderr,
    )
    if args.no_wait:
        print(json.dumps(receipt, sort_keys=True))
        return 0
    status = client.wait(
        receipt["job_id"], poll_interval=args.poll, timeout=args.timeout
    )
    if status["state"] != "done":
        print(f"error: job failed: {status['error']}", file=sys.stderr)
        return 1
    bundle = client.result_bytes(receipt["job_id"])
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(bundle)
        print(f"bundle written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.buffer.write(bundle + b"\n")
        sys.stdout.buffer.flush()
    return 0


def _cmd_cache(args) -> int:
    from repro.eval.parallel import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached entries from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache root: {stats['root']}")
    print(f"result payloads: {stats['results']}")
    print(
        f"  evaluation: {stats['eval_results']} ({stats['eval_bytes']} bytes)"
    )
    print(
        f"  synthesis: {stats['synthesis_results']} "
        f"({stats['synthesis_ok']} designs, "
        f"{stats['synthesis_infeasible']} infeasible seeds, "
        f"{stats['synthesis_bytes']} bytes)"
    )
    print(f"benchmark setups: {stats['setups']}")
    print(f"job bundles: {stats['bundles']} ({stats['bundle_bytes']} bytes)")
    print(f"total size: {stats['bytes']} bytes")
    return 0


def _cmd_inspect(args) -> int:
    from repro.model import CliqueAnalysis
    from repro.viz import render_comm_matrix, render_pattern_timeline
    from repro.workloads import benchmark

    bench = benchmark(args.benchmark, args.nodes)
    analysis = CliqueAnalysis.of(bench.pattern)
    print(render_pattern_timeline(bench.pattern))
    print()
    print("traffic matrix (message counts):")
    print(render_comm_matrix(bench.pattern))
    print()
    print(
        f"distinct contention periods: {len(analysis.max_cliques)}, "
        f"widest permutation: {analysis.largest_clique_size}"
    )
    return 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "simulate": _cmd_simulate,
    "profile": _cmd_profile,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "cross-workload": _cmd_cross_workload,
    "resilience": _cmd_resilience,
    "verify": _cmd_verify,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "cache": _cmd_cache,
    "inspect": _cmd_inspect,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
