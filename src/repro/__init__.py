"""repro — reproduction of Ho & Pinkston, "A Methodology for Designing
Efficient On-Chip Interconnects on Well-Behaved Communication Patterns"
(HPCA 2003).

The package is organized around the paper's pipeline:

* :mod:`repro.model` — the contention model (Definitions 1-7, Theorem 1),
* :mod:`repro.topology` — system graphs, reference topologies, routing,
* :mod:`repro.synthesis` — the recursive-bisection design methodology,
* :mod:`repro.simulator` — a trace-driven flit-level network simulator,
* :mod:`repro.workloads` — NAS-like benchmark program generators,
* :mod:`repro.floorplan` — tile floorplanning and the area model,
* :mod:`repro.eval` — the paper's experiments (Figures 7 and 8),
* :mod:`repro.sweeps` — synthetic traffic suite and automated
  saturation sweeps (the off-design robustness study),
* :mod:`repro.faults` — fault injection, route repair, resilience,
* :mod:`repro.verify` — static network certificates (deadlock freedom,
  Theorem 1) with engine cross-validation.
"""

from repro.faults import (
    FaultScenario,
    LinkFault,
    SwitchFault,
    build_campaign,
    repair_routes,
)
from repro.model import (
    CliqueAnalysis,
    Communication,
    CommunicationPattern,
    ContentionEvent,
    Message,
    check_contention_free,
    read_pattern,
    write_pattern,
)
from repro.simulator import SimConfig, simulate
from repro.synthesis import (
    DesignConstraints,
    GeneratedDesign,
    generate_network,
    generate_network_for_set,
)
from repro.topology import (
    Network,
    Topology,
    crossbar,
    fat_tree,
    mesh,
    mesh_for,
    torus,
    torus_for,
)
from repro.verify import NetworkCertificate, certify, cross_validate
from repro.workloads import PhaseProgramBuilder, benchmark, extract_pattern

__version__ = "1.0.0"

__all__ = [
    "CliqueAnalysis",
    "Communication",
    "CommunicationPattern",
    "ContentionEvent",
    "DesignConstraints",
    "FaultScenario",
    "GeneratedDesign",
    "LinkFault",
    "Message",
    "Network",
    "NetworkCertificate",
    "PhaseProgramBuilder",
    "SimConfig",
    "SwitchFault",
    "Topology",
    "benchmark",
    "build_campaign",
    "certify",
    "check_contention_free",
    "cross_validate",
    "crossbar",
    "extract_pattern",
    "fat_tree",
    "generate_network",
    "generate_network_for_set",
    "mesh",
    "mesh_for",
    "read_pattern",
    "repair_routes",
    "simulate",
    "torus",
    "torus_for",
    "write_pattern",
    "__version__",
]
