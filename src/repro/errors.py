"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses are grouped by the
subsystem that raises them (model, topology, synthesis, simulator,
floorplan).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PatternError(ReproError):
    """An invalid communication pattern or message was supplied."""


class TopologyError(ReproError):
    """A network topology is malformed or an operation on it is invalid."""


class RoutingError(ReproError):
    """A routing function could not produce a valid path."""


class SynthesisError(ReproError):
    """The design methodology failed to produce a network."""


class ConstraintError(SynthesisError):
    """A design constraint is unsatisfiable or malformed."""


class SimulationError(ReproError):
    """The flit-level simulator reached an invalid state."""


class WorkloadError(ReproError):
    """A workload/program generator was given invalid parameters."""


class FloorplanError(ReproError):
    """No feasible floorplan could be produced for a network."""


class FaultError(ReproError):
    """A fault specification or campaign is invalid for its network."""


class ServiceError(ReproError):
    """A job spec or service request is invalid (see :mod:`repro.service`)."""
