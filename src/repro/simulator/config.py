"""Simulation parameters (paper Section 4.2).

Defaults follow the paper's setup: 32-bit flits and links at 800 MHz
(the Alpha 21364 on-chip router parameters), 3 virtual channels per
physical link, ten-cycle send and receive overheads (the LogP-style
overhead of [23]), link delay equal to length in tiles with a minimum
of one clock, and deadlock handling by detection and regressive
recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the flit-level simulator.

    Attributes:
        flit_bytes: bytes per flit (32-bit links -> 4).
        clock_mhz: link clock, used only to convert cycles to seconds in
            reports; the simulator itself works in cycles.
        num_vcs: virtual channels per physical channel.
        vc_buffer_flits: buffer depth per virtual channel.
        send_overhead: processor cycles consumed by each send call.
        recv_overhead: processor cycles consumed after each message
            arrival.
        deadlock_threshold: cycles without any flit movement (while
            traffic is in flight) before the deadlock detector triggers
            regressive recovery.
        retransmit_backoff: cycles a killed packet waits before its
            source re-injects it.
        max_cycles: hard stop; exceeding it raises
            :class:`~repro.errors.SimulationError`.
    """

    flit_bytes: int = 4
    clock_mhz: float = 800.0
    num_vcs: int = 3
    vc_buffer_flits: int = 4
    send_overhead: int = 10
    recv_overhead: int = 10
    deadlock_threshold: int = 4000
    retransmit_backoff: int = 32
    max_cycles: int = 50_000_000

    def __post_init__(self) -> None:
        if self.flit_bytes < 1:
            raise SimulationError(f"flit_bytes must be positive, got {self.flit_bytes}")
        if self.num_vcs < 1:
            raise SimulationError(f"need at least one VC, got {self.num_vcs}")
        if self.vc_buffer_flits < 1:
            raise SimulationError("vc_buffer_flits must be positive")
        if self.send_overhead < 0 or self.recv_overhead < 0:
            raise SimulationError("overheads cannot be negative")
        if self.deadlock_threshold < 1:
            raise SimulationError("deadlock_threshold must be positive")
        if self.max_cycles < 1:
            raise SimulationError("max_cycles must be positive")

    def flits_for(self, size_bytes: int) -> int:
        """Flits of a packet: one header flit plus the payload."""
        if size_bytes < 0:
            raise SimulationError(f"negative message size {size_bytes}")
        payload = (size_bytes + self.flit_bytes - 1) // self.flit_bytes
        return 1 + payload

    def cycles_to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds at the configured clock."""
        return cycles / self.clock_mhz


# The parameters used throughout the paper's evaluation.
PAPER_CONFIG = SimConfig()
