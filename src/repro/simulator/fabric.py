"""Hardware model of the flit-level simulator: channels, routers, NICs.

The fabric mirrors the paper's assumptions: wormhole switching, a
configurable number of virtual channels per physical channel with
credit-based flow control, full internal crossbars (so contention is
modeled on the links, not inside switches — Definition 6's premise),
and one flit per physical channel per cycle.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from heapq import heappop, heappush
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.config import SimConfig
from repro.simulator.packet import ChannelId, Flit, Packet

Endpoint = Tuple[str, int]  # ("router", switch_id) or ("nic", processor_id)


@dataclass
class Channel:
    """One directed physical channel with per-VC sender-side state.

    ``credits[vc]`` counts free buffer slots at the receiver;
    ``owner[vc]`` is the packet currently allocated the virtual channel
    (wormhole: held from head until tail departs the sender).
    """

    cid: ChannelId
    src: Endpoint
    dst: Endpoint
    delay: int
    buffer_depth: int
    credits: List[int]
    owner: List[Optional[int]]

    @classmethod
    def build(cls, cid: ChannelId, src: Endpoint, dst: Endpoint, delay: int, config: SimConfig) -> "Channel":
        if delay < 1:
            raise SimulationError(f"channel {cid} needs delay >= 1, got {delay}")
        # Buffers cover the credit round trip (2 x delay) so a longer
        # link is slower in latency but not throttled in bandwidth.
        depth = max(config.vc_buffer_flits, 2 * delay)
        return cls(
            cid=cid,
            src=src,
            dst=dst,
            delay=delay,
            buffer_depth=depth,
            credits=[depth] * config.num_vcs,
            owner=[None] * config.num_vcs,
        )

    def free_vc(self) -> Optional[int]:
        """Lowest unallocated VC, or ``None``."""
        for vc, owner in enumerate(self.owner):
            if owner is None:
                return vc
        return None

    def busy_vcs(self) -> int:
        """Number of allocated VCs — the congestion signal adaptive
        routing uses to pick among candidate outputs."""
        return sum(1 for owner in self.owner if owner is not None)


@dataclass
class InputVC:
    """Receiver-side buffer of one virtual channel.

    ``assignment`` holds ``(packet_id, out_channel, out_vc)`` for the
    packet currently being forwarded out of this VC.
    """

    buffer: Deque[Flit] = field(default_factory=deque)
    assignment: Optional[Tuple[int, ChannelId, int]] = None

    @property
    def front(self) -> Optional[Flit]:
        return self.buffer[0] if self.buffer else None


class Router:
    """One switch: input VCs per incoming channel, round-robin output
    arbitration over its outgoing channels."""

    def __init__(self, switch_id: int, config: SimConfig) -> None:
        self.switch_id = switch_id
        self._config = config
        self.inputs: Dict[ChannelId, List[InputVC]] = {}
        self.output_channels: List[ChannelId] = []
        self._rr: Dict[ChannelId, int] = {}
        # Flattened (cid, vc, ivc) slots in scan order, built lazily —
        # the input set is fixed after fabric construction, so the
        # per-activation ``sorted(self.inputs)`` walk collapses into a
        # filter over one prebuilt list.
        self._slots: Optional[List[Tuple[ChannelId, int, InputVC]]] = None

    def add_input(self, cid: ChannelId) -> None:
        self.inputs[cid] = [InputVC() for _ in range(self._config.num_vcs)]
        self._slots = None

    def add_output(self, cid: ChannelId) -> None:
        self.output_channels.append(cid)
        self._rr[cid] = 0

    def accept(self, cid: ChannelId, vc: int, flit: Flit, depth: int) -> None:
        """Store an arriving flit in the addressed input VC."""
        buf = self.inputs[cid][vc]
        if len(buf.buffer) >= depth:
            raise SimulationError(
                f"buffer overflow at S{self.switch_id} {cid} vc{vc}: "
                "credit accounting is broken"
            )
        buf.buffer.append(flit)

    def active_vcs(self) -> List[Tuple[ChannelId, int, InputVC]]:
        """Non-empty input VCs in deterministic order."""
        slots = self._slots
        if slots is None:
            slots = self._slots = [
                (cid, vc, ivc)
                for cid in sorted(self.inputs)
                for vc, ivc in enumerate(self.inputs[cid])
            ]
        return [slot for slot in slots if slot[2].buffer]

    def arbitrate(self, cid: ChannelId, requesters: List[int]) -> int:
        """Round-robin winner among requester indices for an output."""
        if not requesters:
            raise SimulationError("arbitrate called with no requesters")
        start = self._rr[cid]
        requesters = sorted(requesters)
        for r in requesters:
            if r >= start:
                winner = r
                break
        else:
            winner = requesters[0]
        self._rr[cid] = winner + 1
        return winner


class Nic:
    """Network interface of one processor.

    The inject side streams queued packets into the processor's
    injection channel, one flit per cycle, holding one VC per packet.
    The eject side is an infinite sink (the NIC drains arriving flits
    immediately; credits return with the channel delay).
    """

    def __init__(self, processor: int, inject_channel: ChannelId) -> None:
        self.processor = processor
        self.inject_channel = inject_channel
        self.queue: Deque[Packet] = deque()
        self.streaming: Optional[Tuple[Packet, int]] = None  # (packet, vc)
        # Sorted inject times of queued packets, maintained on
        # enqueue/dequeue so idle-advance scheduling can binary-search
        # instead of rescanning the whole queue every stalled cycle.
        self._inject_times: List[int] = []
        # Min-heap of (inject_cycle, packet_id, packet) over queued
        # packets, so selecting the next packet to stream is a peek
        # instead of a min() scan of the queue.  Entries go stale when
        # a packet is dequeued; ``_queued_ids`` marks the live ones and
        # :meth:`peek_eligible` pops stale heads lazily.
        self._pending: List[Tuple[int, int, Packet]] = []
        self._queued_ids: set = set()

    def enqueue(self, packet: Packet) -> None:
        self.queue.append(packet)
        insort(self._inject_times, packet.inject_cycle)
        heappush(self._pending, (packet.inject_cycle, packet.packet_id, packet))
        self._queued_ids.add(packet.packet_id)

    def dequeue(self, packet: Packet) -> None:
        """Remove a packet selected for streaming from the queue."""
        self.queue.remove(packet)
        idx = bisect_right(self._inject_times, packet.inject_cycle) - 1
        # Equal times are interchangeable; remove any one slot.
        self._inject_times.pop(idx)
        self._queued_ids.discard(packet.packet_id)

    def peek_eligible(self, t: int) -> Optional[Packet]:
        """The queued packet with the smallest ``(inject_cycle,
        packet_id)`` whose inject time has arrived, or ``None``.

        Identical to ``min(eligible)`` over the queue — the heap order
        is exactly that key — without scanning it.
        """
        pending, queued = self._pending, self._queued_ids
        while pending and pending[0][1] not in queued:
            heappop(pending)
        if pending and pending[0][0] <= t:
            return pending[0][2]
        return None

    def pending_inject_cycles(self) -> List[int]:
        """Inject times of queued packets (for idle-skip scheduling)."""
        return list(self._inject_times)

    def next_inject_after(self, after: int) -> Optional[int]:
        """Earliest queued inject time strictly greater than ``after``,
        found by binary search over the sorted time cache."""
        idx = bisect_right(self._inject_times, after)
        return self._inject_times[idx] if idx < len(self._inject_times) else None

    def abort_stream(self, packet_id: int) -> Optional[int]:
        """Stop streaming a killed packet; returns its VC if it held one."""
        if self.streaming is not None and self.streaming[0].packet_id == packet_id:
            vc = self.streaming[1]
            self.streaming = None
            return vc
        return None
