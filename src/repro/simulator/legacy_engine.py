"""Vendored pre-event-queue simulator core (the PR baseline).

The event-queue rewrite of :mod:`repro.simulator.engine` must be
byte-identical to what the cycle-driven engine produced, and the
differential harness (``tests/simulator/test_event_queue_diff.py``)
proves it by running both.  Flipping knobs on the rewritten engine is
not a faithful baseline — the whole hot loop changed — so, following
the ``benchmarks/legacy_hotpath.py`` pattern, this module vendors the
pre-rewrite implementations verbatim:

* :class:`LegacyEngine` — per-cycle stepping with a flit/credit heap,
  a separate NIC wake heap, the lazily-sorted active-router set, and
  the full-scan fault-transition crossing;
* :class:`LegacyProcessReplay` — the every-process ``run_ready`` sweep
  and O(n) ``all_done``/``anyone_blocked`` scans;
* :func:`legacy_simulate` / :func:`legacy_replay_pattern` /
  :func:`legacy_run_open_loop` — the drivers, including the original
  per-cycle open-loop injection loop.

The shared fabric/packet/routing modules are *not* vendored: the
committed goldens under ``tests/simulator/golden/`` were frozen before
those modules were touched, so a behavior change there fails the
golden comparison for both engines.  Once the goldens have survived a
few releases this module can be deleted without losing the oracle.
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import DISABLED, Observability
from repro.simulator.config import SimConfig
from repro.simulator.fabric import Channel, InputVC, Nic, Router
from repro.simulator.packet import ChannelId, Flit, Packet
from repro.simulator.routing import SimRouting
from repro.simulator.stats import SimulationResult
from repro.topology.builders import Topology
from repro.workloads.events import ComputeEvent, Program, RecvEvent, SendEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.state import FaultState

# Heap event kinds.
_FLIT = 0
_CREDIT = 1

DeliveryHandler = Callable[[int, int, int, int], None]  # (src, dst, seq, cycle)


class _LegacySortedIdSet:
    """A set of ids handing out a lazily cached sorted view."""

    __slots__ = ("_members", "_ordered", "_dirty")

    def __init__(self) -> None:
        self._members: set = set()
        self._ordered: List[int] = []
        self._dirty = False

    def add(self, member: int) -> None:
        if member not in self._members:
            self._members.add(member)
            self._dirty = True

    def update(self, members) -> None:
        before = len(self._members)
        self._members.update(members)
        if len(self._members) != before:
            self._dirty = True

    def discard(self, member: int) -> None:
        if member in self._members:
            self._members.discard(member)
            self._dirty = True

    def ordered(self) -> List[int]:
        if self._dirty:
            self._ordered = sorted(self._members)
            self._dirty = False
        return self._ordered

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: int) -> bool:
        return member in self._members


class LegacyEngine:
    """The pre-rewrite cycle-driven engine, verbatim."""

    def __init__(
        self,
        topology: Topology,
        sim_routing: SimRouting,
        config: SimConfig,
        link_delays: Optional[Dict[int, int]] = None,
        fault_state: Optional["FaultState"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        topology.network.validate()
        self.topology = topology
        self.network = topology.network
        self.routing = sim_routing
        self.config = config
        self.faults = fault_state
        self.channels: Dict[ChannelId, Channel] = {}
        self.routers: Dict[int, Router] = {}
        self.nics: Dict[int, Nic] = {}
        self._build_fabric(link_delays or {})

        self._heap: List[Tuple[int, int, int, tuple]] = []
        self._heap_seq = 0
        self._active_routers = _LegacySortedIdSet()
        self._active_nics: set = set()
        self._nic_wake: List[Tuple[int, int]] = []  # (cycle, processor)
        self.nic_wakeups = 0
        self._vc_assignments: Dict[int, Dict[int, InputVC]] = {}
        self._packets: Dict[int, Packet] = {}
        self._next_packet_id = 0
        self.flits_in_network = 0
        self.last_progress = 0
        self.deadlocks_detected = 0
        self.contention_stalls = 0
        self.retransmissions = 0
        self.fault_packet_kills = 0
        self.delivered_packets = 0
        self.flit_hops = 0
        self.packet_latencies: List[int] = []
        self._delivery_handler: Optional[DeliveryHandler] = None
        self._delivery_observers: List[DeliveryHandler] = []
        self._channel_busy_cycles: Dict[ChannelId, int] = {}
        self._last_transition_seen = -1
        self.cycles_simulated = 0
        self.obs = obs if obs is not None else DISABLED
        self._obs_on = self.obs.enabled
        self._next_sample = 0
        if self._obs_on:
            m = self.obs.metrics
            self._c_flits_injected = m.counter("sim.flits_injected")
            self._c_flit_hops = m.counter("sim.flit_hops")
            self._c_delivered = m.counter("sim.packets_delivered")
            self._c_deadlocks = m.counter("sim.deadlocks")
            self._c_contention_stalls = m.counter("sim.contention_stalls")
            self._c_retransmissions = m.counter("sim.retransmissions")
            self._c_fault_kills = m.counter("sim.fault_kills")
            self._c_credit_stalls = m.counter("sim.credit_stalls")
            self._c_nic_wakeups = m.counter("sim.nic_wakeups")
            self._h_latency = m.histogram("sim.packet_latency_cycles")
            self._s_flits = m.series("sim.flits_in_network")
            self._s_active_routers = m.series("sim.active_routers")
            self._occ_channels: List[Tuple[ChannelId, str]] = [
                (cid, "sim.channel_occupancy." + ":".join(str(part) for part in cid))
                for cid in sorted(self.channels)
            ]

    # -- construction ---------------------------------------------------

    def _build_fabric(self, link_delays: Dict[int, int]) -> None:
        for s in self.network.switches:
            self.routers[s] = Router(s, self.config)
        for link in self.network.links:
            delay = max(1, link_delays.get(link.link_id, 1))
            fwd = Channel.build(
                ("link", link.link_id, 0), ("router", link.u), ("router", link.v), delay, self.config
            )
            bwd = Channel.build(
                ("link", link.link_id, 1), ("router", link.v), ("router", link.u), delay, self.config
            )
            self.channels[fwd.cid] = fwd
            self.channels[bwd.cid] = bwd
            self.routers[link.u].add_output(fwd.cid)
            self.routers[link.v].add_input(fwd.cid)
            self.routers[link.v].add_output(bwd.cid)
            self.routers[link.u].add_input(bwd.cid)
        for p in range(self.network.num_processors):
            s = self.network.switch_of(p)
            inj = Channel.build(("inj", p), ("nic", p), ("router", s), 1, self.config)
            ej = Channel.build(("ej", p), ("router", s), ("nic", p), 1, self.config)
            self.channels[inj.cid] = inj
            self.channels[ej.cid] = ej
            self.routers[s].add_input(inj.cid)
            self.routers[s].add_output(ej.cid)
            self.nics[p] = Nic(p, inj.cid)

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        self._delivery_handler = handler

    def add_delivery_observer(self, observer: DeliveryHandler) -> None:
        self._delivery_observers.append(observer)

    # -- packet submission ------------------------------------------------

    def submit(self, source: int, dest: int, size_bytes: int, inject_cycle: int, seq: int) -> int:
        packet = Packet(
            packet_id=self._next_packet_id,
            source=source,
            dest=dest,
            size_bytes=size_bytes,
            num_flits=self.config.flits_for(size_bytes),
            seq=seq,
            inject_cycle=inject_cycle,
        )
        self._next_packet_id += 1
        self.routing.prepare(packet, self.network)
        self._packets[packet.packet_id] = packet
        self.nics[source].enqueue(packet)
        heapq.heappush(self._nic_wake, (inject_cycle, source))
        return packet.packet_id

    # -- scheduling helpers ----------------------------------------------

    def _push(self, time: int, kind: int, payload: tuple) -> None:
        heapq.heappush(self._heap, (time, self._heap_seq, kind, payload))
        self._heap_seq += 1

    def _activate_nic(self, processor: int) -> None:
        if processor not in self._active_nics:
            self._active_nics.add(processor)
            self.nic_wakeups += 1
            if self._obs_on:
                self._c_nic_wakeups.inc()

    def next_heap_time(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def next_inject_time(self, after: int) -> Optional[int]:
        best: Optional[int] = None
        for nic in self.nics.values():
            t = nic.next_inject_after(after)
            if t is not None and (best is None or t < best):
                best = t
        return best

    def has_queued_packets(self) -> bool:
        return any(nic.queue or nic.streaming for nic in self.nics.values())

    def busy(self) -> bool:
        return bool(self._heap) or self.flits_in_network > 0 or self.has_queued_packets()

    # -- faults -----------------------------------------------------------

    def _dead(self, cid: ChannelId, t: int) -> bool:
        return self.faults is not None and self.faults.channel_dead(cid, t)

    def next_fault_transition(self, after: int) -> Optional[int]:
        if self.faults is None:
            return None
        return self.faults.next_transition(after)

    def _cross_fault_transitions(self, t: int) -> None:
        if self.faults is None:
            return
        crossed = False
        for cycle in self.faults.transitions:
            if self._last_transition_seen < cycle <= t:
                self._last_transition_seen = cycle
                crossed = True
        if crossed:
            self._active_routers.update(self.routers)
            for p in self.nics:
                self._activate_nic(p)

    # -- the cycle --------------------------------------------------------

    def step(self, t: int) -> bool:
        if t >= self.cycles_simulated:
            self.cycles_simulated = t + 1
        if self._obs_on and t >= self._next_sample:
            self._sample_window(t)
        self._cross_fault_transitions(t)
        moved = False
        moved |= self._deliver_events(t)
        moved |= self._step_routers(t)
        moved |= self._step_nics(t)
        if moved:
            self.last_progress = t
        elif self.flits_in_network > 0 and t - self.last_progress >= self.config.deadlock_threshold:
            self._recover_deadlock(t)
        return moved

    def _sample_window(self, t: int) -> None:
        self._next_sample = t + self.obs.sample_every
        self._s_flits.append(t, self.flits_in_network)
        self._s_active_routers.append(t, len(self._active_routers))
        m = self.obs.metrics
        if m.enabled:
            channels = self.channels
            busy = self._channel_busy_cycles
            for cid, name in self._occ_channels:
                occupancy = channels[cid].busy_vcs()
                if occupancy or cid in busy:
                    m.series(name).append(t, occupancy)

    def _deliver_events(self, t: int) -> bool:
        moved = False
        while self._heap and self._heap[0][0] <= t:
            time, _, kind, payload = heapq.heappop(self._heap)
            if time < t:
                raise SimulationError(
                    f"engine time skew: event at {time} processed at {t}"
                )
            if kind == _CREDIT:
                cid, vc = payload
                self.channels[cid].credits[vc] += 1
                src_kind, src_id = self.channels[cid].src
                if src_kind == "router":
                    self._active_routers.add(src_id)
                else:
                    self._activate_nic(src_id)
            else:
                cid, vc, flit = payload
                channel = self.channels[cid]
                dst_kind, dst_id = channel.dst
                if not flit.packet.killed and self._dead(cid, t):
                    self._push(t + channel.delay, _CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
                    self._fault_kill(flit.packet, t)
                elif dst_kind == "nic":
                    self._push(t + channel.delay, _CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
                    if flit.is_tail and not flit.packet.killed:
                        self._complete_delivery(flit.packet, t)
                elif flit.packet.killed:
                    self._push(t + channel.delay, _CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
                else:
                    self.routers[dst_id].accept(cid, vc, flit, channel.buffer_depth)
                    self._active_routers.add(dst_id)
        return moved

    def _complete_delivery(self, packet: Packet, t: int) -> None:
        packet.delivered = True
        self.delivered_packets += 1
        self.packet_latencies.append(t - packet.inject_cycle)
        if self._obs_on:
            self._c_delivered.inc()
            self._h_latency.observe(t - packet.inject_cycle)
        if self._delivery_handler is not None:
            self._delivery_handler(packet.source, packet.dest, packet.seq, t)
        for observer in self._delivery_observers:
            observer(packet.source, packet.dest, packet.seq, t)

    def _assign_vc(self, ivc: InputVC, pid: int, out_cid: ChannelId, out_vc: int) -> None:
        old = ivc.assignment
        if old is not None:
            entries = self._vc_assignments.get(old[0])
            if entries is not None:
                entries.pop(id(ivc), None)
                if not entries:
                    del self._vc_assignments[old[0]]
        ivc.assignment = (pid, out_cid, out_vc)
        self._vc_assignments.setdefault(pid, {})[id(ivc)] = ivc

    def _clear_assignment(self, ivc: InputVC) -> None:
        assignment = ivc.assignment
        if assignment is not None:
            entries = self._vc_assignments.get(assignment[0])
            if entries is not None:
                entries.pop(id(ivc), None)
                if not entries:
                    del self._vc_assignments[assignment[0]]
        ivc.assignment = None

    def _step_routers(self, t: int) -> bool:
        moved = False
        for sid in self._active_routers.ordered():
            router = self.routers[sid]
            active = router.active_vcs()
            if not active:
                continue
            for cid, vc, ivc in active:
                while ivc.buffer and ivc.buffer[0].packet.killed:
                    ivc.buffer.popleft()
                    self._push(t + self.channels[cid].delay, _CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
            active = [(cid, vc, ivc) for cid, vc, ivc in active if ivc.buffer]
            for cid, vc, ivc in active:
                front = ivc.front
                if front is None or not front.is_head:
                    continue
                if ivc.assignment is not None and ivc.assignment[0] == front.packet.packet_id:
                    continue
                candidates = self.routing.candidates(front.packet, sid)
                if self.faults is not None:
                    candidates = [c for c in candidates if not self._dead(c, t)]
                if len(candidates) > 1:
                    candidates = sorted(
                        candidates,
                        key=lambda c: self.channels[c].busy_vcs(),
                    )
                for out_cid in candidates:
                    out_channel = self.channels[out_cid]
                    out_vc = out_channel.free_vc()
                    if out_vc is not None:
                        out_channel.owner[out_vc] = front.packet.packet_id
                        self._assign_vc(ivc, front.packet.packet_id, out_cid, out_vc)
                        break
                else:
                    if candidates:
                        self.contention_stalls += 1
                        if self._obs_on:
                            self._c_contention_stalls.inc()
            requests: Dict[ChannelId, List[int]] = {}
            for idx, (cid, vc, ivc) in enumerate(active):
                front = ivc.front
                if front is None or ivc.assignment is None:
                    continue
                pid, out_cid, out_vc = ivc.assignment
                if pid != front.packet.packet_id:
                    continue
                if self._dead(out_cid, t):
                    continue
                if self.channels[out_cid].credits[out_vc] > 0:
                    requests.setdefault(out_cid, []).append(idx)
                elif self._obs_on:
                    self._c_credit_stalls.inc()
            for out_cid in sorted(requests):
                losers = len(requests[out_cid]) - 1
                if losers:
                    self.contention_stalls += losers
                    if self._obs_on:
                        self._c_contention_stalls.inc(losers)
                winner_idx = router.arbitrate(out_cid, requests[out_cid])
                cid, vc, ivc = active[winner_idx]
                flit = ivc.buffer.popleft()
                _, _, out_vc = ivc.assignment
                out_channel = self.channels[out_cid]
                out_channel.credits[out_vc] -= 1
                self._push(t + out_channel.delay, _FLIT, (out_cid, out_vc, flit))
                self._push(t + self.channels[cid].delay, _CREDIT, (cid, vc))
                self._channel_busy_cycles[out_cid] = (
                    self._channel_busy_cycles.get(out_cid, 0) + 1
                )
                self.flit_hops += 1
                if self._obs_on:
                    self._c_flit_hops.inc()
                moved = True
                if flit.is_tail:
                    self._clear_assignment(ivc)
                    out_channel.owner[out_vc] = None
            if not router.active_vcs():
                self._active_routers.discard(sid)
        return moved

    def _step_nics(self, t: int) -> bool:
        wake = self._nic_wake
        while wake and wake[0][0] <= t:
            self._activate_nic(heapq.heappop(wake)[1])
        if not self._active_nics:
            return False
        moved = False
        for p in sorted(self._active_nics):
            nic = self.nics[p]
            channel = self.channels[nic.inject_channel]
            if self._dead(nic.inject_channel, t):
                self._active_nics.discard(p)
                continue
            if nic.streaming is None and nic.queue:
                eligible = [pkt for pkt in nic.queue if pkt.inject_cycle <= t]
                if eligible:
                    pkt = min(eligible, key=lambda q: (q.inject_cycle, q.packet_id))
                    vc = channel.free_vc()
                    if vc is not None:
                        channel.owner[vc] = pkt.packet_id
                        nic.streaming = (pkt, vc)
                        nic.dequeue(pkt)
                else:
                    heapq.heappush(wake, (nic.next_inject_after(t), p))
                    self._active_nics.discard(p)
                    continue
            if nic.streaming is not None:
                pkt, vc = nic.streaming
                if channel.credits[vc] > 0:
                    flit = Flit(pkt, pkt.flits_sent)
                    channel.credits[vc] -= 1
                    pkt.flits_sent += 1
                    self._push(t + channel.delay, _FLIT, (nic.inject_channel, vc, flit))
                    self._channel_busy_cycles[nic.inject_channel] = (
                        self._channel_busy_cycles.get(nic.inject_channel, 0) + 1
                    )
                    self.flits_in_network += 1
                    if self._obs_on:
                        self._c_flits_injected.inc()
                    moved = True
                    if flit.is_tail:
                        nic.streaming = None
                        channel.owner[vc] = None
                elif self._obs_on:
                    self._c_credit_stalls.inc()
                else:
                    self._active_nics.discard(p)
            elif not nic.queue:
                self._active_nics.discard(p)
        return moved

    # -- regressive recovery ---------------------------------------------

    def _recover_deadlock(self, t: int) -> None:
        stuck = [
            pkt
            for pkt in self._packets.values()
            if not pkt.killed and not pkt.delivered and self._has_presence(pkt)
        ]
        if not stuck:
            raise SimulationError(
                f"deadlock detected at cycle {t} but no packet is in flight"
            )
        victim = max(stuck, key=lambda pkt: (pkt.inject_cycle, pkt.packet_id))
        self.deadlocks_detected += 1
        if self._obs_on:
            self._c_deadlocks.inc()
            self.obs.tracer.event(
                "sim.deadlock",
                cycle=t,
                packet=victim.packet_id,
                source=victim.source,
                dest=victim.dest,
            )
        self._kill_packet(victim)
        self._retransmit(victim, t)
        self.last_progress = t

    def _fault_kill(self, packet: Packet, t: int) -> None:
        if packet.killed or packet.delivered:
            return
        self.fault_packet_kills += 1
        if self._obs_on:
            self._c_fault_kills.inc()
            self.obs.tracer.event(
                "sim.fault_kill",
                cycle=t,
                packet=packet.packet_id,
                source=packet.source,
                dest=packet.dest,
            )
        self._kill_packet(packet)
        self._retransmit(packet, t)

    def _kill_packet(self, victim: Packet) -> None:
        victim.killed = True
        for ivc in self._vc_assignments.pop(victim.packet_id, {}).values():
            assignment = ivc.assignment
            if assignment is None or assignment[0] != victim.packet_id:
                continue
            _, out_cid, out_vc = assignment
            self.channels[out_cid].owner[out_vc] = None
            ivc.assignment = None
        nic = self.nics[victim.source]
        held_vc = nic.abort_stream(victim.packet_id)
        if held_vc is not None:
            self.channels[nic.inject_channel].owner[held_vc] = None
        self._active_routers.update(self.routers)
        self._activate_nic(victim.source)

    def _retransmit(self, victim: Packet, t: int) -> None:
        replacement = Packet(
            packet_id=self._next_packet_id,
            source=victim.source,
            dest=victim.dest,
            size_bytes=victim.size_bytes,
            num_flits=victim.num_flits,
            seq=victim.seq,
            inject_cycle=t + self.config.retransmit_backoff,
        )
        self._next_packet_id += 1
        self.routing.prepare(replacement, self.network)
        self._packets[replacement.packet_id] = replacement
        self.nics[victim.source].enqueue(replacement)
        heapq.heappush(self._nic_wake, (replacement.inject_cycle, victim.source))
        self.retransmissions += 1
        if self._obs_on:
            self._c_retransmissions.inc()
            self.obs.tracer.event(
                "sim.retransmit",
                cycle=t,
                packet=victim.packet_id,
                replacement=replacement.packet_id,
                inject_cycle=replacement.inject_cycle,
            )

    def _has_presence(self, pkt: Packet) -> bool:
        return pkt.flits_sent > 0

    # -- stats -----------------------------------------------------------

    def link_utilization(
        self, total_cycles: Optional[int] = None
    ) -> Dict[ChannelId, float]:
        if total_cycles is None:
            total_cycles = self.cycles_simulated
        if total_cycles <= 0:
            return {}
        return {
            cid: busy / total_cycles
            for cid, busy in sorted(self._channel_busy_cycles.items())
        }


class LegacyProcessReplay:
    """The pre-rewrite process replay: full sweep per ``run_ready``."""

    def __init__(self, program: Program, engine: LegacyEngine, config: SimConfig) -> None:
        from repro.simulator.process import _ProcessState

        if program.num_processes != engine.network.num_processors:
            raise SimulationError(
                f"program has {program.num_processes} processes but the network "
                f"has {engine.network.num_processors} processors"
            )
        self.program = program
        self.engine = engine
        self.config = config
        self.states = [_ProcessState() for _ in range(program.num_processes)]
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._recv_seq: Dict[Tuple[int, int], int] = {}
        self._deliveries: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._blocked_index: Dict[Tuple[int, int, int], int] = {}
        engine.set_delivery_handler(self._on_delivery)

    def _on_delivery(self, src: int, dst: int, seq: int, cycle: int) -> None:
        self._deliveries.setdefault((src, dst), {})[seq] = cycle
        proc = self._blocked_index.pop((src, dst, seq), None)
        if proc is not None:
            state = self.states[proc]
            resume = max(state.wait_start, cycle)
            waited = resume - state.wait_start
            state.wait_cycles += waited
            state.comm_cycles += waited + self.config.recv_overhead
            state.recv_overhead_cycles += self.config.recv_overhead
            state.ready_at = resume + self.config.recv_overhead
            state.blocked_on = None

    def run_ready(self) -> None:
        for proc in range(self.program.num_processes):
            self._run_process(proc)

    def _run_process(self, proc: int) -> None:
        state = self.states[proc]
        if state.done or state.blocked_on is not None:
            return
        events = self.program.events[proc]
        while state.index < len(events):
            event = events[state.index]
            if isinstance(event, ComputeEvent):
                state.ready_at += event.cycles
                state.index += 1
            elif isinstance(event, SendEvent):
                state.ready_at += self.config.send_overhead
                state.comm_cycles += self.config.send_overhead
                state.send_overhead_cycles += self.config.send_overhead
                key = (proc, event.dest)
                seq = self._send_seq.get(key, 0)
                self._send_seq[key] = seq + 1
                self.engine.submit(
                    source=proc,
                    dest=event.dest,
                    size_bytes=event.size_bytes,
                    inject_cycle=state.ready_at,
                    seq=seq,
                )
                state.index += 1
            elif isinstance(event, RecvEvent):
                key = (event.source, proc)
                seq = self._recv_seq.get(key, 0)
                delivered = self._deliveries.get(key, {})
                if seq in delivered:
                    self._recv_seq[key] = seq + 1
                    cycle = delivered[seq]
                    waited = max(0, cycle - state.ready_at)
                    state.wait_cycles += waited
                    state.comm_cycles += waited + self.config.recv_overhead
                    state.recv_overhead_cycles += self.config.recv_overhead
                    state.ready_at = max(state.ready_at, cycle) + self.config.recv_overhead
                    state.index += 1
                else:
                    self._recv_seq[key] = seq + 1
                    state.blocked_on = (event.source, seq)
                    state.wait_start = state.ready_at
                    self._blocked_index[(event.source, proc, seq)] = proc
                    state.index += 1
                    return
            else:  # pragma: no cover - event union is closed
                raise SimulationError(f"unknown event type {event!r}")
        state.done = True

    def all_done(self) -> bool:
        return all(s.done and s.blocked_on is None for s in self.states)

    def anyone_blocked(self) -> bool:
        return any(s.blocked_on is not None for s in self.states)

    def blocked_summary(self) -> str:
        lines = []
        for proc, s in enumerate(self.states):
            if s.blocked_on is not None:
                src, seq = s.blocked_on
                lines.append(f"process {proc} waits for message #{seq} from {src}")
        return "; ".join(lines)

    def execution_cycles(self) -> int:
        return max(s.ready_at for s in self.states)

    def communication_cycles(self) -> List[int]:
        return [s.comm_cycles for s in self.states]


def legacy_simulate(
    program: Program,
    topology: Topology,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    routing: Optional[SimRouting] = None,
    fault_state: Optional["FaultState"] = None,
    obs: Optional[Observability] = None,
) -> SimulationResult:
    """The pre-rewrite ``simulate`` driving the vendored engine."""
    from repro.simulator.simulation import routing_policy_for

    config = config or SimConfig()
    engine = LegacyEngine(
        topology,
        routing or routing_policy_for(topology),
        config,
        link_delays=link_delays,
        fault_state=fault_state,
        obs=obs,
    )
    replay = LegacyProcessReplay(program, engine, config)
    tracer = engine.obs.tracer

    with tracer.span(
        "simulate.run", program=program.name, topology=topology.name
    ):
        t = 0
        replay.run_ready()
        while not replay.all_done() or engine.busy():
            if t > config.max_cycles:
                raise SimulationError(
                    f"simulation exceeded {config.max_cycles} cycles "
                    f"({program.name} on {topology.name}); likely livelock"
                )
            moved = engine.step(t)
            if moved:
                replay.run_ready()
            if not moved:
                t = _legacy_advance(engine, replay, t)
            else:
                t += 1

    if engine.obs.enabled:
        m = engine.obs.metrics
        m.gauge("sim.execution_cycles").set(replay.execution_cycles())
        m.gauge("sim.cycles_simulated").set(engine.cycles_simulated)
    return SimulationResult(
        topology_name=topology.name,
        program_name=program.name,
        execution_cycles=replay.execution_cycles(),
        comm_cycles_per_process=tuple(replay.communication_cycles()),
        delivered_packets=engine.delivered_packets,
        deadlocks_detected=engine.deadlocks_detected,
        retransmissions=engine.retransmissions,
        fault_packet_kills=engine.fault_packet_kills,
        flit_hops=engine.flit_hops,
        link_utilization=engine.link_utilization(),
        config=config,
        packet_latencies=tuple(engine.packet_latencies),
    )


def _legacy_advance(engine: LegacyEngine, replay: LegacyProcessReplay, t: int) -> int:
    candidates = []
    heap_next = engine.next_heap_time()
    if heap_next is not None:
        candidates.append(heap_next)
    inject_next = engine.next_inject_time(t)
    if inject_next is not None:
        candidates.append(inject_next)
    fault_next = engine.next_fault_transition(t)
    if fault_next is not None and (engine.busy() or replay.anyone_blocked()):
        candidates.append(fault_next)
        if engine.flits_in_network > 0:
            candidates.append(
                max(t + 1, engine.last_progress + engine.config.deadlock_threshold)
            )
    if candidates:
        return max(t + 1, min(candidates))
    if engine.flits_in_network > 0:
        return max(t + 1, engine.last_progress + engine.config.deadlock_threshold)
    if replay.anyone_blocked():
        raise SimulationError(
            "simulation stuck with an idle network: " + replay.blocked_summary()
        )
    return t + 1


def legacy_replay_pattern(
    topology: Topology,
    pattern,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    routing: Optional[SimRouting] = None,
):
    """The pre-rewrite ``repro.verify.dynamic.replay_pattern``.

    Reuses the (unchanged) scale derivation from the real module so the
    only difference under test is the engine core.
    """
    from repro.simulator.simulation import routing_policy_for
    from repro.verify.dynamic import ReplayReport, _max_route_hops, injection_scale

    config = config or SimConfig()
    engine = LegacyEngine(
        topology,
        routing or routing_policy_for(topology),
        config,
        link_delays=link_delays,
    )
    max_hops = _max_route_hops(topology, pattern)
    max_delay = max(link_delays.values()) if link_delays else 1
    scale = injection_scale(pattern, config, max_hops, max_delay)
    ordered = sorted(
        pattern.messages, key=lambda m: (m.t_start, m.t_finish, m.source, m.dest)
    )
    for seq, message in enumerate(ordered):
        engine.submit(
            source=message.source,
            dest=message.dest,
            size_bytes=message.size_bytes,
            inject_cycle=int(round(message.t_start * scale)),
            seq=seq,
        )
    cycles = _legacy_drain(engine, config)
    return ReplayReport(
        topology_name=topology.name,
        pattern_name=pattern.name,
        scale=scale,
        messages=len(ordered),
        delivered_packets=engine.delivered_packets,
        contention_stalls=engine.contention_stalls,
        deadlocks_detected=engine.deadlocks_detected,
        retransmissions=engine.retransmissions,
        cycles=cycles,
    )


def _legacy_drain(engine: LegacyEngine, config: SimConfig) -> int:
    t = 0
    while engine.busy():
        if t > config.max_cycles:
            raise SimulationError(
                f"pattern replay exceeded {config.max_cycles} cycles; "
                "likely livelock"
            )
        if engine.step(t):
            t += 1
            continue
        candidates = []
        heap_next = engine.next_heap_time()
        if heap_next is not None:
            candidates.append(heap_next)
        inject_next = engine.next_inject_time(t)
        if inject_next is not None:
            candidates.append(inject_next)
        if candidates:
            t = max(t + 1, min(candidates))
        elif engine.flits_in_network > 0:
            t = max(t + 1, engine.last_progress + config.deadlock_threshold)
        else:
            t += 1
    return engine.cycles_simulated


def legacy_run_open_loop(
    topology: Topology,
    injection_rate: float,
    pattern=None,
    packet_bytes: int = 32,
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
    drain_cycles: int = 2000,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    routing: Optional[SimRouting] = None,
    seed: int = 0,
    fault_state: Optional["FaultState"] = None,
    obs: Optional[Observability] = None,
):
    """The pre-rewrite per-cycle open-loop injection loop."""
    from repro.simulator.openloop import _RESAMPLE_BOUND, LoadPoint, uniform_random
    from repro.simulator.simulation import routing_policy_for

    if pattern is None:
        pattern = uniform_random
    if injection_rate <= 0:
        raise SimulationError(f"injection rate must be positive, got {injection_rate}")
    config = config or SimConfig()
    engine = LegacyEngine(
        topology,
        routing or routing_policy_for(topology),
        config,
        link_delays,
        fault_state=fault_state,
        obs=obs,
    )
    rng = random.Random(seed)
    n = topology.network.num_processors
    flits_per_packet = config.flits_for(packet_bytes)

    inject_times: Dict[tuple, int] = {}
    latencies: List[int] = []
    delivered_in_window = 0

    def on_delivery(src: int, dst: int, seq_: int, cycle: int) -> None:
        nonlocal delivered_in_window
        t0 = inject_times.pop((src, dst, seq_), None)
        if t0 is not None and t0 >= warmup_cycles:
            latencies.append(cycle - t0)
            delivered_in_window += 1

    engine.set_delivery_handler(on_delivery)
    seqs: Dict[tuple, int] = {}
    debt = [0.0] * n
    horizon = warmup_cycles + measure_cycles

    for t in range(horizon):
        for node in range(n):
            debt[node] += injection_rate
            if debt[node] >= flits_per_packet:
                dest = pattern(node, n, rng)
                for _ in range(_RESAMPLE_BOUND):
                    if dest != node:
                        break
                    dest = pattern(node, n, rng)
                if dest == node:
                    continue
                debt[node] -= flits_per_packet
                key = (node, dest)
                seq = seqs.get(key, 0)
                seqs[key] = seq + 1
                engine.submit(
                    source=node,
                    dest=dest,
                    size_bytes=packet_bytes,
                    inject_cycle=t,
                    seq=seq,
                )
                inject_times[(node, dest, seq)] = t
        engine.step(t)

    t = horizon
    while engine.busy() and t < horizon + drain_cycles:
        engine.step(t)
        t += 1
    saturated = engine.busy()

    payload_flits = flits_per_packet - 1
    accepted = delivered_in_window * payload_flits / (measure_cycles * n)
    return LoadPoint(
        offered_flits_per_node_cycle=injection_rate,
        accepted_flits_per_node_cycle=accepted,
        avg_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        delivered=delivered_in_window,
        saturated=saturated,
    )
