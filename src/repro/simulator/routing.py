"""Routing policies of the flit-level simulator (paper Section 4.2).

Three policies cover the paper's evaluation:

* source routing (generated networks) — the packet carries its full hop
  list, pinned to concrete links by the synthesizer's coloring;
* dimension-order routing (mesh) — deterministic, realized by
  precomputing the DOR path and source-routing it (observationally
  identical for a deterministic function);
* true fully-adaptive minimal routing (torus) — per-hop candidate sets
  over all minimal directions and all VCs, with deadlock detection and
  regressive recovery at the engine level.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Protocol, Tuple

from repro.errors import RoutingError
from repro.model.message import Communication
from repro.simulator.packet import ChannelId, Packet
from repro.topology.builders import Topology
from repro.topology.network import Network
from repro.topology.routing import RoutingBase


class SimRouting(Protocol):
    """Per-hop routing interface used by the engine."""

    def prepare(self, packet: Packet, network: Network) -> None:
        """Attach routing state to a freshly injected packet."""

    def candidates(self, packet: Packet, switch_id: int) -> List[ChannelId]:
        """Ordered candidate output channels at a switch (possibly
        including the ejection channel when the packet has arrived)."""


class BoundSourceRouted:
    """Source routing bound to a concrete network's link table."""

    def __init__(self, routing: RoutingBase, network: Network) -> None:
        self._routing = routing
        self._network = network
        self._hop_src: Dict[ChannelId, int] = {}
        for link in network.links:
            self._hop_src[("link", link.link_id, 0)] = link.u
            self._hop_src[("link", link.link_id, 1)] = link.v

    def prepare(self, packet: Packet, network: Network) -> None:
        route = self._routing.route(Communication(packet.source, packet.dest))
        packet.route_hops = tuple(route.hops) + (("ej", packet.dest),)
        packet.dest_switch = network.switch_of(packet.dest)

    def candidates(self, packet: Packet, switch_id: int) -> List[ChannelId]:
        if packet.route_hops is None:
            raise RoutingError(f"packet {packet.packet_id} was not prepared")
        for hop in packet.route_hops:
            if hop[0] == "link" and self._hop_src.get(hop) == switch_id:
                return [hop]
        if switch_id == packet.dest_switch:
            return [("ej", packet.dest)]
        raise RoutingError(
            f"packet {packet.packet_id} ({packet.source}->{packet.dest}) "
            f"stranded at S{switch_id}; route={packet.route_hops}"
        )


class AdaptiveMinimal:
    """True fully-adaptive minimal routing on a grid (torus or mesh).

    At each switch every minimal direction is a candidate, each over
    every VC.  Candidate order is x-then-y so that deterministic
    tie-breaks stay reproducible; the engine tries candidates in order
    and takes the first with a free VC.
    """

    def __init__(self, topology: Topology) -> None:
        if topology.coords is None or topology.grid_shape is None:
            raise RoutingError("adaptive routing needs a grid topology")
        self._network = topology.network
        self._coords = topology.coords
        self._width, self._height = topology.grid_shape
        self._wrap = topology.kind == "torus"
        # channel lookup: (from switch, to switch) -> channel ids
        self._channels: Dict[Tuple[int, int], List[ChannelId]] = {}
        for link in self._network.links:
            self._channels.setdefault((link.u, link.v), []).append(("link", link.link_id, 0))
            self._channels.setdefault((link.v, link.u), []).append(("link", link.link_id, 1))
        self._by_coord = {xy: s for s, xy in self._coords.items()}

    def prepare(self, packet: Packet, network: Network) -> None:
        packet.route_hops = None
        packet.dest_switch = network.switch_of(packet.dest)

    def candidates(self, packet: Packet, switch_id: int) -> List[ChannelId]:
        if switch_id == packet.dest_switch:
            return [("ej", packet.dest)]
        x, y = self._coords[switch_id]
        dx, dy = self._coords[packet.dest_switch]
        out: List[ChannelId] = []
        for nx in self._minimal_steps(x, dx, self._width):
            out.extend(self._channels.get((switch_id, self._by_coord[(nx, y)]), []))
        for ny in self._minimal_steps(y, dy, self._height):
            out.extend(self._channels.get((switch_id, self._by_coord[(x, ny)]), []))
        if not out:
            raise RoutingError(
                f"no minimal step from S{switch_id} toward S{packet.dest_switch}"
            )
        return out

    def _minimal_steps(self, frm: int, to: int, extent: int) -> List[int]:
        """Neighbouring coordinates lying on a minimal path in this axis."""
        if frm == to:
            return []
        if not self._wrap:
            return [frm + 1] if to > frm else [frm - 1]
        forward = (to - frm) % extent
        backward = (frm - to) % extent
        steps = []
        if forward <= backward:
            steps.append((frm + 1) % extent)
        if backward <= forward:
            steps.append((frm - 1) % extent)
        return steps
