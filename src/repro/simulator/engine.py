"""Event-queue simulation engine.

Models wormhole flit transport over the fabric of
:mod:`repro.simulator.fabric`: per-cycle virtual-channel allocation,
round-robin switch allocation (one flit per physical channel per
cycle), credit-based flow control with delay-accurate credit return,
and timeout-based deadlock detection with regressive recovery (killed
packets drain and are retransmitted from the source — the paper's
"detection and regressive recovery" discipline).

All scheduling flows through one global :class:`~repro.simulator.events.EventQueue`:
flit arrivals, credit returns, and NIC wake-ups (packet inject times,
retransmission backoffs, injection back-pressure releases) are events
keyed on ``(time, insertion seq)``.  Routers and NICs are stepped only
while members of the active sets, and every way a sleeping component
can become relevant again — an arriving flit, a returning credit, a
queued inject time, a fault transition — schedules or performs its
activation, so drivers can jump straight to
:meth:`Engine.next_event_time` across idle gaps.  The cycle-driven
semantics are unchanged (see ``docs/SIMULATOR.md`` for the event model
and its determinism rules); the byte-identity differential harness in
``tests/simulator/test_event_queue_diff.py`` holds this engine to the
committed goldens under ``tests/simulator/golden/`` (frozen from the
pre-event-queue engine).

Fault injection: when a :class:`~repro.faults.state.FaultState` is
supplied, every allocation and traversal decision consults it.  Flits
in flight on a failing channel are lost, and the affected packet is
killed and retransmitted through the same regressive-recovery path the
deadlock detector uses; packets blocked *before* a dead channel simply
stall until the timeout kills them (or the channel recovers, for
transient faults).  Credit/control signaling is assumed reliable, so
transient faults leave no accounting residue after recovery.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import DISABLED, Observability
from repro.simulator.config import SimConfig
from repro.simulator.events import CREDIT, FLIT, NIC_WAKE, EventQueue
from repro.simulator.fabric import Channel, InputVC, Nic, Router
from repro.simulator.packet import ChannelId, Flit, Packet
from repro.simulator.routing import SimRouting
from repro.topology.builders import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.state import FaultState

DeliveryHandler = Callable[[int, int, int, int], None]  # (src, dst, seq, cycle)


class _SortedIdSet:
    """A set of ids handing out a lazily cached sorted view.

    The engine walks the active-router set in sorted order every cycle,
    while membership changes far less often than cycles pass; caching
    the sorted list and re-sorting only after a mutation replaces the
    per-cycle ``sorted(set)`` with a list reuse."""

    __slots__ = ("_members", "_ordered", "_dirty")

    def __init__(self) -> None:
        self._members: set = set()
        self._ordered: List[int] = []
        self._dirty = False

    def add(self, member: int) -> None:
        if member not in self._members:
            self._members.add(member)
            self._dirty = True

    def update(self, members) -> None:
        before = len(self._members)
        self._members.update(members)
        if len(self._members) != before:
            self._dirty = True

    def discard(self, member: int) -> None:
        if member in self._members:
            self._members.discard(member)
            self._dirty = True

    def ordered(self) -> List[int]:
        """Members in sorted order.

        The returned list is a snapshot: mutating the set marks the
        cache dirty for the *next* call but never touches a list
        already handed out, so callers may discard members while
        iterating it."""
        if self._dirty:
            self._ordered = sorted(self._members)
            self._dirty = False
        return self._ordered

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: int) -> bool:
        return member in self._members


class Engine:
    """The network fabric plus its event queue and progress tracking."""

    def __init__(
        self,
        topology: Topology,
        sim_routing: SimRouting,
        config: SimConfig,
        link_delays: Optional[Dict[int, int]] = None,
        fault_state: Optional["FaultState"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        topology.network.validate()
        self.topology = topology
        self.network = topology.network
        self.routing = sim_routing
        self.config = config
        self.faults = fault_state
        self.channels: Dict[ChannelId, Channel] = {}
        self.routers: Dict[int, Router] = {}
        self.nics: Dict[int, Nic] = {}
        self._build_fabric(link_delays or {})

        # The single event queue.  The engine never cancels events it
        # schedules — killed packets' flits must still arrive so their
        # buffer credits return through the normal path — so the
        # dispatch loop may pop the raw heap without a tombstone check.
        self._events = EventQueue()
        self._active_routers = _SortedIdSet()
        # Event-driven NIC stepping: a NIC is stepped only while in the
        # active set.  It sleeps when idle, when every queued packet
        # injects in the future (a NIC_WAKE event covers the earliest),
        # when blocked on an inject-channel credit (the credit's return
        # reactivates it), or when its inject channel is dead (a fault
        # transition reactivates it).
        self._active_nics: set = set()
        self.nic_wakeups = 0
        # packet_id -> {id(InputVC): InputVC} for every input VC whose
        # current assignment belongs to that packet; lets _kill_packet
        # release a victim's resources without scanning the fabric.
        self._vc_assignments: Dict[int, Dict[int, InputVC]] = {}
        self._packets: Dict[int, Packet] = {}
        self._next_packet_id = 0
        self.flits_in_network = 0
        self.last_progress = 0
        self.deadlocks_detected = 0
        # Cycles lost to *inter-packet* contention: a head flit finding
        # every VC of its candidate channels held by other packets, or
        # an allocated flit losing switch arbitration to another packet.
        # Self-induced credit stalls (a lone packet throttled by its own
        # credit round-trip on a long link) are deliberately excluded —
        # the static contention certificate promises the absence of
        # inter-packet interference, not of flow-control latency.
        self.contention_stalls = 0
        self.retransmissions = 0
        self.fault_packet_kills = 0
        self.delivered_packets = 0
        self.flit_hops = 0
        self.packet_latencies: List[int] = []
        self._delivery_handler: Optional[DeliveryHandler] = None
        self._delivery_observers: List[DeliveryHandler] = []
        self._channel_busy_cycles: Dict[ChannelId, int] = {}
        # Index of the earliest fault transition not yet crossed;
        # FaultState.transitions is sorted, so crossing is an O(1)
        # pointer bump instead of a scan of every window boundary.
        self._transition_idx = 0
        # Highest cycle this engine has simulated, plus one — the busy
        # window link-utilization fractions normalize over (covers the
        # drain after the last process finishes, so utilization stays
        # in [0, 1] even for trailing-send programs).
        self.cycles_simulated = 0
        self.obs = obs if obs is not None else DISABLED
        # Cached flag: hot paths pay one attribute load, nothing more,
        # when observability is disabled.
        self._obs_on = self.obs.enabled
        self._next_sample = 0
        if self._obs_on:
            m = self.obs.metrics
            self._c_flits_injected = m.counter("sim.flits_injected")
            self._c_flit_hops = m.counter("sim.flit_hops")
            self._c_delivered = m.counter("sim.packets_delivered")
            self._c_deadlocks = m.counter("sim.deadlocks")
            self._c_contention_stalls = m.counter("sim.contention_stalls")
            self._c_retransmissions = m.counter("sim.retransmissions")
            self._c_fault_kills = m.counter("sim.fault_kills")
            self._c_credit_stalls = m.counter("sim.credit_stalls")
            self._c_nic_wakeups = m.counter("sim.nic_wakeups")
            self._h_latency = m.histogram("sim.packet_latency_cycles")
            self._s_flits = m.series("sim.flits_in_network")
            self._s_active_routers = m.series("sim.active_routers")
            # Channel sampling order and metric names are fixed at
            # construction; the per-window loop only reads them.
            self._occ_channels: List[Tuple[ChannelId, str]] = [
                (cid, "sim.channel_occupancy." + ":".join(str(part) for part in cid))
                for cid in sorted(self.channels)
            ]

    # -- construction ---------------------------------------------------

    def _build_fabric(self, link_delays: Dict[int, int]) -> None:
        for s in self.network.switches:
            self.routers[s] = Router(s, self.config)
        for link in self.network.links:
            delay = max(1, link_delays.get(link.link_id, 1))
            fwd = Channel.build(
                ("link", link.link_id, 0), ("router", link.u), ("router", link.v), delay, self.config
            )
            bwd = Channel.build(
                ("link", link.link_id, 1), ("router", link.v), ("router", link.u), delay, self.config
            )
            self.channels[fwd.cid] = fwd
            self.channels[bwd.cid] = bwd
            self.routers[link.u].add_output(fwd.cid)
            self.routers[link.v].add_input(fwd.cid)
            self.routers[link.v].add_output(bwd.cid)
            self.routers[link.u].add_input(bwd.cid)
        for p in range(self.network.num_processors):
            s = self.network.switch_of(p)
            inj = Channel.build(("inj", p), ("nic", p), ("router", s), 1, self.config)
            ej = Channel.build(("ej", p), ("router", s), ("nic", p), 1, self.config)
            self.channels[inj.cid] = inj
            self.channels[ej.cid] = ej
            self.routers[s].add_input(inj.cid)
            self.routers[s].add_output(ej.cid)
            self.nics[p] = Nic(p, inj.cid)

    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        self._delivery_handler = handler

    def add_delivery_observer(self, observer: DeliveryHandler) -> None:
        """Register an extra per-delivery callback.

        The handler slot belongs to the process replay; observers let
        invariant tests watch deliveries without stealing it.
        """
        self._delivery_observers.append(observer)

    # -- packet submission ------------------------------------------------

    def submit(self, source: int, dest: int, size_bytes: int, inject_cycle: int, seq: int) -> int:
        """Queue a message for injection; returns the packet id."""
        packet = Packet(
            packet_id=self._next_packet_id,
            source=source,
            dest=dest,
            size_bytes=size_bytes,
            num_flits=self.config.flits_for(size_bytes),
            seq=seq,
            inject_cycle=inject_cycle,
        )
        self._next_packet_id += 1
        self.routing.prepare(packet, self.network)
        self._packets[packet.packet_id] = packet
        self.nics[source].enqueue(packet)
        self._events.push(inject_cycle, NIC_WAKE, source)
        return packet.packet_id

    # -- scheduling helpers ----------------------------------------------

    def _activate_nic(self, processor: int) -> None:
        """Move a NIC into the active set (idempotent)."""
        if processor not in self._active_nics:
            self._active_nics.add(processor)
            self.nic_wakeups += 1
            if self._obs_on:
                self._c_nic_wakeups.inc()

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest scheduled event, or ``None``.

        Covers flit/credit arrivals *and* NIC wake-ups.  A pending
        wake-up always corresponds to a still-queued packet (wakes fire
        at their inject cycle, and a packet cannot be dequeued before a
        visited cycle at or past its inject time), so this single peek
        subsumes the old ``min(next_heap_time(), next_inject_time(t))``
        idle-advance computation.
        """
        return self._events.peek_time()

    def next_heap_time(self) -> Optional[int]:
        """Alias of :meth:`next_event_time` (pre-event-queue name)."""
        return self._events.peek_time()

    def next_inject_time(self, after: int) -> Optional[int]:
        """Earliest queued inject time strictly greater than ``after``.

        Each NIC keeps its queued inject times sorted, so this is a
        binary search per NIC instead of a scan over every queued
        packet.  Idle-advance no longer needs it (queued inject times
        ride the event queue as NIC_WAKE events); kept for
        introspection and tests.
        """
        best: Optional[int] = None
        for nic in self.nics.values():
            t = nic.next_inject_after(after)
            if t is not None and (best is None or t < best):
                best = t
        return best

    def has_queued_packets(self) -> bool:
        return any(nic.queue or nic.streaming for nic in self.nics.values())

    def busy(self) -> bool:
        """Whether any traffic exists anywhere in the engine.

        A pending NIC_WAKE implies a queued packet, so counting wakes
        as "busy" matches the pre-event-queue answer exactly.
        """
        return bool(self._events) or self.flits_in_network > 0 or self.has_queued_packets()

    # -- faults -----------------------------------------------------------

    def _dead(self, cid: ChannelId, t: int) -> bool:
        """Whether channel ``cid`` is failed at cycle ``t``."""
        return self.faults is not None and self.faults.channel_dead(cid, t)

    def next_fault_transition(self, after: int) -> Optional[int]:
        """Earliest fault activation/recovery strictly after ``after``."""
        if self.faults is None:
            return None
        return self.faults.next_transition(after)

    def _cross_fault_transitions(self, t: int) -> None:
        """Wake the whole fabric when a fault activates or recovers, so
        blocked head flits re-arbitrate immediately."""
        transitions = self.faults.transitions
        idx = self._transition_idx
        if idx >= len(transitions) or transitions[idx] > t:
            return
        while idx < len(transitions) and transitions[idx] <= t:
            idx += 1
        self._transition_idx = idx
        self._active_routers.update(self.routers)
        # A recovered inject channel unblocks its sleeping NIC; a
        # failed one needs the NIC stepped once to notice and park.
        for p in self.nics:
            self._activate_nic(p)

    # -- the cycle --------------------------------------------------------

    def step(self, t: int) -> bool:
        """Simulate cycle ``t``; returns whether any flit moved."""
        if t >= self.cycles_simulated:
            self.cycles_simulated = t + 1
        if self._obs_on and t >= self._next_sample:
            self._sample_window(t)
        if self.faults is not None:
            self._cross_fault_transitions(t)
        moved = self._dispatch_events(t)
        moved |= self._step_routers(t)
        moved |= self._step_nics(t)
        if moved:
            self.last_progress = t
        elif self.flits_in_network > 0 and t - self.last_progress >= self.config.deadlock_threshold:
            self._recover_deadlock(t)
        return moved

    def _sample_window(self, t: int) -> None:
        """Record the per-window gauges (flits in flight, router
        activity, per-channel occupancy) at simulated cycle ``t``."""
        self._next_sample = t + self.obs.sample_every
        self._s_flits.append(t, self.flits_in_network)
        self._s_active_routers.append(t, len(self._active_routers))
        m = self.obs.metrics
        if m.enabled:
            channels = self.channels
            busy = self._channel_busy_cycles
            for cid, name in self._occ_channels:
                occupancy = channels[cid].busy_vcs()
                if occupancy or cid in busy:
                    m.series(name).append(t, occupancy)

    def _dispatch_events(self, t: int) -> bool:
        """Pop and handle every event due at or before cycle ``t``.

        Flit and credit deliveries must land exactly on their cycle (a
        past-due one means the driver skipped a scheduled cycle — a
        scheduling bug worth an immediate error).  NIC wake-ups are
        exempt from that skew check: a packet may legitimately be
        submitted with an inject cycle already in the past, and its
        wake then fires on the next visited cycle.
        """
        moved = False
        heap = self._events._heap
        push = self._events.push
        channels = self.channels
        while heap and heap[0][0] <= t:
            time, _, kind, payload = heapq.heappop(heap)
            if kind == NIC_WAKE:
                self._activate_nic(payload)
                continue
            if time < t:
                raise SimulationError(
                    f"engine time skew: event at {time} processed at {t}"
                )
            if kind == CREDIT:
                cid, vc = payload
                channel = channels[cid]
                channel.credits[vc] += 1
                src_kind, src_id = channel.src
                if src_kind == "router":
                    self._active_routers.add(src_id)
                else:
                    # An inject-channel credit: the source NIC may have
                    # been sleeping on exactly this back-pressure.
                    self._activate_nic(src_id)
            else:
                cid, vc, flit = payload
                channel = channels[cid]
                dst_kind, dst_id = channel.dst
                if (
                    self.faults is not None
                    and not flit.packet.killed
                    and self._dead(cid, t)
                ):
                    # The flit was in flight when the channel failed: it
                    # is lost.  Kill the packet so its remaining flits
                    # drain and the source retransmits — the same
                    # regressive-recovery path the deadlock detector
                    # uses.  (Credit signaling is assumed reliable.)
                    push(t + channel.delay, CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
                    self._fault_kill(flit.packet, t)
                elif dst_kind == "nic":
                    # NICs are infinite sinks: consume immediately.
                    push(t + channel.delay, CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
                    if flit.is_tail and not flit.packet.killed:
                        self._complete_delivery(flit.packet, t)
                elif flit.packet.killed:
                    # Drop killed flits on arrival, returning the credit.
                    push(t + channel.delay, CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
                else:
                    self.routers[dst_id].accept(cid, vc, flit, channel.buffer_depth)
                    self._active_routers.add(dst_id)
        return moved

    def _complete_delivery(self, packet: Packet, t: int) -> None:
        packet.delivered = True
        self.delivered_packets += 1
        self.packet_latencies.append(t - packet.inject_cycle)
        if self._obs_on:
            self._c_delivered.inc()
            self._h_latency.observe(t - packet.inject_cycle)
        if self._delivery_handler is not None:
            self._delivery_handler(packet.source, packet.dest, packet.seq, t)
        for observer in self._delivery_observers:
            observer(packet.source, packet.dest, packet.seq, t)

    def _assign_vc(self, ivc: InputVC, pid: int, out_cid: ChannelId, out_vc: int) -> None:
        """Record an input VC's output assignment, keeping the
        packet-indexed registry in step."""
        old = ivc.assignment
        if old is not None:
            entries = self._vc_assignments.get(old[0])
            if entries is not None:
                entries.pop(id(ivc), None)
                if not entries:
                    del self._vc_assignments[old[0]]
        ivc.assignment = (pid, out_cid, out_vc)
        self._vc_assignments.setdefault(pid, {})[id(ivc)] = ivc

    def _clear_assignment(self, ivc: InputVC) -> None:
        assignment = ivc.assignment
        if assignment is not None:
            entries = self._vc_assignments.get(assignment[0])
            if entries is not None:
                entries.pop(id(ivc), None)
                if not entries:
                    del self._vc_assignments[assignment[0]]
        ivc.assignment = None

    def _step_routers(self, t: int) -> bool:
        moved = False
        push = self._events.push
        channels = self.channels
        for sid in self._active_routers.ordered():
            router = self.routers[sid]
            active = router.active_vcs()
            if not active:
                # Nothing buffered: a no-op membership (typically a
                # credit returning to an already-drained router).  With
                # observability on, keep it — the sampled
                # ``sim.active_routers`` series counts exactly what the
                # pre-event-queue engine counted.  Without obs the
                # membership is unobservable, so drop it instead of
                # re-scanning an empty router every visited cycle.
                if not self._obs_on:
                    self._active_routers.discard(sid)
                continue
            # Phase 0: drop killed flits sitting at buffer fronts.
            dropped = False
            for cid, vc, ivc in active:
                while ivc.buffer and ivc.buffer[0].packet.killed:
                    ivc.buffer.popleft()
                    push(t + channels[cid].delay, CREDIT, (cid, vc))
                    self.flits_in_network -= 1
                    moved = True
                    dropped = True
            if dropped:
                active = [(cid, vc, ivc) for cid, vc, ivc in active if ivc.buffer]
            # Phase 1: route + VC allocation for new head flits.  Every
            # slot in ``active`` has a non-empty buffer here (phase 0
            # filtered the drained ones), so the front flit is read
            # directly.
            for cid, vc, ivc in active:
                front = ivc.buffer[0]
                if not front.is_head:
                    continue
                assignment = ivc.assignment
                if assignment is not None and assignment[0] == front.packet.packet_id:
                    continue
                candidates = self.routing.candidates(front.packet, sid)
                if self.faults is not None:
                    # Dead outputs are not allocatable; with no live
                    # candidate the head waits (recovery or timeout).
                    candidates = [c for c in candidates if not self._dead(c, t)]
                if len(candidates) > 1:
                    # Adaptive choice: prefer the least-congested output
                    # channel (fewest allocated VCs), ties in candidate
                    # order — deterministic congestion-aware TFAR.
                    candidates = sorted(
                        candidates,
                        key=lambda c: channels[c].busy_vcs(),
                    )
                for out_cid in candidates:
                    out_channel = channels[out_cid]
                    out_vc = out_channel.free_vc()
                    if out_vc is not None:
                        out_channel.owner[out_vc] = front.packet.packet_id
                        self._assign_vc(ivc, front.packet.packet_id, out_cid, out_vc)
                        break
                else:
                    if candidates:
                        # Live candidates exist but every VC is held by
                        # another packet: inter-packet contention.
                        self.contention_stalls += 1
                        if self._obs_on:
                            self._c_contention_stalls.inc()
            # Phase 2: switch allocation, one flit per output channel.
            flat: List[Tuple[ChannelId, int]] = []
            for idx, (cid, vc, ivc) in enumerate(active):
                assignment = ivc.assignment
                if assignment is None:
                    continue
                pid, out_cid, out_vc = assignment
                if pid != ivc.buffer[0].packet.packet_id:
                    continue
                if self.faults is not None and self._dead(out_cid, t):
                    continue  # channel failed after allocation: stall
                if channels[out_cid].credits[out_vc] > 0:
                    flat.append((out_cid, idx))
                elif self._obs_on:
                    # Allocated VC but no credit: back-pressure stall.
                    self._c_credit_stalls.inc()
            # Group by output channel only when more than one VC made a
            # request — the streaming common case is a single request,
            # where the dict build and key sort are pure overhead.
            if len(flat) == 1:
                groups = [(flat[0][0], [flat[0][1]])]
            elif flat:
                requests: Dict[ChannelId, List[int]] = {}
                for out_cid, idx in flat:
                    requests.setdefault(out_cid, []).append(idx)
                groups = [(out_cid, requests[out_cid]) for out_cid in sorted(requests)]
            else:
                groups = []
            for out_cid, reqs in groups:
                losers = len(reqs) - 1
                if losers:
                    # Distinct packets competing for one physical
                    # channel this cycle; all but the winner stall.
                    self.contention_stalls += losers
                    if self._obs_on:
                        self._c_contention_stalls.inc(losers)
                    winner_idx = router.arbitrate(out_cid, reqs)
                else:
                    # Sole requester: round-robin always grants it and
                    # parks the pointer just past it, exactly what
                    # ``arbitrate`` computes for a one-element list.
                    winner_idx = reqs[0]
                    router._rr[out_cid] = winner_idx + 1
                cid, vc, ivc = active[winner_idx]
                flit = ivc.buffer.popleft()
                _, _, out_vc = ivc.assignment
                out_channel = channels[out_cid]
                out_channel.credits[out_vc] -= 1
                push(t + out_channel.delay, FLIT, (out_cid, out_vc, flit))
                push(t + channels[cid].delay, CREDIT, (cid, vc))
                self._channel_busy_cycles[out_cid] = (
                    self._channel_busy_cycles.get(out_cid, 0) + 1
                )
                self.flit_hops += 1
                if self._obs_on:
                    self._c_flit_hops.inc()
                moved = True
                if flit.is_tail:
                    self._clear_assignment(ivc)
                    out_channel.owner[out_vc] = None
            # Emptiness check over the slots seen this cycle is enough:
            # a slot outside ``active`` was empty when the cycle's
            # arrivals were already in, and nothing below refills it.
            for slot in active:
                if slot[2].buffer:
                    break
            else:
                self._active_routers.discard(sid)
        return moved

    def _step_nics(self, t: int) -> bool:
        """Step every *active* NIC (event-driven injection).

        A NIC that cannot possibly make progress is parked out of the
        active set with a wake condition armed — a NIC_WAKE event for
        future inject times, the inject channel's credit return for
        back-pressure, a fault transition for a dead channel, an
        enqueue for an empty queue — so idle-heavy traces stop paying a
        full NIC sweep per cycle.  Decisions and ``moved`` are
        byte-identical to the always-sweep implementation: a parked NIC
        is exactly one that would have done nothing."""
        if not self._active_nics:
            return False
        moved = False
        push = self._events.push
        for p in sorted(self._active_nics):
            nic = self.nics[p]
            channel = self.channels[nic.inject_channel]
            if self.faults is not None and self._dead(nic.inject_channel, t):
                # Injection blocked while the channel is down; every
                # fault transition reactivates all NICs.
                self._active_nics.discard(p)
                continue
            if nic.streaming is None and nic.queue:
                pkt = nic.peek_eligible(t)
                if pkt is not None:
                    vc = channel.free_vc()
                    if vc is not None:
                        channel.owner[vc] = pkt.packet_id
                        nic.streaming = (pkt, vc)
                        nic.dequeue(pkt)
                else:
                    # Every queued packet injects in the future: sleep
                    # until the earliest (the queue is non-empty and
                    # all inject times exceed t, so one exists).
                    push(nic.next_inject_after(t), NIC_WAKE, p)
                    self._active_nics.discard(p)
                    continue
            if nic.streaming is not None:
                pkt, vc = nic.streaming
                if channel.credits[vc] > 0:
                    flit = Flit(pkt, pkt.flits_sent)
                    channel.credits[vc] -= 1
                    pkt.flits_sent += 1
                    push(t + channel.delay, FLIT, (nic.inject_channel, vc, flit))
                    self._channel_busy_cycles[nic.inject_channel] = (
                        self._channel_busy_cycles.get(nic.inject_channel, 0) + 1
                    )
                    self.flits_in_network += 1
                    if self._obs_on:
                        self._c_flits_injected.inc()
                    moved = True
                    if flit.is_tail:
                        nic.streaming = None
                        channel.owner[vc] = None
                elif self._obs_on:
                    # Streaming NIC blocked on the inject channel
                    # credit.  With observability on the NIC stays
                    # awake so the per-cycle stall accounting matches
                    # the always-sweep engine exactly.
                    self._c_credit_stalls.inc()
                else:
                    # Parked until the credit comes back (its delivery
                    # reactivates this NIC).
                    self._active_nics.discard(p)
            elif not nic.queue:
                # Fully idle; submit()/retransmit enqueues reactivate.
                self._active_nics.discard(p)
            # else: an eligible packet exists but no inject VC is free
            # (transiently possible only around kills); retry next cycle.
        return moved

    # -- regressive recovery ---------------------------------------------

    def _recover_deadlock(self, t: int) -> None:
        """Kill the youngest stuck packet and retransmit it (regressive
        recovery)."""
        stuck = [
            pkt
            for pkt in self._packets.values()
            if not pkt.killed and not pkt.delivered and self._has_presence(pkt)
        ]
        if not stuck:
            # Progress stalled with no killable packet: accounting bug.
            raise SimulationError(
                f"deadlock detected at cycle {t} but no packet is in flight"
            )
        victim = max(stuck, key=lambda pkt: (pkt.inject_cycle, pkt.packet_id))
        self.deadlocks_detected += 1
        if self._obs_on:
            self._c_deadlocks.inc()
            self.obs.tracer.event(
                "sim.deadlock",
                cycle=t,
                packet=victim.packet_id,
                source=victim.source,
                dest=victim.dest,
            )
        self._kill_packet(victim)
        self._retransmit(victim, t)
        self.last_progress = t

    def _fault_kill(self, packet: Packet, t: int) -> None:
        """Regressive recovery triggered by a fault instead of the
        timeout: a flit of ``packet`` was lost on a failing channel."""
        if packet.killed or packet.delivered:
            return
        self.fault_packet_kills += 1
        if self._obs_on:
            self._c_fault_kills.inc()
            self.obs.tracer.event(
                "sim.fault_kill",
                cycle=t,
                packet=packet.packet_id,
                source=packet.source,
                dest=packet.dest,
            )
        self._kill_packet(packet)
        self._retransmit(packet, t)

    def _kill_packet(self, victim: Packet) -> None:
        """Mark a packet killed and release every resource it holds; its
        flits in buffers/in flight drop via the killed flag."""
        victim.killed = True
        # The assignment registry maps the victim straight to the input
        # VCs it holds — no fabric-wide scan.
        for ivc in self._vc_assignments.pop(victim.packet_id, {}).values():
            assignment = ivc.assignment
            if assignment is None or assignment[0] != victim.packet_id:
                continue  # defensive; the registry is kept exact
            _, out_cid, out_vc = assignment
            self.channels[out_cid].owner[out_vc] = None
            ivc.assignment = None
        nic = self.nics[victim.source]
        held_vc = nic.abort_stream(victim.packet_id)
        if held_vc is not None:
            self.channels[nic.inject_channel].owner[held_vc] = None
        # Wake every router so killed flits drain promptly, and the
        # source NIC: aborting the stream may unblock a queued packet
        # before the retransmission's backoff expires.
        self._active_routers.update(self.routers)
        self._activate_nic(victim.source)

    def _retransmit(self, victim: Packet, t: int) -> None:
        """Re-inject a killed packet from its source after the backoff.

        The replacement gets a fresh id but keeps the (source, dest,
        seq) identity, and is re-prepared by the routing policy — so a
        repaired routing table re-routes retransmissions around
        permanent faults.
        """
        replacement = Packet(
            packet_id=self._next_packet_id,
            source=victim.source,
            dest=victim.dest,
            size_bytes=victim.size_bytes,
            num_flits=victim.num_flits,
            seq=victim.seq,
            inject_cycle=t + self.config.retransmit_backoff,
        )
        self._next_packet_id += 1
        self.routing.prepare(replacement, self.network)
        self._packets[replacement.packet_id] = replacement
        self.nics[victim.source].enqueue(replacement)
        self._events.push(replacement.inject_cycle, NIC_WAKE, victim.source)
        self.retransmissions += 1
        if self._obs_on:
            self._c_retransmissions.inc()
            self.obs.tracer.event(
                "sim.retransmit",
                cycle=t,
                packet=victim.packet_id,
                replacement=replacement.packet_id,
                inject_cycle=replacement.inject_cycle,
            )

    def _has_presence(self, pkt: Packet) -> bool:
        """Whether killing the packet could free network resources: it
        has sent at least one flit and its tail has not yet delivered."""
        return pkt.flits_sent > 0

    # -- stats ---------------------------------------------------------------

    def link_utilization(
        self, total_cycles: Optional[int] = None
    ) -> Dict[ChannelId, float]:
        """Busy fraction per channel.

        Defaults to normalizing over :attr:`cycles_simulated` — the
        window busy cycles actually accrue over, including the drain
        after the last process finishes — so every fraction is in
        [0, 1].  An explicit ``total_cycles`` overrides it.
        """
        if total_cycles is None:
            total_cycles = self.cycles_simulated
        if total_cycles <= 0:
            return {}
        return {
            cid: busy / total_cycles
            for cid, busy in sorted(self._channel_busy_cycles.items())
        }
