"""The simulator's global event queue.

One binary heap carries every scheduled occurrence in the engine —
flit arrivals, credit returns, and NIC wake-ups — keyed strictly on
``(time, insertion sequence)``.  The determinism rules (pinned by the
hypothesis property tests in ``tests/simulator/test_event_queue.py``
and documented in ``docs/SIMULATOR.md``):

* events pop in nondecreasing time order;
* events scheduled for the same time pop in insertion order — the
  sequence number is a single global counter, so the relative order of
  any two events is fixed at push time regardless of kind;
* a cancelled event never pops.

The event *kind* is deliberately not part of the sort key: the
pre-event-queue engine interleaved same-cycle flit and credit
deliveries purely by push order, and byte identity requires preserving
exactly that order.

Cancellation is tombstone-based: :meth:`cancel` marks the sequence
number and :meth:`pop`/:meth:`peek_time` discard marked entries
lazily.  Only pending events may be cancelled (cancelling an
already-popped sequence number would corrupt the length accounting).
The engine itself never cancels: a killed packet's in-flight flits
must still arrive and be dropped *at the receiver* so their buffer
credits return through the normal path — cancelling them in the queue
would leak credits.  The operation exists for schedulers layered on
top of the queue (and is property-tested so they can rely on it).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple

# Event kinds.  Values are engine-internal; the queue itself orders
# only on (time, seq) and treats the kind as payload.
FLIT = 0
CREDIT = 1
NIC_WAKE = 2

Event = Tuple[int, int, int, object]  # (time, seq, kind, payload)


class EventQueue:
    """Deterministic min-heap of ``(time, seq, kind, payload)`` events.

    Hot loops may read the raw :attr:`_heap`/:attr:`_cancelled`
    directly (the engine does) as long as they replicate the tombstone
    skip; everyone else should stick to the methods.
    """

    __slots__ = ("_heap", "_seq", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._cancelled: Set[int] = set()

    def push(self, time: int, kind: int, payload: object) -> int:
        """Schedule an event; returns its sequence number (the
        cancellation handle)."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, kind, payload))
        return seq

    def cancel(self, seq: int) -> None:
        """Tombstone a *pending* event so it never pops."""
        self._cancelled.add(seq)

    def _discard_cancelled(self) -> None:
        heap, cancelled = self._heap, self._cancelled
        while heap and heap[0][1] in cancelled:
            cancelled.discard(heapq.heappop(heap)[1])

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending event, or ``None``."""
        self._discard_cancelled()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest pending event, or ``None``."""
        self._discard_cancelled()
        return heapq.heappop(self._heap) if self._heap else None

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self._heap) > len(self._cancelled)
