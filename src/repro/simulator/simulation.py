"""Top-level trace-driven simulation (paper Section 4.2).

``simulate`` replays a program on a topology, choosing the routing
policy the paper uses for that network class: source routing for
generated (and crossbar) networks, dimension-order for meshes, true
fully-adaptive for tori.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import SimulationError
from repro.obs import Observability
from repro.simulator.config import SimConfig
from repro.simulator.engine import Engine
from repro.simulator.process import ProcessReplay
from repro.simulator.routing import AdaptiveMinimal, BoundSourceRouted, SimRouting
from repro.simulator.stats import SimulationResult
from repro.topology.builders import Topology
from repro.workloads.events import Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.state import FaultState


def routing_policy_for(topology: Topology) -> SimRouting:
    """The paper's routing policy for each topology class.

    Mesh: dimension-order (deterministic, realized as source routing of
    the DOR path).  Torus: true fully-adaptive minimal routing.
    Crossbar and generated networks: source routing.
    """
    if topology.kind == "torus":
        return AdaptiveMinimal(topology)
    return BoundSourceRouted(topology.routing, topology.network)


def simulate(
    program: Program,
    topology: Topology,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    routing: Optional[SimRouting] = None,
    fault_state: Optional["FaultState"] = None,
    obs: Optional[Observability] = None,
) -> SimulationResult:
    """Replay ``program`` on ``topology`` and collect statistics.

    Args:
        program: per-process event streams to replay.
        topology: the network to simulate.
        config: simulation parameters (defaults to the paper's).
        link_delays: optional cycles-per-link map (from the floorplan's
            link lengths); missing links default to one cycle.
        routing: override the routing policy (defaults to the paper's
            choice for the topology kind).
        fault_state: optional fault scenario to inject; pair it with a
            repaired routing (:mod:`repro.faults.repair`) so permanent
            faults are routed around rather than retried forever.
        obs: optional observability bundle; when enabled the engine
            records per-window gauges, stall counters, and
            deadlock/retransmission/fault events (see
            ``docs/OBSERVABILITY.md``).  Never changes results.

    Raises:
        SimulationError: on unmatched receives (the program blocks
            forever) or when ``config.max_cycles`` is exceeded.
    """
    config = config or SimConfig()
    engine = Engine(
        topology,
        routing or routing_policy_for(topology),
        config,
        link_delays=link_delays,
        fault_state=fault_state,
        obs=obs,
    )
    replay = ProcessReplay(program, engine, config)
    tracer = engine.obs.tracer

    with tracer.span(
        "simulate.run", program=program.name, topology=topology.name
    ):
        t = 0
        replay.run_ready()
        while not replay.all_done() or engine.busy():
            if t > config.max_cycles:
                raise SimulationError(
                    f"simulation exceeded {config.max_cycles} cycles "
                    f"({program.name} on {topology.name}); likely livelock"
                )
            moved = engine.step(t)
            if moved:
                replay.run_ready()
            if not moved:
                t = _advance(engine, replay, t)
            else:
                t += 1

    if engine.obs.enabled:
        m = engine.obs.metrics
        m.gauge("sim.execution_cycles").set(replay.execution_cycles())
        m.gauge("sim.cycles_simulated").set(engine.cycles_simulated)
    return SimulationResult(
        topology_name=topology.name,
        program_name=program.name,
        execution_cycles=replay.execution_cycles(),
        comm_cycles_per_process=tuple(replay.communication_cycles()),
        delivered_packets=engine.delivered_packets,
        deadlocks_detected=engine.deadlocks_detected,
        retransmissions=engine.retransmissions,
        fault_packet_kills=engine.fault_packet_kills,
        flit_hops=engine.flit_hops,
        # Normalized over the cycles the engine actually simulated
        # (including the post-completion drain), so a trailing-send
        # program cannot report a busy fraction above 1.0.
        link_utilization=engine.link_utilization(),
        config=config,
        packet_latencies=tuple(engine.packet_latencies),
    )


def _advance(engine: Engine, replay: ProcessReplay, t: int) -> int:
    """Pick the next cycle when nothing moved at ``t``.

    Jump to the earliest future event (flit/credit arrival or NIC
    wake-up).  If no event is pending but flits sit stalled in the
    network, jump straight to the deadlock-detection horizon.  If the
    engine is completely empty yet processes still block, the program
    has unmatched receives — a workload bug worth a precise error.
    """
    candidates = []
    # One peek covers flit/credit arrivals and queued inject times:
    # NIC wake-ups ride the same event queue.
    event_next = engine.next_event_time()
    if event_next is not None:
        candidates.append(event_next)
    fault_next = engine.next_fault_transition(t)
    if fault_next is not None and (engine.busy() or replay.anyone_blocked()):
        # A fault activating/recovering can unblock stalled traffic
        # (e.g. a NIC waiting out a transient injection-channel outage);
        # the deadlock horizon still competes, so a long outage kills
        # stalled packets instead of silently waiting out the fault.
        candidates.append(fault_next)
        if engine.flits_in_network > 0:
            candidates.append(
                max(t + 1, engine.last_progress + engine.config.deadlock_threshold)
            )
    if candidates:
        return max(t + 1, min(candidates))
    if engine.flits_in_network > 0:
        return max(t + 1, engine.last_progress + engine.config.deadlock_threshold)
    if replay.anyone_blocked():
        raise SimulationError(
            "simulation stuck with an idle network: " + replay.blocked_summary()
        )
    return t + 1
