"""Packets and flits.

A message is transported as a single wormhole packet: a header flit
carrying the routing information followed by payload flits and a tail
flit (for one-flit payloads the last payload flit is the tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

ChannelId = Tuple  # ("inj", p) | ("ej", p) | ("link", link_id, direction)


@dataclass
class Packet:
    """One in-flight message instance.

    Attributes:
        packet_id: unique per injection attempt (retransmissions get a
            fresh id).
        source: source processor.
        dest: destination processor.
        size_bytes: payload size.
        num_flits: header + payload flits.
        seq: per (source, dest) sequence number, used by receive
            matching so out-of-order arrivals cannot mis-match.
        inject_cycle: when the packet entered the NIC queue.
        route_hops: for source-routed networks, the ordered channel ids
            the packet must traverse after injection (inter-switch hops
            then the ejection channel).  ``None`` for per-hop adaptive
            routing.
        dest_switch: destination's switch, used by adaptive routing.
        killed: set by regressive deadlock recovery; all of the packet's
            flits drain and are discarded.
    """

    packet_id: int
    source: int
    dest: int
    size_bytes: int
    num_flits: int
    seq: int
    inject_cycle: int
    route_hops: Optional[Tuple[ChannelId, ...]] = None
    dest_switch: int = -1
    killed: bool = False
    delivered: bool = False
    flits_sent: int = 0

    @property
    def all_flits_sent(self) -> bool:
        return self.flits_sent >= self.num_flits


class Flit:
    """One flit of a packet.

    A plain slotted class, not a dataclass: flits are the simulator's
    highest-volume allocation, and the head/tail flags are precomputed
    at construction because the router and engine hot loops test them
    on every flit they touch.
    """

    __slots__ = ("packet", "index", "is_head", "is_tail")

    def __init__(self, packet: Packet, index: int) -> None:
        self.packet = packet
        self.index = index
        self.is_head = index == 0
        self.is_tail = index == packet.num_flits - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({self.packet.packet_id}:{self.index}{kind})"
