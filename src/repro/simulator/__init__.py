"""Trace-driven flit-level network simulator (the IRFlexSim substitute)."""

from repro.simulator.config import PAPER_CONFIG, SimConfig
from repro.simulator.engine import Engine
from repro.simulator.fabric import Channel, InputVC, Nic, Router
from repro.simulator.packet import Flit, Packet
from repro.simulator.process import ProcessReplay
from repro.simulator.routing import AdaptiveMinimal, BoundSourceRouted
from repro.simulator.simulation import routing_policy_for, simulate
from repro.simulator.stats import SimulationResult

__all__ = [
    "AdaptiveMinimal",
    "BoundSourceRouted",
    "Channel",
    "Engine",
    "Flit",
    "InputVC",
    "Nic",
    "PAPER_CONFIG",
    "Packet",
    "ProcessReplay",
    "Router",
    "SimConfig",
    "SimulationResult",
    "routing_policy_for",
    "simulate",
]
