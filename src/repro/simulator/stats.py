"""Simulation results and derived statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.simulator.config import SimConfig


def nearest_rank_percentile(values: Sequence[int], p: float) -> int:
    """Nearest-rank percentile of an integer multiset.

    ``p`` is in [0, 100]; returns 0 on an empty multiset.  This is the
    repo-wide percentile convention — :class:`SimulationResult` and the
    sweep subsystem's :class:`~repro.simulator.openloop.LoadPoint` both
    derive their p50/p95/p99 fields from it.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not values:
        return 0
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one trace-driven simulation.

    Attributes:
        topology_name: label of the simulated network.
        program_name: label of the replayed program.
        execution_cycles: completion time of the slowest process — the
            paper's "total execution time".
        comm_cycles_per_process: per-process communication time (send +
            receive overheads + receive waiting).
        delivered_packets: messages whose tail flit reached its NIC.
        deadlocks_detected: regressive-recovery activations.
        retransmissions: packets re-injected after being killed.
        fault_packet_kills: packets killed because a flit was lost on a
            failing channel (zero in fault-free runs).
        flit_hops: total flit-link traversals (network work).
        link_utilization: busy fraction per channel.
        config: the simulation configuration used.
    """

    topology_name: str
    program_name: str
    execution_cycles: int
    comm_cycles_per_process: Tuple[int, ...]
    delivered_packets: int
    deadlocks_detected: int
    retransmissions: int
    flit_hops: int
    link_utilization: Dict[tuple, float]
    config: SimConfig
    packet_latencies: Tuple[int, ...] = ()
    fault_packet_kills: int = 0

    @property
    def avg_comm_cycles(self) -> float:
        """Mean per-process communication time."""
        if not self.comm_cycles_per_process:
            return 0.0
        return sum(self.comm_cycles_per_process) / len(self.comm_cycles_per_process)

    @property
    def max_comm_cycles(self) -> int:
        return max(self.comm_cycles_per_process, default=0)

    @property
    def comm_fraction(self) -> float:
        """Average communication time over execution time."""
        if self.execution_cycles == 0:
            return 0.0
        return self.avg_comm_cycles / self.execution_cycles

    @property
    def execution_us(self) -> float:
        return self.config.cycles_to_us(self.execution_cycles)

    @property
    def avg_packet_latency(self) -> float:
        """Mean inject-to-delivery latency over delivered packets."""
        if not self.packet_latencies:
            return 0.0
        return sum(self.packet_latencies) / len(self.packet_latencies)

    @property
    def max_packet_latency(self) -> int:
        return max(self.packet_latencies, default=0)

    def latency_percentile(self, p: float) -> int:
        """Nearest-rank percentile of delivered-packet latency.

        ``p`` is in [0, 100]; returns 0 when nothing was delivered.
        """
        return nearest_rank_percentile(self.packet_latencies, p)

    @property
    def p50_packet_latency(self) -> int:
        """Median delivered-packet latency."""
        return self.latency_percentile(50)

    @property
    def p95_packet_latency(self) -> int:
        return self.latency_percentile(95)

    @property
    def p99_packet_latency(self) -> int:
        """Tail latency — the resilience report's degradation metric."""
        return self.latency_percentile(99)

    def summary(self) -> str:
        """One-line report used by examples and benches."""
        return (
            f"{self.program_name} on {self.topology_name}: "
            f"{self.execution_cycles} cycles "
            f"({self.execution_us:.1f} us), comm {self.avg_comm_cycles:.0f} cycles "
            f"({100 * self.comm_fraction:.0f}%), "
            f"{self.delivered_packets} messages, "
            f"{self.deadlocks_detected} deadlocks"
        )
