"""Trace-driven process replay.

Each processor replays its program — a sequence of compute, send and
receive events — against the simulated network.  Sends cost the LogP
send overhead on the process timeline and hand the message to the NIC;
receives block until the matching message's tail flit arrives, then
cost the receive overhead.  Matching is by per-(source, dest) sequence
number, so adaptive-routing reorder cannot mis-match messages.

Communication time per process (the paper's metric) accumulates send
overhead, receive overhead, and receive waiting time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.config import SimConfig
from repro.simulator.engine import Engine
from repro.workloads.events import ComputeEvent, Program, RecvEvent, SendEvent


@dataclass
class _ProcessState:
    index: int = 0
    ready_at: int = 0
    blocked_on: Optional[Tuple[int, int]] = None  # (source, seq)
    wait_start: int = 0
    done: bool = False
    comm_cycles: int = 0
    send_overhead_cycles: int = 0
    recv_overhead_cycles: int = 0
    wait_cycles: int = 0


class ProcessReplay:
    """Drives every process of a program against an engine."""

    def __init__(self, program: Program, engine: Engine, config: SimConfig) -> None:
        if program.num_processes != engine.network.num_processors:
            raise SimulationError(
                f"program has {program.num_processes} processes but the network "
                f"has {engine.network.num_processors} processors"
            )
        self.program = program
        self.engine = engine
        self.config = config
        self.states = [_ProcessState() for _ in range(program.num_processes)]
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._recv_seq: Dict[Tuple[int, int], int] = {}
        self._deliveries: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._blocked_index: Dict[Tuple[int, int, int], int] = {}  # (src, dst, seq) -> proc
        # Incremental scheduling: only processes that became runnable
        # since the last run_ready (initially: everyone) are swept, and
        # done/blocked bookkeeping is kept in counters so the per-step
        # status queries are O(1) instead of O(processes).
        self._runnable: List[int] = list(range(program.num_processes))
        self._unfinished = program.num_processes
        self._blocked_count = 0
        engine.set_delivery_handler(self._on_delivery)

    # -- delivery callback ------------------------------------------------

    def _on_delivery(self, src: int, dst: int, seq: int, cycle: int) -> None:
        self._deliveries.setdefault((src, dst), {})[seq] = cycle
        proc = self._blocked_index.pop((src, dst, seq), None)
        if proc is not None:
            state = self.states[proc]
            resume = max(state.wait_start, cycle)
            waited = resume - state.wait_start
            state.wait_cycles += waited
            state.comm_cycles += waited + self.config.recv_overhead
            state.recv_overhead_cycles += self.config.recv_overhead
            state.ready_at = resume + self.config.recv_overhead
            state.blocked_on = None
            self._blocked_count -= 1
            self._runnable.append(proc)

    # -- execution ----------------------------------------------------------

    def run_ready(self) -> None:
        """Advance every newly runnable process until it blocks or
        finishes.

        Processes can run ahead of network time: sends are stamped with
        their future inject cycles and receives consult recorded
        delivery times, so per-process virtual time stays correct.

        Only processes unblocked since the last call (tracked by the
        delivery callback) are swept, in ascending id — the same
        relative order as a full 0..n-1 sweep, and running a process
        cannot unblock another within the same call (deliveries only
        happen inside ``engine.step``), so packet submission order and
        therefore packet-id assignment are unchanged.
        """
        if not self._runnable:
            return
        batch = sorted(self._runnable)
        self._runnable = []
        for proc in batch:
            self._run_process(proc)

    def _run_process(self, proc: int) -> None:
        state = self.states[proc]
        if state.done or state.blocked_on is not None:
            return
        events = self.program.events[proc]
        while state.index < len(events):
            event = events[state.index]
            if isinstance(event, ComputeEvent):
                state.ready_at += event.cycles
                state.index += 1
            elif isinstance(event, SendEvent):
                state.ready_at += self.config.send_overhead
                state.comm_cycles += self.config.send_overhead
                state.send_overhead_cycles += self.config.send_overhead
                key = (proc, event.dest)
                seq = self._send_seq.get(key, 0)
                self._send_seq[key] = seq + 1
                self.engine.submit(
                    source=proc,
                    dest=event.dest,
                    size_bytes=event.size_bytes,
                    inject_cycle=state.ready_at,
                    seq=seq,
                )
                state.index += 1
            elif isinstance(event, RecvEvent):
                key = (event.source, proc)
                seq = self._recv_seq.get(key, 0)
                delivered = self._deliveries.get(key, {})
                if seq in delivered:
                    self._recv_seq[key] = seq + 1
                    cycle = delivered[seq]
                    waited = max(0, cycle - state.ready_at)
                    state.wait_cycles += waited
                    state.comm_cycles += waited + self.config.recv_overhead
                    state.recv_overhead_cycles += self.config.recv_overhead
                    state.ready_at = max(state.ready_at, cycle) + self.config.recv_overhead
                    state.index += 1
                else:
                    self._recv_seq[key] = seq + 1
                    state.blocked_on = (event.source, seq)
                    state.wait_start = state.ready_at
                    self._blocked_index[(event.source, proc, seq)] = proc
                    state.index += 1
                    self._blocked_count += 1
                    return
            else:  # pragma: no cover - event union is closed
                raise SimulationError(f"unknown event type {event!r}")
        state.done = True
        self._unfinished -= 1

    # -- status -----------------------------------------------------------

    def all_done(self) -> bool:
        # A process counts as unfinished until _run_process marks it
        # done — including the window where its last blocking receive
        # has been satisfied but the process has not been re-run yet —
        # which is exactly what the full `done and not blocked` scan
        # over every state answered.
        return self._unfinished == 0

    def anyone_blocked(self) -> bool:
        return self._blocked_count > 0

    def blocked_summary(self) -> str:
        lines = []
        for proc, s in enumerate(self.states):
            if s.blocked_on is not None:
                src, seq = s.blocked_on
                lines.append(f"process {proc} waits for message #{seq} from {src}")
        return "; ".join(lines)

    def execution_cycles(self) -> int:
        return max(s.ready_at for s in self.states)

    def communication_cycles(self) -> List[int]:
        return [s.comm_cycles for s in self.states]
