"""Trace-driven process replay.

Each processor replays its program — a sequence of compute, send and
receive events — against the simulated network.  Sends cost the LogP
send overhead on the process timeline and hand the message to the NIC;
receives block until the matching message's tail flit arrives, then
cost the receive overhead.  Matching is by per-(source, dest) sequence
number, so adaptive-routing reorder cannot mis-match messages.

Communication time per process (the paper's metric) accumulates send
overhead, receive overhead, and receive waiting time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.config import SimConfig
from repro.simulator.engine import Engine
from repro.workloads.events import ComputeEvent, Program, RecvEvent, SendEvent


@dataclass
class _ProcessState:
    index: int = 0
    ready_at: int = 0
    blocked_on: Optional[Tuple[int, int]] = None  # (source, seq)
    wait_start: int = 0
    done: bool = False
    comm_cycles: int = 0
    send_overhead_cycles: int = 0
    recv_overhead_cycles: int = 0
    wait_cycles: int = 0


class ProcessReplay:
    """Drives every process of a program against an engine."""

    def __init__(self, program: Program, engine: Engine, config: SimConfig) -> None:
        if program.num_processes != engine.network.num_processors:
            raise SimulationError(
                f"program has {program.num_processes} processes but the network "
                f"has {engine.network.num_processors} processors"
            )
        self.program = program
        self.engine = engine
        self.config = config
        self.states = [_ProcessState() for _ in range(program.num_processes)]
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._recv_seq: Dict[Tuple[int, int], int] = {}
        self._deliveries: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._blocked_index: Dict[Tuple[int, int, int], int] = {}  # (src, dst, seq) -> proc
        engine.set_delivery_handler(self._on_delivery)

    # -- delivery callback ------------------------------------------------

    def _on_delivery(self, src: int, dst: int, seq: int, cycle: int) -> None:
        self._deliveries.setdefault((src, dst), {})[seq] = cycle
        proc = self._blocked_index.pop((src, dst, seq), None)
        if proc is not None:
            state = self.states[proc]
            resume = max(state.wait_start, cycle)
            waited = resume - state.wait_start
            state.wait_cycles += waited
            state.comm_cycles += waited + self.config.recv_overhead
            state.recv_overhead_cycles += self.config.recv_overhead
            state.ready_at = resume + self.config.recv_overhead
            state.blocked_on = None

    # -- execution ----------------------------------------------------------

    def run_ready(self) -> None:
        """Advance every unblocked process until it blocks or finishes.

        Processes can run ahead of network time: sends are stamped with
        their future inject cycles and receives consult recorded
        delivery times, so per-process virtual time stays correct.
        """
        for proc in range(self.program.num_processes):
            self._run_process(proc)

    def _run_process(self, proc: int) -> None:
        state = self.states[proc]
        if state.done or state.blocked_on is not None:
            return
        events = self.program.events[proc]
        while state.index < len(events):
            event = events[state.index]
            if isinstance(event, ComputeEvent):
                state.ready_at += event.cycles
                state.index += 1
            elif isinstance(event, SendEvent):
                state.ready_at += self.config.send_overhead
                state.comm_cycles += self.config.send_overhead
                state.send_overhead_cycles += self.config.send_overhead
                key = (proc, event.dest)
                seq = self._send_seq.get(key, 0)
                self._send_seq[key] = seq + 1
                self.engine.submit(
                    source=proc,
                    dest=event.dest,
                    size_bytes=event.size_bytes,
                    inject_cycle=state.ready_at,
                    seq=seq,
                )
                state.index += 1
            elif isinstance(event, RecvEvent):
                key = (event.source, proc)
                seq = self._recv_seq.get(key, 0)
                delivered = self._deliveries.get(key, {})
                if seq in delivered:
                    self._recv_seq[key] = seq + 1
                    cycle = delivered[seq]
                    waited = max(0, cycle - state.ready_at)
                    state.wait_cycles += waited
                    state.comm_cycles += waited + self.config.recv_overhead
                    state.recv_overhead_cycles += self.config.recv_overhead
                    state.ready_at = max(state.ready_at, cycle) + self.config.recv_overhead
                    state.index += 1
                else:
                    self._recv_seq[key] = seq + 1
                    state.blocked_on = (event.source, seq)
                    state.wait_start = state.ready_at
                    self._blocked_index[(event.source, proc, seq)] = proc
                    state.index += 1
                    return
            else:  # pragma: no cover - event union is closed
                raise SimulationError(f"unknown event type {event!r}")
        state.done = True

    # -- status -----------------------------------------------------------

    def all_done(self) -> bool:
        return all(s.done and s.blocked_on is None for s in self.states)

    def anyone_blocked(self) -> bool:
        return any(s.blocked_on is not None for s in self.states)

    def blocked_summary(self) -> str:
        lines = []
        for proc, s in enumerate(self.states):
            if s.blocked_on is not None:
                src, seq = s.blocked_on
                lines.append(f"process {proc} waits for message #{seq} from {src}")
        return "; ".join(lines)

    def execution_cycles(self) -> int:
        return max(s.ready_at for s in self.states)

    def communication_cycles(self) -> List[int]:
        return [s.comm_cycles for s in self.states]
