"""Open-loop synthetic traffic evaluation.

Trace-driven replay (the paper's method) measures one application; the
classic complement is open-loop injection — every node injects packets
at a configurable rate toward destinations drawn from a synthetic
pattern, and the network's latency-vs-offered-load curve locates its
saturation point.  Useful here to quantify the trade-off the
methodology makes: a generated network is provisioned for its target
application's permutations, so under *uniform* random traffic it
saturates earlier than the mesh whose resources it undercuts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.obs import Observability
from repro.simulator.config import SimConfig
from repro.simulator.engine import Engine
from repro.simulator.routing import SimRouting
from repro.simulator.simulation import routing_policy_for
from repro.simulator.stats import nearest_rank_percentile

# The synthetic pattern suite lives in repro.sweeps.patterns (one
# extensible registry shared with the sweep driver); re-exported here
# for backward compatibility.  ``PATTERNS`` now covers the full
# canonical suite — including the factory-registered hotspot — and
# ``resolve_pattern`` parses parameterized specs like "hotspot:3:0.8".
from repro.sweeps.patterns import (  # noqa: F401 - re-exports
    PATTERNS,
    DestinationPattern,
    bit_complement_pattern,
    bit_reverse_pattern,
    bit_rotation_pattern,
    hotspot_pattern,
    neighbor_pattern,
    resolve_pattern,
    shuffle_pattern,
    tornado_pattern,
    transpose_pattern,
    uniform_random,
)
from repro.topology.builders import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.state import FaultState

# Bounded retries when a pattern returns the source: enough that any
# pattern with a non-vanishing chance of another node virtually always
# resolves, small enough that a degenerate all-self pattern stays cheap.
_RESAMPLE_BOUND = 16


@dataclass(frozen=True)
class LoadPoint:
    """One point of a latency/throughput curve.

    Attributes:
        offered_flits_per_node_cycle: injection rate requested.
        accepted_flits_per_node_cycle: delivered payload rate measured
            over the measurement window.
        avg_latency: mean inject-to-delivery latency of packets injected
            during the window.
        delivered: packets delivered in the window.
        saturated: the network could not absorb the offered load (its
            backlog kept growing).
        p50_latency / p95_latency / p99_latency: nearest-rank latency
            percentiles over the same delivered-packet multiset as
            ``avg_latency`` (0 when nothing was delivered) — tail
            behavior at the knee, which the mean hides.
    """

    offered_flits_per_node_cycle: float
    accepted_flits_per_node_cycle: float
    avg_latency: float
    delivered: int
    saturated: bool
    p50_latency: int = 0
    p95_latency: int = 0
    p99_latency: int = 0


def run_open_loop(
    topology: Topology,
    injection_rate: float,
    pattern: DestinationPattern = uniform_random,
    packet_bytes: int = 32,
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
    drain_cycles: int = 2000,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    routing: Optional[SimRouting] = None,
    seed: int = 0,
    fault_state: Optional["FaultState"] = None,
    obs: Optional[Observability] = None,
) -> LoadPoint:
    """Measure one offered-load point.

    ``injection_rate`` is in flits per node per cycle; a packet is
    injected whenever a node's flit debt reaches a packet's worth
    (deterministic, seeded destination choice).  Patterns that return
    the source are resampled (bounded), per the module contract, so the
    offered load is not silently lost on self-destined draws.

    Every node's flit debt replays the identical float-op sequence
    (same start, same rate, same packet size), so the per-node
    per-cycle debt loop collapses into one shared crossing schedule
    computed up front by exact scalar replay, and the driver jumps
    across idle gaps between crossings/events the same way the
    trace-driven loop does.  The one thing that can desynchronize the
    nodes is a *degenerate* draw — a pattern exhausting the resample
    bound keeps that node's debt — at which point the driver falls back
    to the exact per-cycle loop with every node's debt reconstructed
    bit-for-bit.  ``LoadPoint`` results are byte-identical to the
    always-step implementation either way (observability sampling, which
    follows visited cycles, is the only thing that can tell the
    difference).
    """
    if injection_rate <= 0:
        raise SimulationError(f"injection rate must be positive, got {injection_rate}")
    config = config or SimConfig()
    engine = Engine(
        topology,
        routing or routing_policy_for(topology),
        config,
        link_delays,
        fault_state=fault_state,
        obs=obs,
    )
    rng = random.Random(seed)
    n = topology.network.num_processors
    flits_per_packet = config.flits_for(packet_bytes)

    inject_times: Dict[Tuple[int, int, int], int] = {}
    latencies: List[int] = []
    delivered_in_window = 0

    def on_delivery(src: int, dst: int, seq_: int, cycle: int) -> None:
        nonlocal delivered_in_window
        t0 = inject_times.pop((src, dst, seq_), None)
        if t0 is not None and t0 >= warmup_cycles:
            latencies.append(cycle - t0)
            delivered_in_window += 1

    engine.set_delivery_handler(on_delivery)
    seqs: Dict[Tuple[int, int], int] = {}
    horizon = warmup_cycles + measure_cycles

    # Shared debt-crossing schedule: the exact scalar replay of one
    # node's debt.  ``debt_before``/``debt_after`` snapshot the running
    # value around the crossing cycle's increment so the degenerate
    # fallback can reconstruct every node's float state bit-for-bit
    # (re-deriving them arithmetically would not round identically).
    crossings: List[tuple] = []  # (cycle, debt_before, debt_after)
    d = 0.0
    for ct in range(horizon):
        before = d
        d = before + injection_rate
        if d >= flits_per_packet:
            crossings.append((ct, before, d))
            d -= flits_per_packet

    def draw(node: int) -> int:
        dest = pattern(node, n, rng)
        for _ in range(_RESAMPLE_BOUND):
            if dest != node:
                break
            dest = pattern(node, n, rng)
        return dest

    def submit(node: int, dest: int, cycle: int) -> None:
        key = (node, dest)
        seq = seqs.get(key, 0)
        seqs[key] = seq + 1
        engine.submit(
            source=node,
            dest=dest,
            size_bytes=packet_bytes,
            inject_cycle=cycle,
            seq=seq,
        )
        inject_times[(node, dest, seq)] = cycle

    def run_exact(t_start: int, node_start: int, debt: List[float]) -> None:
        """Per-cycle injection loop from ``(t_start, node_start)`` to the
        horizon — the degenerate-pattern path, where nodes no longer
        share one debt value."""
        node_from = node_start
        for tx in range(t_start, horizon):
            for node in range(node_from, n):
                debt[node] += injection_rate
                if debt[node] >= flits_per_packet:
                    dest = draw(node)
                    if dest == node:
                        # Degenerate draw: keep the flit debt so the
                        # offered load is carried forward, not silently
                        # dropped.
                        continue
                    debt[node] -= flits_per_packet
                    submit(node, dest, tx)
            node_from = 0
            engine.step(tx)

    t = 0
    ci = 0  # next crossing index
    while t < horizon:
        if ci < len(crossings) and t == crossings[ci][0]:
            _, before, after = crossings[ci]
            ci += 1
            degenerate = None
            for node in range(n):
                dest = draw(node)
                if dest == node:
                    degenerate = node
                    break
                submit(node, dest, t)
            if degenerate is not None:
                # Nodes before the degenerate one injected (debt paid),
                # the degenerate node keeps its incremented debt, and
                # later nodes have not seen this cycle's increment yet.
                k = degenerate
                debt = (
                    [after - flits_per_packet] * k
                    + [after]
                    + [before] * (n - k - 1)
                )
                run_exact(t, k + 1, debt)
                break
        if engine.step(t):
            t += 1
            continue
        # Nothing moved: jump to the next cycle anything can happen —
        # a scheduled event, the next injection round, a fault
        # transition that may unblock stalled traffic, or the deadlock
        # detection horizon for flits stalled in buffers.
        candidates = []
        event_next = engine.next_event_time()
        if event_next is not None:
            candidates.append(event_next)
        if ci < len(crossings):
            candidates.append(crossings[ci][0])
        fault_next = engine.next_fault_transition(t)
        if fault_next is not None and engine.busy():
            candidates.append(fault_next)
        if engine.flits_in_network > 0:
            candidates.append(
                max(t + 1, engine.last_progress + engine.config.deadlock_threshold)
            )
        if not candidates:
            break  # empty network, no injections left before the horizon
        t = max(t + 1, min(candidates))

    # Drain without new injections, bounded: a saturated network never
    # fully drains its backlog in time.
    t = max(t, horizon)
    bound = horizon + drain_cycles
    while engine.busy() and t < bound:
        if engine.step(t):
            t += 1
            continue
        candidates = []
        event_next = engine.next_event_time()
        if event_next is not None:
            candidates.append(event_next)
        fault_next = engine.next_fault_transition(t)
        if fault_next is not None:
            candidates.append(fault_next)
        if engine.flits_in_network > 0:
            candidates.append(
                max(t + 1, engine.last_progress + engine.config.deadlock_threshold)
            )
        t = max(t + 1, min(candidates)) if candidates else t + 1
    saturated = engine.busy()

    payload_flits = flits_per_packet - 1
    accepted = delivered_in_window * payload_flits / (measure_cycles * n)
    return LoadPoint(
        offered_flits_per_node_cycle=injection_rate,
        accepted_flits_per_node_cycle=accepted,
        avg_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        delivered=delivered_in_window,
        saturated=saturated,
        p50_latency=nearest_rank_percentile(latencies, 50),
        p95_latency=nearest_rank_percentile(latencies, 95),
        p99_latency=nearest_rank_percentile(latencies, 99),
    )


def latency_throughput_curve(
    topology: Topology,
    rates: Sequence[float],
    pattern: DestinationPattern = uniform_random,
    **kwargs,
) -> List[LoadPoint]:
    """Sweep offered loads; stops early once the network saturates."""
    points = []
    for rate in rates:
        point = run_open_loop(topology, rate, pattern=pattern, **kwargs)
        points.append(point)
        if point.saturated:
            break
    return points


def saturation_throughput(points: Sequence[LoadPoint]) -> float:
    """Highest accepted rate over a measured curve."""
    return max((p.accepted_flits_per_node_cycle for p in points), default=0.0)
