"""Open-loop synthetic traffic evaluation.

Trace-driven replay (the paper's method) measures one application; the
classic complement is open-loop injection — every node injects packets
at a configurable rate toward destinations drawn from a synthetic
pattern, and the network's latency-vs-offered-load curve locates its
saturation point.  Useful here to quantify the trade-off the
methodology makes: a generated network is provisioned for its target
application's permutations, so under *uniform* random traffic it
saturates earlier than the mesh whose resources it undercuts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.obs import Observability
from repro.simulator.config import SimConfig
from repro.simulator.engine import Engine
from repro.simulator.routing import SimRouting
from repro.simulator.simulation import routing_policy_for

# The synthetic pattern suite lives in repro.sweeps.patterns (one
# extensible registry shared with the sweep driver); re-exported here
# for backward compatibility.  ``PATTERNS`` now covers the full
# canonical suite — including the factory-registered hotspot — and
# ``resolve_pattern`` parses parameterized specs like "hotspot:3:0.8".
from repro.sweeps.patterns import (  # noqa: F401 - re-exports
    PATTERNS,
    DestinationPattern,
    bit_complement_pattern,
    bit_reverse_pattern,
    bit_rotation_pattern,
    hotspot_pattern,
    neighbor_pattern,
    resolve_pattern,
    shuffle_pattern,
    tornado_pattern,
    transpose_pattern,
    uniform_random,
)
from repro.topology.builders import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.state import FaultState

# Bounded retries when a pattern returns the source: enough that any
# pattern with a non-vanishing chance of another node virtually always
# resolves, small enough that a degenerate all-self pattern stays cheap.
_RESAMPLE_BOUND = 16


@dataclass(frozen=True)
class LoadPoint:
    """One point of a latency/throughput curve.

    Attributes:
        offered_flits_per_node_cycle: injection rate requested.
        accepted_flits_per_node_cycle: delivered payload rate measured
            over the measurement window.
        avg_latency: mean inject-to-delivery latency of packets injected
            during the window.
        delivered: packets delivered in the window.
        saturated: the network could not absorb the offered load (its
            backlog kept growing).
    """

    offered_flits_per_node_cycle: float
    accepted_flits_per_node_cycle: float
    avg_latency: float
    delivered: int
    saturated: bool


def run_open_loop(
    topology: Topology,
    injection_rate: float,
    pattern: DestinationPattern = uniform_random,
    packet_bytes: int = 32,
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
    drain_cycles: int = 2000,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    routing: Optional[SimRouting] = None,
    seed: int = 0,
    fault_state: Optional["FaultState"] = None,
    obs: Optional[Observability] = None,
) -> LoadPoint:
    """Measure one offered-load point.

    ``injection_rate`` is in flits per node per cycle; a packet is
    injected whenever a node's flit debt reaches a packet's worth
    (deterministic, seeded destination choice).  Patterns that return
    the source are resampled (bounded), per the module contract, so the
    offered load is not silently lost on self-destined draws.
    """
    if injection_rate <= 0:
        raise SimulationError(f"injection rate must be positive, got {injection_rate}")
    config = config or SimConfig()
    engine = Engine(
        topology,
        routing or routing_policy_for(topology),
        config,
        link_delays,
        fault_state=fault_state,
        obs=obs,
    )
    rng = random.Random(seed)
    n = topology.network.num_processors
    flits_per_packet = config.flits_for(packet_bytes)

    inject_times: Dict[int, int] = {}
    latencies: List[int] = []
    delivered_in_window = 0

    def on_delivery(src: int, dst: int, seq_: int, cycle: int) -> None:
        nonlocal delivered_in_window
        t0 = inject_times.pop((src, dst, seq_), None)
        if t0 is not None and t0 >= warmup_cycles:
            latencies.append(cycle - t0)
            delivered_in_window += 1

    engine.set_delivery_handler(on_delivery)
    seqs: Dict[tuple, int] = {}
    debt = [0.0] * n
    horizon = warmup_cycles + measure_cycles

    for t in range(horizon):
        for node in range(n):
            debt[node] += injection_rate
            if debt[node] >= flits_per_packet:
                dest = pattern(node, n, rng)
                for _ in range(_RESAMPLE_BOUND):
                    if dest != node:
                        break
                    dest = pattern(node, n, rng)
                if dest == node:
                    # Degenerate pattern (only ever returns the source):
                    # keep the flit debt so the offered load is carried
                    # forward, not silently dropped.
                    continue
                debt[node] -= flits_per_packet
                key = (node, dest)
                seq = seqs.get(key, 0)
                seqs[key] = seq + 1
                engine.submit(
                    source=node,
                    dest=dest,
                    size_bytes=packet_bytes,
                    inject_cycle=t,
                    seq=seq,
                )
                inject_times[(node, dest, seq)] = t
        engine.step(t)

    # Drain without new injections, bounded: a saturated network never
    # fully drains its backlog in time.
    t = horizon
    while engine.busy() and t < horizon + drain_cycles:
        engine.step(t)
        t += 1
    saturated = engine.busy()

    payload_flits = flits_per_packet - 1
    accepted = delivered_in_window * payload_flits / (measure_cycles * n)
    return LoadPoint(
        offered_flits_per_node_cycle=injection_rate,
        accepted_flits_per_node_cycle=accepted,
        avg_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        delivered=delivered_in_window,
        saturated=saturated,
    )


def latency_throughput_curve(
    topology: Topology,
    rates: Sequence[float],
    pattern: DestinationPattern = uniform_random,
    **kwargs,
) -> List[LoadPoint]:
    """Sweep offered loads; stops early once the network saturates."""
    points = []
    for rate in rates:
        point = run_open_loop(topology, rate, pattern=pattern, **kwargs)
        points.append(point)
        if point.saturated:
            break
    return points


def saturation_throughput(points: Sequence[LoadPoint]) -> float:
    """Highest accepted rate over a measured curve."""
    return max((p.accepted_flits_per_node_cycle for p in points), default=0.0)
