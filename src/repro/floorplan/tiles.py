"""Tile/corner geometry of the floorplan model (paper Section 4.1).

The chip is a grid of processor tiles (à la MIT RAW).  Each tile
reserves space at one corner for its switch; tiles may be rotated so
that up to four tiles point their reserved corners into one shared
region, letting several processors share a switch.  Geometrically:

* tiles are unit cells ``(i, j)`` with ``0 <= i < width``,
  ``0 <= j < height``;
* switches sit on corner lattice points ``(x, y)`` with
  ``0 <= x <= width``, ``0 <= y <= height``;
* a processor's tile must touch its switch's corner (the four cells
  around the corner), which also caps a switch at four processors;
* a link's area is the Manhattan distance between its endpoints'
  corners in tile units — co-located corners (shared region) cost 0,
  mesh-neighbour corners cost 1, like the paper's Figure 6 examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import FloorplanError

Cell = Tuple[int, int]
Corner = Tuple[int, int]


@dataclass(frozen=True)
class TileGrid:
    """A ``width x height`` grid of processor tiles."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise FloorplanError(f"bad tile grid {self.width}x{self.height}")

    @property
    def num_cells(self) -> int:
        return self.width * self.height

    def cells(self) -> List[Cell]:
        return [(i, j) for j in range(self.height) for i in range(self.width)]

    def corners(self) -> List[Corner]:
        return [
            (x, y) for y in range(self.height + 1) for x in range(self.width + 1)
        ]

    def cell_corners(self, cell: Cell) -> FrozenSet[Corner]:
        """The four lattice corners a tile touches."""
        i, j = cell
        if not (0 <= i < self.width and 0 <= j < self.height):
            raise FloorplanError(f"cell {cell} outside the {self.width}x{self.height} grid")
        return frozenset({(i, j), (i + 1, j), (i, j + 1), (i + 1, j + 1)})

    def corner_cells(self, corner: Corner) -> FrozenSet[Cell]:
        """The up-to-four tiles touching a corner."""
        x, y = corner
        cells = []
        for i in (x - 1, x):
            for j in (y - 1, y):
                if 0 <= i < self.width and 0 <= j < self.height:
                    cells.append((i, j))
        return frozenset(cells)

    def touches(self, cell: Cell, corner: Corner) -> bool:
        return corner in self.cell_corners(cell)


def manhattan(a: Corner, b: Corner) -> int:
    """Link area between two switch corners, in tile units."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
