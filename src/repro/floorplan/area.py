"""Switch/link area accounting (paper Section 4.1, Figure 7).

Every switch has five ports and consumes one unit of area regardless of
topology; a link consumes area equal to the number of tiles it crosses
(its endpoints' Manhattan corner distance).  Results are normalized to
the mesh of the same size.  The torus needs the same switch area as the
mesh and double the link area (the paper states this directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.floorplan.place import Floorplan, place
from repro.topology.builders import Topology, grid_dims, mesh_for
from repro.topology.network import Network

# One 5-port switch = one area unit; a link crossing one tile = one unit.
SWITCH_AREA_UNIT = 1.0
LINK_AREA_UNIT = 1.0

# Paper statement: torus = mesh switch area, 2x mesh link area.
TORUS_LINK_FACTOR = 2.0


@dataclass(frozen=True)
class AreaReport:
    """Absolute and mesh-normalized area of one placed network."""

    name: str
    num_switches: int
    switch_area: float
    link_area: float
    mesh_switch_area: float
    mesh_link_area: float
    floorplan: Optional[Floorplan]

    @property
    def switch_ratio(self) -> float:
        """Switch area relative to the mesh (1.0 = same as mesh)."""
        return self.switch_area / self.mesh_switch_area

    @property
    def link_ratio(self) -> float:
        """Link area relative to the mesh."""
        return self.link_area / self.mesh_link_area

    @property
    def total_ratio(self) -> float:
        """Combined area relative to the mesh."""
        return (self.switch_area + self.link_area) / (
            self.mesh_switch_area + self.mesh_link_area
        )


def mesh_areas(num_processors: int) -> tuple:
    """(switch area, link area) of the reference mesh."""
    mesh_top = mesh_for(num_processors)
    return (
        SWITCH_AREA_UNIT * mesh_top.network.num_switches,
        LINK_AREA_UNIT * mesh_top.network.num_links,
    )


def measure_area(
    topology: Topology,
    seed: int = 0,
    floorplan: Optional[Floorplan] = None,
) -> AreaReport:
    """Area of a topology, floorplanning it if needed.

    Mesh and torus use their analytic areas (every link crosses one
    tile; torus wraparounds double the link total); other topologies
    are placed by the annealing floorplanner and measured.
    """
    net = topology.network
    mesh_switch, mesh_link = mesh_areas(net.num_processors)
    if topology.kind == "mesh":
        return AreaReport(
            name=topology.name,
            num_switches=net.num_switches,
            switch_area=mesh_switch,
            link_area=mesh_link,
            mesh_switch_area=mesh_switch,
            mesh_link_area=mesh_link,
            floorplan=None,
        )
    if topology.kind == "torus":
        return AreaReport(
            name=topology.name,
            num_switches=net.num_switches,
            switch_area=mesh_switch,
            link_area=mesh_link * TORUS_LINK_FACTOR,
            mesh_switch_area=mesh_switch,
            mesh_link_area=mesh_link,
            floorplan=None,
        )
    plan = floorplan if floorplan is not None else place(net, seed=seed)
    return AreaReport(
        name=topology.name,
        num_switches=net.num_switches,
        switch_area=SWITCH_AREA_UNIT * net.num_switches,
        link_area=LINK_AREA_UNIT * plan.total_link_area,
        mesh_switch_area=mesh_switch,
        mesh_link_area=mesh_link,
        floorplan=plan,
    )
