"""Tile floorplanning and the switch/link area model (paper Section 4.1)."""

from repro.floorplan.area import (
    AreaReport,
    LINK_AREA_UNIT,
    SWITCH_AREA_UNIT,
    TORUS_LINK_FACTOR,
    measure_area,
    mesh_areas,
)
from repro.floorplan.place import Floorplan, place
from repro.floorplan.tiles import Cell, Corner, TileGrid, manhattan

__all__ = [
    "AreaReport",
    "Cell",
    "Corner",
    "Floorplan",
    "LINK_AREA_UNIT",
    "SWITCH_AREA_UNIT",
    "TORUS_LINK_FACTOR",
    "TileGrid",
    "manhattan",
    "measure_area",
    "mesh_areas",
    "place",
]
