"""Simulated-annealing switch/tile placement.

Jointly assigns switches to corner lattice points and processors to
tiles (each tile touching its switch's corner), minimizing total link
area.  Infeasible intermediate states are allowed during the search and
priced with a large penalty; the returned floorplan reports whether the
final state is feasible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FloorplanError
from repro.floorplan.tiles import Cell, Corner, TileGrid, manhattan
from repro.obs import DISABLED, Observability
from repro.synthesis.annealing import AnnealSchedule, SimulatedAnnealing
from repro.topology.network import Network

# Each adjacency violation costs more than any single link could save.
_PENALTY = 1000.0

# Independent annealing restarts per placement call.
_RESTARTS = 8


@dataclass(frozen=True)
class Floorplan:
    """A placed network.

    Attributes:
        grid: the tile grid.
        switch_corner: switch id -> corner lattice point.
        processor_cell: processor id -> tile cell.
        link_costs: link id -> Manhattan tile distance of its endpoints.
        feasible: every processor's tile touches its switch's corner and
            no tile is shared.
    """

    grid: TileGrid
    switch_corner: Dict[int, Corner]
    processor_cell: Dict[int, Cell]
    link_costs: Dict[int, int]
    feasible: bool

    @property
    def total_link_area(self) -> int:
        return sum(self.link_costs.values())

    def link_delays(self) -> Dict[int, int]:
        """Per-link cycle delays for the simulator (minimum one clock)."""
        return {lid: max(1, cost) for lid, cost in self.link_costs.items()}

    def render(self) -> str:
        """ASCII sketch of the floorplan, Figure 6 style.

        Tiles are drawn as a grid of processor ids; switch corner
        positions are listed below (corner lattice coordinates), since
        several switches can share a corner region.
        """
        width = max(3, max((len(str(p)) for p in self.processor_cell), default=1) + 1)
        by_cell = {cell: proc for proc, cell in self.processor_cell.items()}
        lines = []
        for j in range(self.grid.height - 1, -1, -1):
            row = []
            for i in range(self.grid.width):
                proc = by_cell.get((i, j))
                row.append((f"P{proc}" if proc is not None else ".").rjust(width))
            lines.append(" ".join(row))
        lines.append("")
        for s in sorted(self.switch_corner):
            x, y = self.switch_corner[s]
            lines.append(f"S{s} at corner ({x},{y})")
        return "\n".join(lines)


@dataclass
class _Placement:
    switch_corner: Dict[int, Corner]
    processor_cell: Dict[int, Cell]


def _violations(net: Network, grid: TileGrid, p: _Placement) -> int:
    count = 0
    for proc in range(net.num_processors):
        corner = p.switch_corner[net.switch_of(proc)]
        if not grid.touches(p.processor_cell[proc], corner):
            count += 1
    return count


def _link_area(net: Network, p: _Placement) -> int:
    return sum(
        manhattan(p.switch_corner[link.u], p.switch_corner[link.v])
        for link in net.links
    )


def place(
    network: Network,
    grid: Optional[TileGrid] = None,
    seed: int = 0,
    schedule: Optional[AnnealSchedule] = None,
    obs: Optional[Observability] = None,
) -> Floorplan:
    """Place a network on a tile grid, minimizing link area.

    Raises :class:`FloorplanError` when the grid cannot hold the
    processors; returns a (possibly infeasible) best-effort floorplan
    otherwise — callers should check :attr:`Floorplan.feasible`.
    """
    network.validate()
    obs = obs if obs is not None else DISABLED
    if grid is None:
        grid = _default_grid(network.num_processors)
    if grid.num_cells < network.num_processors:
        raise FloorplanError(
            f"{grid.width}x{grid.height} grid cannot hold "
            f"{network.num_processors} processors"
        )
    def energy(p: _Placement) -> float:
        return _link_area(network, p) + _PENALTY * _violations(network, grid, p)

    def neighbor(p: _Placement, move_rng: random.Random) -> _Placement:
        q = _Placement(dict(p.switch_corner), dict(p.processor_cell))
        roll = move_rng.random()
        if roll < 0.35:
            # Cluster move: relocate a switch together with its
            # processors onto the tiles around a new corner, swapping
            # cells with the displaced occupants.
            s = move_rng.choice(sorted(q.switch_corner))
            _move_cluster(network, grid, q, s, move_rng.choice(grid.corners()), move_rng)
        elif roll < 0.6:
            s = move_rng.choice(sorted(q.switch_corner))
            q.switch_corner[s] = move_rng.choice(grid.corners())
        elif roll < 0.9 and network.num_processors >= 2:
            a, b = move_rng.sample(range(network.num_processors), 2)
            q.processor_cell[a], q.processor_cell[b] = (
                q.processor_cell[b],
                q.processor_cell[a],
            )
        else:
            proc = move_rng.randrange(network.num_processors)
            used = set(q.processor_cell.values())
            free = [c for c in grid.cells() if c not in used]
            if free:
                q.processor_cell[proc] = move_rng.choice(free)
        return q

    sched = schedule or AnnealSchedule(
        initial_temperature=8.0, cooling=0.96, steps=5000
    )
    best: Optional[_Placement] = None
    best_key = None
    for restart in range(_RESTARTS):
        rng = random.Random(seed * _RESTARTS + restart)
        initial = _initial_placement(network, grid, rng)
        sa = SimulatedAnnealing(
            energy,
            neighbor,
            sched,
            seed=seed * _RESTARTS + restart,
            obs=obs,
            label="floorplan.anneal",
        )
        with obs.tracer.span("floorplan.restart", restart=restart):
            candidate, _ = sa.run(initial)
        if _violations(network, grid, candidate) > 0:
            # Local repair only when the annealer left violations; a
            # feasible placement must not be perturbed.
            _repair(network, grid, candidate)
        key = (
            _violations(network, grid, candidate),
            _link_area(network, candidate),
        )
        if best_key is None or key < best_key:
            best, best_key = candidate, key
    assert best is not None  # _RESTARTS >= 1
    if obs.metrics.enabled:
        obs.metrics.gauge("floorplan.link_area").set(_link_area(network, best))
        obs.metrics.gauge("floorplan.violations").set(
            _violations(network, grid, best)
        )
    link_costs = {
        link.link_id: manhattan(
            best.switch_corner[link.u], best.switch_corner[link.v]
        )
        for link in network.links
    }
    return Floorplan(
        grid=grid,
        switch_corner=dict(best.switch_corner),
        processor_cell=dict(best.processor_cell),
        link_costs=link_costs,
        feasible=_violations(network, grid, best) == 0,
    )


def _move_cluster(
    net: Network,
    grid: TileGrid,
    p: _Placement,
    switch: int,
    corner: Corner,
    rng: random.Random,
) -> None:
    """Relocate a switch and its processors around ``corner``, swapping
    cells with the current occupants."""
    p.switch_corner[switch] = corner
    target_cells = sorted(grid.corner_cells(corner))
    rng.shuffle(target_cells)
    cell_owner = {cell: proc for proc, cell in p.processor_cell.items()}
    for proc, target in zip(sorted(net.processors_of(switch)), target_cells):
        old_cell = p.processor_cell[proc]
        if old_cell == target:
            continue
        other = cell_owner.get(target)
        p.processor_cell[proc] = target
        cell_owner[target] = proc
        if other is not None and other != proc:
            p.processor_cell[other] = old_cell
            cell_owner[old_cell] = other
        else:
            del cell_owner[old_cell]


def _default_grid(num_processors: int) -> TileGrid:
    from repro.topology.builders import grid_dims

    w, h = grid_dims(num_processors)
    return TileGrid(width=w, height=h)


def _initial_placement(net: Network, grid: TileGrid, rng: random.Random) -> _Placement:
    """Cluster-aware start: place each switch's processors around it."""
    cells = grid.cells()
    rng.shuffle(cells)
    proc_cell: Dict[int, Cell] = {}
    switch_corner: Dict[int, Corner] = {}
    free = list(cells)
    for s in net.switches:
        procs = sorted(net.processors_of(s))
        if not procs:
            switch_corner[s] = rng.choice(grid.corners())
            continue
        anchor = free[0] if free else rng.choice(grid.cells())
        corner = (anchor[0] + 1 if anchor[0] + 1 <= grid.width else anchor[0], anchor[1] + 1 if anchor[1] + 1 <= grid.height else anchor[1])
        switch_corner[s] = corner
        nearby = sorted(free, key=lambda c: manhattan((c[0], c[1]), corner))
        for proc, cell in zip(procs, nearby):
            proc_cell[proc] = cell
            free.remove(cell)
    # Any processor still unplaced (more procs than nearby cells) takes
    # whatever is left.
    for proc in range(net.num_processors):
        if proc not in proc_cell:
            proc_cell[proc] = free.pop()
    return _Placement(switch_corner=switch_corner, processor_cell=proc_cell)


def _repair(net: Network, grid: TileGrid, p: _Placement) -> None:
    """Greedy post-pass: move each switch to the corner minimizing its
    violations, then swap offending processors toward their switches."""
    for s in net.switches:
        procs = sorted(net.processors_of(s))
        if not procs:
            continue
        best_corner = p.switch_corner[s]
        best_score = None
        for corner in grid.corners():
            touching = sum(
                1 for proc in procs if grid.touches(p.processor_cell[proc], corner)
            )
            dist = sum(
                manhattan(
                    corner,
                    (
                        p.processor_cell[proc][0],
                        p.processor_cell[proc][1],
                    ),
                )
                for proc in procs
            )
            score = (-touching, dist)
            if best_score is None or score < best_score:
                best_score = score
                best_corner = corner
        p.switch_corner[s] = best_corner
