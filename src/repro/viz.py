"""ASCII visualization helpers.

Everything here renders to plain text so the library stays
dependency-free: pattern timelines in the style of the paper's
Figure 1, adjacency matrices for networks, and link-utilization tables
for simulation results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.model.cliques import contention_periods
from repro.model.pattern import CommunicationPattern
from repro.simulator.stats import SimulationResult
from repro.topology.network import Network


def render_pattern_timeline(
    pattern: CommunicationPattern, width: int = 60, max_rows: int = 40
) -> str:
    """A Figure 1-style timeline: one row per message, bars over time.

    Rows beyond ``max_rows`` are summarized (pattern timelines of real
    applications can run to thousands of messages).
    """
    if not pattern.messages:
        return "(empty pattern)"
    t_lo, t_hi = pattern.time_span
    span = max(t_hi - t_lo, 1e-9)

    def col(t: float) -> int:
        return min(width - 1, int((t - t_lo) / span * (width - 1)))

    msgs = pattern.sorted_by_start()
    lines = [f"pattern {pattern.name}: {len(msgs)} messages over [{t_lo:g}, {t_hi:g}]"]
    for m in msgs[:max_rows]:
        lo, hi = col(m.t_start), col(m.t_finish)
        bar = " " * lo + "#" * max(1, hi - lo + 1)
        lines.append(f"{str(m.communication):>9} |{bar.ljust(width)}|")
    if len(msgs) > max_rows:
        lines.append(f"... {len(msgs) - max_rows} more messages")
    periods = contention_periods(pattern)
    lines.append(f"{len(periods)} contention periods")
    return "\n".join(lines)


def render_adjacency_matrix(network: Network) -> str:
    """Switch adjacency matrix; cells hold parallel-link counts."""
    switches = network.switches
    head = "     " + " ".join(f"S{s:<3}" for s in switches)
    lines = [head]
    for u in switches:
        row = []
        for v in switches:
            if u == v:
                row.append("  . ")
            else:
                n = len(network.links_between(u, v))
                row.append(f"{n:>3} " if n else "  - ")
        procs = ",".join(str(p) for p in sorted(network.processors_of(u)))
        lines.append(f"S{u:<3} " + "".join(row) + f"  [{procs}]")
    return "\n".join(lines)


def render_link_utilization(
    result: SimulationResult, top: int = 10
) -> str:
    """The hottest channels of a finished simulation."""
    items = sorted(
        result.link_utilization.items(), key=lambda kv: kv[1], reverse=True
    )[:top]
    if not items:
        return "(no traffic)"
    lines = [f"hottest channels of {result.program_name} on {result.topology_name}:"]
    for cid, util in items:
        bar = "#" * int(util * 40)
        lines.append(f"  {str(cid):>18} {100 * util:5.1f}% |{bar}")
    return "\n".join(lines)


def render_comm_matrix(pattern: CommunicationPattern) -> str:
    """Source x destination traffic matrix (message counts)."""
    n = pattern.num_processes
    counts: Dict[tuple, int] = {}
    for m in pattern.messages:
        counts[(m.source, m.dest)] = counts.get((m.source, m.dest), 0) + 1
    head = "     " + " ".join(f"{d:>3}" for d in range(n))
    lines = [head]
    for s in range(n):
        row = " ".join(
            f"{counts.get((s, d), 0) or '.':>3}" for d in range(n)
        )
        lines.append(f"{s:>3}  {row}")
    return "\n".join(lines)
