"""Automated saturation sweeps with adaptive knee refinement.

:func:`run_sweep` walks offered injection rates over one
(topology, pattern) pair: an initial evenly spaced grid is measured
first (fanned out through the cached parallel eval runner —
:class:`repro.eval.parallel.OpenLoopCell` — so repeats hit the
content-addressed cache byte-identically), then the knee is located by
bisecting the bracket between the last unsaturated and first saturated
rate.  Every rate is rounded to :data:`RATE_DECIMALS` decimals so the
bisection grid, and therefore every cache key, is reproducible across
runs and machines.

Saturation criteria (any one marks a point saturated):

* **backlog** — the engine could not drain the offered load within the
  drain window (:attr:`LoadPoint.saturated`);
* **throughput plateau** — accepted falls below
  ``plateau_fraction x offered``;
* **latency slope** — the criterion latency exceeds
  ``latency_factor x`` the latency of the lowest-rate point (skipped
  when the reference point delivered nothing).  Which latency feeds the
  slope is the sweep's *criterion*: ``mean-knee`` (the default) knees on
  the average latency, ``p99-knee`` on the p99 tail — tail latency
  degrades before the mean near the knee, so ``p99-knee`` reports the
  saturation point a latency-SLO would observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.eval.parallel import (
    OpenLoopCell,
    ProgressCallback,
    ResultCache,
    run_cells,
)
from repro.eval.serialize import loadpoint_from_dict
from repro.obs import DISABLED, Observability
from repro.simulator.config import SimConfig
from repro.simulator.openloop import LoadPoint
from repro.sweeps.patterns import canonical_spec, resolve_pattern
from repro.sweeps.report import SaturationCurve, SweepResult
from repro.topology.builders import Topology, crossbar, mesh_for, torus_for
from repro.topology.routing import ShortestPathRouting

#: Rates are rounded to this many decimals so bisection midpoints (and
#: the cache keys derived from them) are byte-stable.
RATE_DECIMALS = 6

#: Saturation criteria: which latency the slope test knees on.
CRITERIA = ("mean-knee", "p99-knee")


def criterion_latency(point: LoadPoint, criterion: str) -> float:
    """The latency of one point under a saturation criterion."""
    if criterion == "p99-knee":
        return float(point.p99_latency)
    return point.avg_latency


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one automated sweep.

    ``initial_points`` rates are spaced evenly over
    ``[min_rate, max_rate]``; ``refine_iters`` bisection steps then
    tighten the knee bracket.  Cycle windows are deliberately shorter
    than :func:`~repro.simulator.openloop.run_open_loop`'s defaults —
    a sweep multiplies them by dozens of cells.
    """

    min_rate: float = 0.05
    max_rate: float = 1.0
    initial_points: int = 6
    refine_iters: int = 4
    latency_factor: float = 4.0
    plateau_fraction: float = 0.85
    packet_bytes: int = 32
    warmup_cycles: int = 300
    measure_cycles: int = 1500
    drain_cycles: int = 1500
    seed: int = 0
    criterion: str = "mean-knee"

    def __post_init__(self) -> None:
        if self.criterion not in CRITERIA:
            raise SimulationError(
                f"unknown saturation criterion {self.criterion!r}; "
                f"choose from {CRITERIA}"
            )
        if not 0 < self.min_rate <= self.max_rate:
            raise SimulationError(
                f"need 0 < min_rate <= max_rate, got "
                f"{self.min_rate}..{self.max_rate}"
            )
        if self.initial_points < 1:
            raise SimulationError(
                f"initial_points must be positive, got {self.initial_points}"
            )
        if self.refine_iters < 0:
            raise SimulationError(
                f"refine_iters must be non-negative, got {self.refine_iters}"
            )
        if self.latency_factor <= 1.0:
            raise SimulationError(
                f"latency_factor must exceed 1, got {self.latency_factor}"
            )
        if not 0.0 < self.plateau_fraction <= 1.0:
            raise SimulationError(
                f"plateau_fraction must be in (0, 1], got {self.plateau_fraction}"
            )

    def params_dict(self) -> Dict[str, object]:
        """The artifact's ``params`` section."""
        return {
            "min_rate": self.min_rate,
            "max_rate": self.max_rate,
            "initial_points": self.initial_points,
            "refine_iters": self.refine_iters,
            "latency_factor": self.latency_factor,
            "plateau_fraction": self.plateau_fraction,
            "packet_bytes": self.packet_bytes,
            "warmup_cycles": self.warmup_cycles,
            "measure_cycles": self.measure_cycles,
            "drain_cycles": self.drain_cycles,
            "criterion": self.criterion,
        }


def point_is_saturated(
    point: LoadPoint,
    base_latency: Optional[float],
    latency_factor: float = 4.0,
    plateau_fraction: float = 0.85,
    payload_fraction: float = 1.0,
    criterion: str = "mean-knee",
) -> bool:
    """Whether one measured point meets any saturation criterion.

    ``payload_fraction`` corrects the plateau criterion for header
    overhead: offered load counts every flit, but accepted throughput
    counts payload flits only, so even an unloaded network accepts at
    most ``payload_fraction x offered``.  ``criterion`` picks the
    latency the slope test reads (``base_latency`` must come from the
    same criterion — :func:`latency_reference` takes care of that).
    """
    if point.saturated:
        return True
    if (
        point.accepted_flits_per_node_cycle
        < plateau_fraction * payload_fraction * point.offered_flits_per_node_cycle
    ):
        return True
    if base_latency is not None and base_latency > 0:
        return criterion_latency(point, criterion) > latency_factor * base_latency
    return False


def latency_reference(
    points: Sequence[LoadPoint],
    plateau_fraction: float = 0.85,
    payload_fraction: float = 1.0,
    criterion: str = "mean-knee",
) -> Optional[float]:
    """Latency baseline for the slope criterion: the criterion latency
    of the lowest-rate measured point that delivered traffic and is not
    itself saturated by the backlog or plateau criteria.

    ``None`` when no such point exists (every measured point is already
    backlogged or below the plateau threshold) — the latency criterion
    is then skipped, which is safe because those points saturate through
    the other criteria anyway.
    """
    for point in points:
        if point.delivered > 0 and not point_is_saturated(
            point,
            base_latency=None,
            plateau_fraction=plateau_fraction,
            payload_fraction=payload_fraction,
        ):
            return criterion_latency(point, criterion)
    return None


def detect_saturation(
    points: Sequence[LoadPoint],
    latency_factor: float = 4.0,
    plateau_fraction: float = 0.85,
    payload_fraction: float = 1.0,
    criterion: str = "mean-knee",
) -> Optional[int]:
    """Index of the first saturated point of a rate-sorted curve.

    Returns ``None`` for an empty curve or one that never saturates
    (e.g. a monotone curve on a non-blocking network).  The latency
    reference is the lowest *unsaturated* measured point
    (:func:`latency_reference`), so bisection refinements probing below
    a saturated lowest grid point classify against the same baseline as
    this final pass.  The reference point itself can never trip the
    slope criterion (``latency_factor > 1``).  Points are classified
    independently, so one noisy dip above the plateau threshold near
    the knee does not flag saturation early.
    """
    if not points:
        return None
    base = latency_reference(points, plateau_fraction, payload_fraction, criterion)
    for i, point in enumerate(points):
        if point_is_saturated(
            point,
            base_latency=base,
            latency_factor=latency_factor,
            plateau_fraction=plateau_fraction,
            payload_fraction=payload_fraction,
            criterion=criterion,
        ):
            return i
    return None


def _round_rate(rate: float) -> float:
    return round(rate, RATE_DECIMALS)


def _initial_rates(sweep: SweepConfig) -> List[float]:
    if sweep.initial_points == 1:
        return [_round_rate(sweep.max_rate)]
    step = (sweep.max_rate - sweep.min_rate) / (sweep.initial_points - 1)
    rates = [
        _round_rate(sweep.min_rate + i * step) for i in range(sweep.initial_points)
    ]
    return sorted(set(rates))


def _make_cell(
    label: str,
    topology: Topology,
    spec: str,
    rate: float,
    sweep: SweepConfig,
    config: SimConfig,
    link_delays: Optional[Dict[int, int]],
) -> OpenLoopCell:
    return OpenLoopCell(
        label=f"{label}/{spec}@{rate:g}",
        topology=topology,
        pattern=spec,
        injection_rate=rate,
        config=config,
        packet_bytes=sweep.packet_bytes,
        warmup_cycles=sweep.warmup_cycles,
        measure_cycles=sweep.measure_cycles,
        drain_cycles=sweep.drain_cycles,
        link_delays=link_delays,
        seed=sweep.seed,
    )


def run_sweep(
    topology: Topology,
    pattern: str,
    sweep: Optional[SweepConfig] = None,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Observability] = None,
    label: Optional[str] = None,
    strict_patterns: bool = False,
    premeasured: Optional[Dict[float, LoadPoint]] = None,
) -> SaturationCurve:
    """Sweep offered load to saturation on one (topology, pattern) pair.

    The initial grid fans out over ``jobs`` workers; bisection steps are
    inherently sequential but still run through the cache, so a re-run
    of an identical sweep is free end to end and byte-identical
    (serial == parallel == cache-hit).

    ``premeasured`` seeds the sweep with already-measured load points
    keyed by (rounded) offered rate — :func:`run_sweep_suite` uses it to
    fan the whole grid's initial rates through one batched
    :func:`~repro.eval.parallel.run_cells` call and hand each pair its
    slice, so only the bisection refinements still run here.  Points
    must come from cells built with identical parameters, or the curve
    will mix measurements (the suite guarantees this by construction).
    """
    sweep = sweep or SweepConfig()
    config = config or SimConfig()
    obs = obs if obs is not None else DISABLED
    spec = canonical_spec(pattern)
    # Validate spec, size requirements, and routing-awareness up front,
    # in the coordinator, so a bad sweep fails before any cell runs.
    resolve_pattern(spec, topology=topology, strict=strict_patterns)
    label = label or topology.name
    flits = config.flits_for(sweep.packet_bytes)
    payload_fraction = (flits - 1) / flits

    with obs.tracer.span(
        "sweep.run", topology=label, pattern=spec, nodes=topology.network.num_processors
    ):
        measured: Dict[float, LoadPoint] = dict(premeasured or {})

        def measure(rates: Sequence[float]) -> None:
            todo = [rate for rate in rates if rate not in measured]
            if not todo:
                return
            cells = [
                _make_cell(label, topology, spec, rate, sweep, config, link_delays)
                for rate in todo
            ]
            outcomes = run_cells(
                cells, jobs=jobs, cache=cache, progress=progress, obs=obs
            )
            obs.metrics.counter("sweep.cells").inc(len(outcomes))
            for rate, outcome in zip(todo, outcomes):
                measured[rate] = loadpoint_from_dict(outcome.payload)

        measure(_initial_rates(sweep))

        def sorted_points() -> List[LoadPoint]:
            return [measured[r] for r in sorted(measured)]

        points = sorted_points()
        first = detect_saturation(
            points,
            sweep.latency_factor,
            sweep.plateau_fraction,
            payload_fraction,
            sweep.criterion,
        )
        saturation_rate: Optional[float] = None
        if first is not None:
            rates = sorted(measured)
            hi = rates[first]
            # When even the lowest rate saturates, bisect down toward a
            # quarter of it rather than toward zero (rates must stay
            # positive).
            lo = rates[first - 1] if first > 0 else _round_rate(rates[0] / 4)
            for _ in range(sweep.refine_iters):
                mid = _round_rate((lo + hi) / 2)
                if mid <= lo or mid >= hi or mid in measured:
                    break
                measure([mid])
                obs.metrics.counter("sweep.refine_steps").inc()
                # Recompute the latency baseline from the lowest
                # unsaturated point measured so far: when the lowest
                # grid point itself saturates, down-bisection probes
                # below it, and classifying those probes against the
                # saturated point's (inflated) latency would disagree
                # with the final detect_saturation pass, which sees the
                # new probe as the curve's lowest point.
                base = latency_reference(
                    sorted_points(),
                    sweep.plateau_fraction,
                    payload_fraction,
                    sweep.criterion,
                )
                if point_is_saturated(
                    measured[mid],
                    base,
                    sweep.latency_factor,
                    sweep.plateau_fraction,
                    payload_fraction,
                    sweep.criterion,
                ):
                    hi = mid
                else:
                    lo = mid
            saturation_rate = _round_rate((lo + hi) / 2)
            obs.metrics.gauge("sweep.saturation_rate").set(saturation_rate)

        points = sorted_points()
        first = detect_saturation(
            points,
            sweep.latency_factor,
            sweep.plateau_fraction,
            payload_fraction,
            sweep.criterion,
        )
        unsaturated = points if first is None else points[:first]
        pool = unsaturated if unsaturated else points
        saturation_throughput = max(
            (p.accepted_flits_per_node_cycle for p in pool), default=0.0
        )

        return SaturationCurve(
            topology_name=label,
            pattern=spec,
            num_nodes=topology.network.num_processors,
            seed=sweep.seed,
            points=tuple(points),
            saturation_rate=saturation_rate,
            saturation_throughput=saturation_throughput,
            saturated=first is not None,
            params=sweep.params_dict(),
        )


def run_sweep_suite(
    topologies: Sequence[Tuple[str, Topology, Optional[Dict[int, int]]]],
    patterns: Sequence[str],
    sweep: Optional[SweepConfig] = None,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Observability] = None,
    label: str = "sweep-suite",
    strict_patterns: bool = False,
) -> SweepResult:
    """Sweep every pattern over every ``(label, topology, link_delays)``.

    The *entire* grid's initial rate points — every (topology, pattern)
    pair times every initial rate — fan out through **one**
    :func:`~repro.eval.parallel.run_cells` call, so a worker pool sees
    the whole suite at once instead of one pair's handful of cells
    between barriers (per-pair sweeps stall the pool on each pair's
    slowest cell; the batch keeps every worker busy until the grid is
    done).  Bisection refinements then run per pair, in-process,
    against the already-measured initial points (and the shared result
    cache, when one is given).  Curves are byte-identical to running
    :func:`run_sweep` per pair — same cells, same rounding, same
    detection — which the determinism suite pins.
    """
    sweep = sweep or SweepConfig()
    config = config or SimConfig()
    obs = obs if obs is not None else DISABLED
    rates = _initial_rates(sweep)
    # Canonicalize and validate every pair up front, in the
    # coordinator, so a bad spec fails before any cell runs.
    pairs = []
    for top_label, topology, link_delays in topologies:
        for pattern in patterns:
            spec = canonical_spec(pattern)
            resolve_pattern(spec, topology=topology, strict=strict_patterns)
            pairs.append((top_label, topology, link_delays, spec))

    cells = [
        _make_cell(top_label, topology, spec, rate, sweep, config, link_delays)
        for top_label, topology, link_delays, spec in pairs
        for rate in rates
    ]
    outcomes = run_cells(cells, jobs=jobs, cache=cache, progress=progress, obs=obs)
    obs.metrics.counter("sweep.cells").inc(len(outcomes))

    curves = []
    for i, (top_label, topology, link_delays, spec) in enumerate(pairs):
        pair_outcomes = outcomes[i * len(rates) : (i + 1) * len(rates)]
        premeasured = {
            rate: loadpoint_from_dict(outcome.payload)
            for rate, outcome in zip(rates, pair_outcomes)
        }
        curve = run_sweep(
            topology,
            spec,
            sweep=sweep,
            config=config,
            link_delays=link_delays,
            # Refinements measure one cell at a time; a worker pool
            # would add pure spawn overhead, and serial == parallel
            # byte identity makes the in-process path equivalent.
            jobs=None,
            cache=cache,
            progress=progress,
            obs=obs,
            label=top_label,
            strict_patterns=strict_patterns,
            premeasured=premeasured,
        )
        curves.append((top_label, curve.pattern, curve))
    return SweepResult(label=label, curves=tuple(curves))


# ---------------------------------------------------------------------------
# Study topologies
# ---------------------------------------------------------------------------


def spare_link_variant(topology: Topology, name: Optional[str] = None) -> Topology:
    """A copy of ``topology`` with one spare link added per switch.

    Each switch (ascending id) gains one link to its nearest
    non-neighbour switch (BFS distance over the current switch graph,
    ties toward the lowest id); switches already linked to every other
    switch are skipped.  Routing is rebuilt as deterministic BFS
    shortest-path so the spares are actually used — the question this
    variant answers is how much robustness one extra port per switch
    buys back on off-design traffic.  Note the torus's adaptive
    routing would be replaced by the same deterministic policy.
    """
    net = topology.network.copy()
    for s in net.switches:
        others = [t for t in net.switches if t != s and not net.links_between(s, t)]
        if not others:
            continue
        dist = _bfs_distances(net, s)
        target = min(others, key=lambda t: (dist.get(t, float("inf")), t))
        net.add_link(s, target)
    return Topology(
        name=name or f"{topology.name}+spare",
        network=net,
        routing=ShortestPathRouting(net),
        coords=topology.coords,
        kind=f"{topology.kind}-spare",
        grid_shape=topology.grid_shape,
    )


def _bfs_distances(net, start: int) -> Dict[int, int]:
    dist = {start: 0}
    frontier = [start]
    while frontier:
        nxt: List[int] = []
        for s in frontier:
            for t in net.neighbors(s):
                if t not in dist:
                    dist[t] = dist[s] + 1
                    nxt.append(t)
        frontier = nxt
    return dist


STUDY_TOPOLOGIES = ("generated", "generated-spare", "mesh", "torus", "crossbar")


def study_topology(
    kind: str,
    nodes: int,
    benchmark: str = "cg",
    seed: int = 0,
    restarts: int = 8,
) -> Tuple[str, Topology, Optional[Dict[int, int]]]:
    """Build one study topology as a ``(label, topology, link_delays)`` row.

    ``mesh``/``torus``/``crossbar`` are the plain baselines (torus
    wraparounds cost two cycles, as in the paper's evaluation);
    ``generated`` synthesizes the network for ``benchmark`` at
    ``nodes`` and uses its floorplan link delays; ``generated-spare``
    is the generated network with one spare link per switch (spare
    links, having no floorplan length, keep the one-cycle default).
    """
    if kind == "mesh":
        return kind, mesh_for(nodes), None
    if kind == "crossbar":
        return kind, crossbar(nodes), None
    if kind == "torus":
        top = torus_for(nodes)
        delays = {}
        for link in top.network.links:
            (x1, y1) = top.coords[link.u]
            (x2, y2) = top.coords[link.v]
            wrap = abs(x1 - x2) > 1 or abs(y1 - y2) > 1
            delays[link.link_id] = 2 if wrap else 1
        return kind, top, delays
    if kind in ("generated", "generated-spare"):
        from repro.eval.runner import prepare

        setup = prepare(benchmark, nodes, seed=seed, restarts=restarts)
        delays = setup.floorplan.link_delays()
        if kind == "generated":
            return kind, setup.design.topology, delays
        return kind, spare_link_variant(setup.design.topology), delays
    raise SimulationError(
        f"unknown study topology {kind!r}; choose from {STUDY_TOPOLOGIES}"
    )
