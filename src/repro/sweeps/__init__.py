"""``repro.sweeps`` — synthetic traffic suite + saturation-sweep driver.

Three layers (see ``docs/SWEEPS.md``):

* :mod:`repro.sweeps.patterns` — the canonical synthetic destination
  patterns (uniform, tornado, transpose, bit permutations, hotspot, a
  routing-aware adversarial permutation) behind one extensible
  registry of spec strings (``"tornado"``, ``"hotspot:3:0.8"``);
* :mod:`repro.sweeps.driver` — the automated saturation sweep: walks
  injection rates, bisects around the knee, detects the saturation
  point, and fans every measurement out through the cached parallel
  eval runner so repeated sweeps are nearly free;
* :mod:`repro.sweeps.report` — schema-versioned canonical-JSON
  :class:`SaturationCurve` / :class:`SweepResult` artifacts with
  CSV/table rendering and the robustness-study degradation table.

``driver``/``report`` are imported lazily: :mod:`repro.simulator.openloop`
re-exports the pattern suite from this package, and an eager driver
import here would close that cycle back onto a half-initialized
``openloop`` module.
"""

from __future__ import annotations

from repro.sweeps.patterns import (
    DestinationPattern,
    PATTERNS,
    adversarial_pattern,
    adversarial_permutation,
    bit_complement_pattern,
    bit_reverse_pattern,
    bit_rotation_pattern,
    canonical_spec,
    hotspot_pattern,
    neighbor_pattern,
    pattern_catalog,
    pattern_entries,
    pattern_names,
    register_pattern,
    resolve_pattern,
    shuffle_pattern,
    tornado_pattern,
    transpose_pattern,
    uniform_random,
)

_LAZY = {
    "CRITERIA": "repro.sweeps.driver",
    "STUDY_TOPOLOGIES": "repro.sweeps.driver",
    "SweepConfig": "repro.sweeps.driver",
    "criterion_latency": "repro.sweeps.driver",
    "detect_saturation": "repro.sweeps.driver",
    "latency_reference": "repro.sweeps.driver",
    "point_is_saturated": "repro.sweeps.driver",
    "run_sweep": "repro.sweeps.driver",
    "run_sweep_suite": "repro.sweeps.driver",
    "spare_link_variant": "repro.sweeps.driver",
    "study_topology": "repro.sweeps.driver",
    "SWEEP_SCHEMA": "repro.sweeps.report",
    "SaturationCurve": "repro.sweeps.report",
    "SweepResult": "repro.sweeps.report",
    "curve_csv": "repro.sweeps.report",
    "curve_plot": "repro.sweeps.report",
    "curve_table": "repro.sweeps.report",
    "degradation_table": "repro.sweeps.report",
}

__all__ = [
    "DestinationPattern",
    "PATTERNS",
    "adversarial_pattern",
    "adversarial_permutation",
    "bit_complement_pattern",
    "bit_reverse_pattern",
    "bit_rotation_pattern",
    "canonical_spec",
    "hotspot_pattern",
    "neighbor_pattern",
    "pattern_catalog",
    "pattern_entries",
    "pattern_names",
    "register_pattern",
    "resolve_pattern",
    "shuffle_pattern",
    "tornado_pattern",
    "transpose_pattern",
    "uniform_random",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
