"""Schema-versioned sweep artifacts and their renderings.

A :class:`SaturationCurve` is the canonical result of one automated
sweep: the measured latency/throughput points (sorted by offered
load), the detected saturation point, and every parameter that shaped
the sweep.  A :class:`SweepResult` bundles the curves of a multi-cell
study (e.g. the robustness study's topology x pattern grid).

Both serialize to *canonical JSON* (sorted keys, no whitespace — the
same byte-stability contract as the result cache and the verification
certificates), so serial, parallel, and cache-hit sweeps produce
byte-identical artifacts, and CI can diff them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.eval.serialize import (
    canonical_json,
    loadpoint_from_dict,
    loadpoint_to_dict,
)
from repro.simulator.openloop import LoadPoint

#: Bump when the artifact layout changes incompatibly.
#: Schema 2: every load point carries p50/p95/p99 latency percentiles.
SWEEP_SCHEMA = 2


def _check_schema(raw: dict, kind: str) -> int:
    """Reject artifacts from other schema generations with a clear hint."""
    schema = raw.get("schema")
    if schema == SWEEP_SCHEMA:
        return schema
    hint = ""
    if schema == 1:
        hint = (
            "; schema-1 artifacts predate the p50/p95/p99 latency "
            "percentile fields — re-run the sweep to regenerate them"
        )
    raise SimulationError(
        f"unsupported {kind} artifact schema {schema!r} "
        f"(this build reads schema {SWEEP_SCHEMA}{hint})"
    )


@dataclass(frozen=True)
class SaturationCurve:
    """One automated saturation sweep over a (topology, pattern) pair.

    Attributes:
        topology_name: report label of the swept network.
        pattern: canonical pattern spec (``"tornado"``, ``"hotspot:3:0.8"``).
        num_nodes: node count of the network.
        seed: base seed of every measurement cell.
        points: measured load points, sorted by offered rate (the
            initial grid plus the bisection refinements).
        saturation_rate: estimated offered rate at the knee — the
            midpoint of the final bisection bracket — or ``None`` when
            the network never saturated below the sweep's maximum rate.
        saturation_throughput: highest accepted rate over points below
            saturation (all points, when saturation was never reached).
        saturated: whether any measured point met a saturation
            criterion (see :func:`repro.sweeps.driver.detect_saturation`).
        params: the sweep parameters (rate bounds, grid size,
            refinement depth, cycle windows, detection thresholds).
    """

    topology_name: str
    pattern: str
    num_nodes: int
    seed: int
    points: Tuple[LoadPoint, ...]
    saturation_rate: Optional[float]
    saturation_throughput: float
    saturated: bool
    params: Dict[str, object]
    schema: int = SWEEP_SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "kind": "saturation-curve",
            "topology_name": self.topology_name,
            "pattern": self.pattern,
            "num_nodes": self.num_nodes,
            "seed": self.seed,
            "points": [loadpoint_to_dict(p) for p in self.points],
            "saturation_rate": self.saturation_rate,
            "saturation_throughput": self.saturation_throughput,
            "saturated": self.saturated,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SaturationCurve":
        schema = _check_schema(raw, "saturation-curve")
        return cls(
            topology_name=raw["topology_name"],
            pattern=raw["pattern"],
            num_nodes=raw["num_nodes"],
            seed=raw["seed"],
            points=tuple(loadpoint_from_dict(p) for p in raw["points"]),
            saturation_rate=raw["saturation_rate"],
            saturation_throughput=raw["saturation_throughput"],
            saturated=raw["saturated"],
            params=dict(raw["params"]),
            schema=schema,
        )

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON text of this curve."""
        return canonical_json(self.to_dict())

    def render(self) -> str:
        return curve_table(self)


def curve_table(curve: SaturationCurve) -> str:
    """Human-readable table of one saturation curve."""
    lines = [
        f"saturation sweep: {curve.pattern} on {curve.topology_name} "
        f"({curve.num_nodes} nodes, seed {curve.seed})",
        f"{'offered':>9} {'accepted':>9} {'latency':>9} "
        f"{'p50':>7} {'p95':>7} {'p99':>7} "
        f"{'delivered':>9} {'saturated':>9}",
    ]
    for p in curve.points:
        lines.append(
            f"{p.offered_flits_per_node_cycle:>9.4f} "
            f"{p.accepted_flits_per_node_cycle:>9.4f} "
            f"{p.avg_latency:>9.1f} "
            f"{p.p50_latency:>7d} {p.p95_latency:>7d} {p.p99_latency:>7d} "
            f"{p.delivered:>9d} "
            f"{str(p.saturated):>9}"
        )
    if curve.saturation_rate is not None:
        lines.append(
            f"saturation: offered ~{curve.saturation_rate:.4f} "
            f"flits/node/cycle (accepted {curve.saturation_throughput:.4f})"
        )
    else:
        lines.append(
            f"no saturation below {_max_rate(curve):.4f} flits/node/cycle "
            f"(peak accepted {curve.saturation_throughput:.4f})"
        )
    return "\n".join(lines)


def curve_csv(curve: SaturationCurve) -> str:
    """CSV rendering (header + one row per load point)."""
    lines = [
        "offered,accepted,avg_latency,p50_latency,p95_latency,p99_latency,"
        "delivered,saturated"
    ]
    for p in curve.points:
        lines.append(
            f"{p.offered_flits_per_node_cycle!r},"
            f"{p.accepted_flits_per_node_cycle!r},"
            f"{p.avg_latency!r},"
            f"{p.p50_latency},{p.p95_latency},{p.p99_latency},"
            f"{p.delivered},{int(p.saturated)}"
        )
    return "\n".join(lines) + "\n"


def _max_rate(curve: SaturationCurve) -> float:
    if curve.points:
        return max(p.offered_flits_per_node_cycle for p in curve.points)
    return float(curve.params.get("max_rate", 0.0))


#: (legend label, ASCII marker, SVG stroke) per percentile series, in
#: draw order — later series win ASCII cell collisions, so the tail
#: stays visible where the curves overlap.  The strokes are the
#: Okabe-Ito colorblind-safe palette.
_PLOT_SERIES = (
    ("p50", "5", "#0072B2"),
    ("p95", "9", "#E69F00"),
    ("p99", "!", "#D55E00"),
)


def curve_plot(
    curve: SaturationCurve,
    fmt: str = "ascii",
    width: int = 64,
    height: int = 16,
) -> str:
    """Dependency-free chart of p50/p95/p99 latency vs offered rate.

    ``fmt="ascii"`` renders a fixed-size character grid (``width`` x
    ``height`` plot area) for terminals and logs; ``fmt="svg"`` emits a
    standalone SVG document (hand-written markup, no plotting library).
    Both mark the detected saturation rate when the sweep found one.
    """
    if fmt not in ("ascii", "svg"):
        raise SimulationError(f"unknown plot format {fmt!r}; use 'ascii' or 'svg'")
    if not curve.points:
        raise SimulationError("cannot plot a curve with no measured points")
    if fmt == "svg":
        return _plot_svg(curve)
    return _plot_ascii(curve, width, height)


def _plot_geometry(curve: SaturationCurve):
    xs = [p.offered_flits_per_node_cycle for p in curve.points]
    series = [
        (label, marker, stroke, [float(getattr(p, f"{label}_latency")) for p in curve.points])
        for label, marker, stroke in _PLOT_SERIES
    ]
    xmin, xmax = min(xs), max(xs)
    xspan = (xmax - xmin) or 1.0
    ymax = max((max(values) for _, _, _, values in series), default=0.0) or 1.0
    return xs, series, xmin, xmax, xspan, ymax


def _plot_ascii(curve: SaturationCurve, width: int, height: int) -> str:
    xs, series, xmin, xmax, xspan, ymax = _plot_geometry(curve)
    grid = [[" "] * width for _ in range(height)]
    for _, marker, _, values in series:
        for x, y in zip(xs, values):
            col = round((x - xmin) / xspan * (width - 1))
            row = height - 1 - round(y / ymax * (height - 1))
            grid[row][col] = marker
    gutter = 9
    lines = [
        f"latency vs offered rate: {curve.pattern} on {curve.topology_name} "
        f"({curve.num_nodes} nodes)",
        "  ".join(f"{marker} = {label}" for label, marker, _ in _PLOT_SERIES),
    ]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{ymax:.1f}"
        elif i == height - 1:
            label = "0.0"
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + "  " + "-" * width)
    footer = [" "] * width
    if curve.saturation_rate is not None and xmin <= curve.saturation_rate <= xmax:
        footer[round((curve.saturation_rate - xmin) / xspan * (width - 1))] = "^"
    lines.append(" " * gutter + "  " + "".join(footer).rstrip())
    left = f"{xmin:g}"
    right = f"{xmax:g} flits/node/cycle"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * gutter + "  " + left + " " * pad + right)
    if curve.saturation_rate is not None:
        lines.append(f"^ saturation at offered ~{curve.saturation_rate:.4f}")
    return "\n".join(lines) + "\n"


def _plot_svg(curve: SaturationCurve) -> str:
    xs, series, xmin, xmax, xspan, ymax = _plot_geometry(curve)
    w, h, ml, mr, mt, mb = 640, 400, 60, 20, 40, 50
    pw, ph = w - ml - mr, h - mt - mb

    def px(x: float) -> float:
        return round(ml + (x - xmin) / xspan * pw, 2)

    def py(y: float) -> float:
        return round(mt + ph - y / ymax * ph, 2)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w} {h}" '
        f'font-family="monospace" font-size="12">',
        f'<rect width="{w}" height="{h}" fill="white"/>',
        f'<text x="{ml}" y="20">latency vs offered rate: {curve.pattern} on '
        f"{curve.topology_name} ({curve.num_nodes} nodes)</text>",
        # Axes.
        f'<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{mt + ph}" stroke="black"/>',
        f'<line x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" y2="{mt + ph}" stroke="black"/>',
        f'<text x="{ml - 5}" y="{mt + 4}" text-anchor="end">{ymax:.1f}</text>',
        f'<text x="{ml - 5}" y="{mt + ph + 4}" text-anchor="end">0</text>',
        f'<text x="{ml}" y="{mt + ph + 16}" text-anchor="middle">{xmin:g}</text>',
        f'<text x="{ml + pw}" y="{mt + ph + 16}" text-anchor="middle">{xmax:g}</text>',
        f'<text x="{ml + pw // 2}" y="{h - 10}" text-anchor="middle">'
        "offered rate (flits/node/cycle)</text>",
    ]
    if curve.saturation_rate is not None and xmin <= curve.saturation_rate <= xmax:
        x = px(curve.saturation_rate)
        parts.append(
            f'<line x1="{x}" y1="{mt}" x2="{x}" y2="{mt + ph}" stroke="gray" '
            'stroke-dasharray="4 3"/>'
        )
        parts.append(
            f'<text x="{x}" y="{mt - 5}" text-anchor="middle" fill="gray">'
            f"saturation {curve.saturation_rate:.4f}</text>"
        )
    for i, (label, _, stroke, values) in enumerate(series):
        pts = " ".join(f"{px(x)},{py(y)}" for x, y in zip(xs, values))
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" stroke-width="2"/>'
        )
        for x, y in zip(xs, values):
            parts.append(f'<circle cx="{px(x)}" cy="{py(y)}" r="3" fill="{stroke}"/>')
        ly = mt + 16 * i
        parts.append(
            f'<line x1="{ml + pw - 70}" y1="{ly}" x2="{ml + pw - 50}" y2="{ly}" '
            f'stroke="{stroke}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{ml + pw - 45}" y="{ly + 4}">{label}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


@dataclass(frozen=True)
class SweepResult:
    """A bundle of saturation curves from one study.

    Curves are keyed by their ``(topology_label, pattern)`` pair —
    topology labels are study-level names like ``"generated"`` or
    ``"generated+spare"`` that may differ from the underlying
    ``Topology.name``.
    """

    label: str
    curves: Tuple[Tuple[str, str, SaturationCurve], ...]
    schema: int = SWEEP_SCHEMA

    def curve(self, topology_label: str, pattern: str) -> SaturationCurve:
        found = self.find_curve(topology_label, pattern)
        if found is None:
            raise SimulationError(
                f"no curve for topology {topology_label!r} / pattern {pattern!r} "
                f"in sweep result {self.label!r}"
            )
        return found

    def find_curve(
        self, topology_label: str, pattern: str
    ) -> Optional[SaturationCurve]:
        """Like :meth:`curve`, but ``None`` on a missing pair — ragged
        grids (a topology swept on a subset of patterns) are legal."""
        for top, pat, curve in self.curves:
            if top == topology_label and pat == pattern:
                return curve
        return None

    @property
    def topology_labels(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for top, _, _ in self.curves:
            if top not in seen:
                seen.append(top)
        return tuple(seen)

    @property
    def patterns(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for _, pat, _ in self.curves:
            if pat not in seen:
                seen.append(pat)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "kind": "sweep-result",
            "label": self.label,
            "curves": [
                {"topology": top, "pattern": pat, "curve": curve.to_dict()}
                for top, pat, curve in self.curves
            ],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SweepResult":
        schema = _check_schema(raw, "sweep-result")
        return cls(
            label=raw["label"],
            curves=tuple(
                (
                    entry["topology"],
                    entry["pattern"],
                    SaturationCurve.from_dict(entry["curve"]),
                )
                for entry in raw["curves"]
            ),
            schema=schema,
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())


def degradation_table(
    result: SweepResult, baseline: str = "mesh", title: Optional[str] = None
) -> str:
    """Saturation throughput per (pattern, topology), relative to a baseline.

    The off-design robustness question in one table: each cell shows a
    topology's saturation throughput and, in parentheses, its ratio to
    the baseline topology's on the same pattern — below 1.0 means the
    topology degrades relative to the baseline on that traffic.

    Ragged grids are tolerated: a (topology, pattern) pair that was
    never swept renders as ``-``, and when the baseline's throughput is
    0 (or the baseline pair is missing) the ratio renders as ``n/a``
    instead of ``inf``.
    """
    tops = result.topology_labels
    if baseline not in tops:
        raise SimulationError(
            f"baseline topology {baseline!r} not in sweep result "
            f"(have {', '.join(tops)})"
        )
    width = max(12, max(len(t) for t in tops) + 9)
    header = f"{'pattern':<16}" + "".join(f"{t:>{width}}" for t in tops)
    lines = [title or f"saturation throughput (flits/node/cycle), "
             f"ratio vs {baseline}", header, "-" * len(header)]
    for pattern in result.patterns:
        base_curve = result.find_curve(baseline, pattern)
        base = base_curve.saturation_throughput if base_curve else 0.0
        row = f"{pattern:<16}"
        for top in tops:
            curve = result.find_curve(top, pattern)
            if curve is None:
                row += f"{'-':>{width}}"
                continue
            sat = curve.saturation_throughput
            ratio = f"{sat / base:4.2f}" if base > 0 else " n/a"
            row += f"{sat:>{width - 7}.4f} ({ratio})"
        lines.append(row)
    return "\n".join(lines)
