"""The canonical synthetic traffic suite, as one extensible registry.

Standard NoC evaluation characterizes a network by its
latency-vs-offered-load curve under a small set of canonical
destination patterns (Dally & Towles ch. 3; the same suite appears in
the Pareto-optimization and guaranteed-QoS lines of work in PAPERS.md).
This module provides that suite as composable
:data:`DestinationPattern` callables plus a registry mapping pattern
*specs* — strings like ``"tornado"`` or ``"hotspot:3:0.8"`` — to
resolved callables.  :mod:`repro.simulator.openloop` re-exports the
primitives for backward compatibility.

Pattern contract
----------------
A pattern is ``pattern(src, n, rng) -> dest``.  Returning the source
asks the open-loop injector to resample (bounded), so deterministic
patterns with fixed points instead *fall back to uniform random* on a
self-map — the offered load is preserved and the behaviour is explicit:

* ``transpose`` needs a square node count, the ``bit_*`` and
  ``shuffle`` permutations need a power of two.  On an incompatible
  ``n`` the pattern warns **once** per (pattern, n) and degrades to
  uniform random; resolving with ``strict=True`` raises
  :class:`~repro.errors.SimulationError` instead.
* Structured patterns map their fixed points (the transpose diagonal,
  bit-complement's middle, …) to uniform random draws.

All patterns are seed-deterministic: destinations depend only on
``(src, n)`` and the draws they take from the supplied ``rng``.

Registry
--------
Specs are ``name`` or ``name:arg1:arg2...``.  Use
:func:`resolve_pattern` to turn a spec into a callable,
:func:`pattern_names` for the registered names, and
:func:`register_pattern` to extend the suite.  The ``adversarial``
pattern is routing-aware — it needs a topology at resolve time and
builds the permutation that (greedily) maximizes the load on the
busiest channel of the given routing function.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.topology.builders import Topology

# dest = pattern(source, num_nodes, rng); returning the source resamples.
DestinationPattern = Callable[[int, int, random.Random], int]

# (pattern name, n) pairs that already warned about a fallback.
_WARNED: Set[Tuple[str, int]] = set()

# requirement key -> human description of the node-count constraint.
_REQUIREMENT_TEXT = {
    "square": "a square node count",
    "pow2": "a power-of-two node count",
}


def _nearest_valid_sizes(requirement: str, n: int) -> Tuple[int, int]:
    """The valid node counts bracketing ``n`` for a size requirement."""
    if requirement == "square":
        side = int(n ** 0.5)
        below = max(1, side) ** 2
        above = (side + 1) ** 2
    elif requirement == "pow2":
        below = 1 << max(0, n.bit_length() - 1)
        above = 1 << n.bit_length()
    else:  # pragma: no cover - requirement keys are closed
        raise SimulationError(f"unknown size requirement {requirement!r}")
    return (below, above)


def _size_violation(name: str, requirement: str, n: int) -> str:
    """'pattern spec X requires ... got n=..., nearest valid sizes ...'."""
    below, above = _nearest_valid_sizes(requirement, n)
    return (
        f"pattern spec {name!r} requires {_REQUIREMENT_TEXT[requirement]} "
        f"but got n={n} (nearest valid sizes: {below} and {above})"
    )


def _fallback(name: str, requirement: str, n: int) -> None:
    """Warn once per (pattern, n) that the pattern degrades to uniform."""
    if (name, n) in _WARNED:
        return
    _WARNED.add((name, n))
    warnings.warn(
        f"{_size_violation(name, requirement, n)}; "
        f"falling back to uniform random (resolve with strict=True to "
        f"raise instead)",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_fallback_warnings() -> None:
    """Forget which (pattern, n) fallbacks already warned (test hook)."""
    _WARNED.clear()


def is_square(n: int) -> bool:
    side = int(n ** 0.5)
    return side * side == n


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def require_square(name: str, n: int) -> None:
    """Raise :class:`SimulationError` unless ``n`` is a perfect square."""
    if not is_square(n):
        raise SimulationError(_size_violation(name, "square", n))


def require_power_of_two(name: str, n: int) -> None:
    """Raise :class:`SimulationError` unless ``n`` is a power of two."""
    if not is_power_of_two(n):
        raise SimulationError(_size_violation(name, "pow2", n))


# ---------------------------------------------------------------------------
# The canonical suite
# ---------------------------------------------------------------------------


def uniform_random(src: int, n: int, rng: random.Random) -> int:
    """Every other node equally likely."""
    dest = rng.randrange(n - 1)
    return dest if dest < src else dest + 1


def neighbor_pattern(src: int, n: int, rng: random.Random) -> int:
    """Ring neighbour (+1)."""
    return (src + 1) % n


def tornado_pattern(src: int, n: int, rng: random.Random) -> int:
    """Half-way-around offset: ``dest = (src + n//2) % n``.

    The classic adversary for minimal routing on rings and tori —
    every packet travels the maximum minimal distance.
    """
    if n < 2:
        return src
    return (src + n // 2) % n


def transpose_pattern(src: int, n: int, rng: random.Random) -> int:
    """Matrix-transpose destination on a square grid.

    Diagonal nodes (self maps) draw uniformly; a non-square ``n``
    degrades to uniform random with a one-time warning (strict
    resolution raises instead — see the module docstring).
    """
    side = int(n ** 0.5)
    if side * side != n:
        _fallback("transpose", "square", n)
        return uniform_random(src, n, rng)
    dest = (src % side) * side + src // side
    if dest == src:
        return uniform_random(src, n, rng)
    return dest


def bit_complement_pattern(src: int, n: int, rng: random.Random) -> int:
    """Bitwise complement within ``log2(n)`` bits."""
    if not is_power_of_two(n):
        _fallback("bit_complement", "pow2", n)
        return uniform_random(src, n, rng)
    dest = src ^ (n - 1)
    if dest == src:  # n == 1 only
        return uniform_random(src, n, rng)
    return dest


def bit_reverse_pattern(src: int, n: int, rng: random.Random) -> int:
    """Reverse the ``log2(n)``-bit address (palindromes draw uniformly)."""
    if not is_power_of_two(n):
        _fallback("bit_reverse", "pow2", n)
        return uniform_random(src, n, rng)
    bits = n.bit_length() - 1
    dest = 0
    for i in range(bits):
        if src & (1 << i):
            dest |= 1 << (bits - 1 - i)
    if dest == src:
        return uniform_random(src, n, rng)
    return dest


def bit_rotation_pattern(src: int, n: int, rng: random.Random) -> int:
    """Rotate the address right by one bit (unshuffle)."""
    if not is_power_of_two(n):
        _fallback("bit_rotation", "pow2", n)
        return uniform_random(src, n, rng)
    bits = n.bit_length() - 1
    if bits == 0:
        return uniform_random(src, n, rng)
    dest = (src >> 1) | ((src & 1) << (bits - 1))
    if dest == src:
        return uniform_random(src, n, rng)
    return dest


def shuffle_pattern(src: int, n: int, rng: random.Random) -> int:
    """Perfect shuffle: rotate the address left by one bit."""
    if not is_power_of_two(n):
        _fallback("shuffle", "pow2", n)
        return uniform_random(src, n, rng)
    bits = n.bit_length() - 1
    if bits == 0:
        return uniform_random(src, n, rng)
    dest = ((src << 1) | (src >> (bits - 1))) & (n - 1)
    if dest == src:
        return uniform_random(src, n, rng)
    return dest


def hotspot_pattern(hotspot: int = 0, bias: float = 0.5) -> DestinationPattern:
    """A fraction ``bias`` of traffic targets one node, rest uniform."""
    if not 0.0 <= bias <= 1.0:
        raise SimulationError(f"hotspot bias must be in [0, 1], got {bias}")

    def pattern(src: int, n: int, rng: random.Random) -> int:
        if src != hotspot and rng.random() < bias:
            return hotspot
        return uniform_random(src, n, rng)

    return pattern


# ---------------------------------------------------------------------------
# Routing-aware adversarial permutation
# ---------------------------------------------------------------------------


def adversarial_permutation(topology: "Topology") -> Dict[int, int]:
    """A permutation greedily maximizing the busiest channel's load.

    Sources are assigned in ascending order; each takes the unused
    destination whose route pushes the maximum per-channel load highest,
    breaking ties toward routes that cross more already-loaded channels,
    then toward longer routes (more channels claimed), then toward the
    lowest destination id.  Deterministic for a given topology+routing,
    so sweep cells keyed on the topology fingerprint stay cacheable.
    """
    from repro.model.message import Communication

    n = topology.network.num_processors
    if n < 2:
        raise SimulationError("adversarial pattern needs at least two nodes")
    loads: Dict[Tuple, int] = {}
    perm: Dict[int, int] = {}
    unused: List[int] = list(range(n))
    for src in range(n):
        best: Optional[Tuple[int, int, int, int]] = None
        best_dest: Optional[int] = None
        best_hops: Tuple = ()
        for dest in unused:
            if dest == src:
                continue
            hops = topology.routing.route(Communication(src, dest)).hops
            peak = max((loads.get(h, 0) + 1 for h in hops), default=0)
            along = sum(loads.get(h, 0) for h in hops)
            score = (peak, along, len(hops), -dest)
            if best is None or score > best:
                best = score
                best_dest = dest
                best_hops = hops
        if best_dest is None:
            # Only ``src`` itself is left: swap with an earlier source
            # whose destination is not ``src`` to keep a derangement.
            for other in range(src):
                if perm[other] != src:
                    perm[src] = perm[other]
                    perm[other] = src
                    break
            continue
        perm[src] = best_dest
        unused.remove(best_dest)
        for h in best_hops:
            loads[h] = loads.get(h, 0) + 1
    return perm


def adversarial_pattern(topology: "Topology") -> DestinationPattern:
    """Fixed permutation maximizing channel load on ``topology``'s routing."""
    perm = adversarial_permutation(topology)

    def pattern(src: int, n: int, rng: random.Random) -> int:
        dest = perm.get(src, src)
        if dest == src:
            return uniform_random(src, n, rng)
        return dest

    return pattern


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PatternEntry:
    """One registered pattern family.

    ``factory(params, topology)`` builds the callable; ``requires``
    names a node-count requirement checked at strict resolve time
    (``"square"`` or ``"pow2"``); ``needs_topology`` marks
    routing-aware patterns that cannot resolve without one.
    """

    name: str
    factory: Callable[[Tuple[str, ...], Optional["Topology"]], DestinationPattern]
    requires: Optional[str] = None
    needs_topology: bool = False
    description: str = ""


_REGISTRY: Dict[str, PatternEntry] = {}


def register_pattern(
    name: str,
    factory: Callable[[Tuple[str, ...], Optional["Topology"]], DestinationPattern],
    requires: Optional[str] = None,
    needs_topology: bool = False,
    description: str = "",
) -> None:
    """Register (or replace) a pattern family under ``name``."""
    if ":" in name:
        raise SimulationError(f"pattern name {name!r} may not contain ':'")
    _REGISTRY[name] = PatternEntry(
        name=name,
        factory=factory,
        requires=requires,
        needs_topology=needs_topology,
        description=description,
    )


def pattern_names() -> Tuple[str, ...]:
    """Registered pattern family names, sorted."""
    return tuple(sorted(_REGISTRY))


def pattern_catalog() -> Dict[str, str]:
    """name -> one-line description, for docs and ``--help`` output."""
    return {name: _REGISTRY[name].description for name in pattern_names()}


def pattern_entries() -> Tuple[PatternEntry, ...]:
    """The registered :class:`PatternEntry` rows, sorted by name."""
    return tuple(_REGISTRY[name] for name in pattern_names())


def canonical_spec(spec: str) -> str:
    """Normalized spec string used in cache keys and artifacts.

    Validates the name and normalizes parameter formatting
    (``"hotspot:03:0.50"`` -> ``"hotspot:3:0.5"``).
    """
    name, params = _parse_spec(spec)
    if name == "hotspot":
        node, bias = _hotspot_params(params)
        return f"hotspot:{node}:{_format_float(bias)}"
    if params:
        raise SimulationError(
            f"pattern {name!r} takes no parameters, got {spec!r}"
        )
    return name


def resolve_pattern(
    spec: str,
    n: Optional[int] = None,
    topology: Optional["Topology"] = None,
    strict: bool = False,
) -> DestinationPattern:
    """Turn a pattern spec into a destination callable.

    Args:
        spec: ``name`` or ``name:arg1:arg2`` (see :func:`pattern_names`).
        n: node count, when known — required for ``strict`` checking of
            size requirements and for validating hotspot node ids.
        topology: required by routing-aware patterns (``adversarial``);
            also supplies ``n`` when not given explicitly.
        strict: raise :class:`SimulationError` when ``n`` violates the
            pattern's node-count requirement instead of warning once and
            degrading to uniform random.
    """
    name, params = _parse_spec(spec)
    entry = _REGISTRY[name]
    if topology is not None and n is None:
        n = topology.network.num_processors
    if entry.needs_topology and topology is None:
        raise SimulationError(
            f"pattern {name!r} is routing-aware and needs a topology to resolve"
        )
    if strict and n is not None and entry.requires is not None:
        if entry.requires == "square":
            require_square(name, n)
        elif entry.requires == "pow2":
            require_power_of_two(name, n)
    pattern = entry.factory(params, topology)
    if name == "hotspot" and n is not None:
        node, _ = _hotspot_params(params)
        if not 0 <= node < n:
            raise SimulationError(
                f"hotspot node {node} outside range(0, {n})"
            )
    return pattern


def _parse_spec(spec: str) -> Tuple[str, Tuple[str, ...]]:
    parts = spec.split(":")
    name = parts[0]
    if name not in _REGISTRY:
        known = ", ".join(pattern_names())
        raise SimulationError(f"unknown pattern {spec!r}; known: {known}")
    return name, tuple(parts[1:])


def _format_float(value: float) -> str:
    """Shortest stable decimal form (``0.50`` -> ``"0.5"``)."""
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def _hotspot_params(params: Tuple[str, ...]) -> Tuple[int, float]:
    """Parse ``hotspot[:node[:bias]]`` parameters with defaults 0, 0.5."""
    if len(params) > 2:
        raise SimulationError(
            f"hotspot takes at most node and bias, got {':'.join(params)!r}"
        )
    try:
        node = int(params[0]) if len(params) >= 1 and params[0] != "" else 0
        bias = float(params[1]) if len(params) >= 2 else 0.5
    except ValueError as exc:
        raise SimulationError(f"malformed hotspot spec parameters: {exc}") from None
    if not 0.0 <= bias <= 1.0:
        raise SimulationError(f"hotspot bias must be in [0, 1], got {bias}")
    if node < 0:
        raise SimulationError(f"hotspot node must be non-negative, got {node}")
    return node, bias


def _simple(pattern: DestinationPattern):
    def factory(params: Tuple[str, ...], topology: Optional["Topology"]):
        return pattern

    return factory


def _hotspot_factory(params: Tuple[str, ...], topology: Optional["Topology"]):
    node, bias = _hotspot_params(params)
    return hotspot_pattern(hotspot=node, bias=bias)


def _adversarial_factory(params: Tuple[str, ...], topology: Optional["Topology"]):
    if topology is None:  # pragma: no cover - guarded in resolve_pattern
        raise SimulationError("adversarial pattern needs a topology")
    return adversarial_pattern(topology)


register_pattern(
    "uniform", _simple(uniform_random),
    description="every other node equally likely",
)
register_pattern(
    "neighbor", _simple(neighbor_pattern),
    description="ring neighbour (+1 mod n)",
)
register_pattern(
    "tornado", _simple(tornado_pattern),
    description="half-way-around offset (src + n/2 mod n)",
)
register_pattern(
    "transpose", _simple(transpose_pattern), requires="square",
    description="matrix transpose on the square grid",
)
register_pattern(
    "bit_complement", _simple(bit_complement_pattern), requires="pow2",
    description="bitwise complement of the address",
)
register_pattern(
    "bit_reverse", _simple(bit_reverse_pattern), requires="pow2",
    description="bit-reversed address",
)
register_pattern(
    "bit_rotation", _simple(bit_rotation_pattern), requires="pow2",
    description="address rotated right by one bit",
)
register_pattern(
    "shuffle", _simple(shuffle_pattern), requires="pow2",
    description="perfect shuffle (address rotated left by one bit)",
)
register_pattern(
    "hotspot", _hotspot_factory,
    description="hotspot:<node>:<bias> — biased fraction targets one node",
)
register_pattern(
    "adversarial", _adversarial_factory, needs_topology=True,
    description="routing-aware permutation maximizing peak channel load",
)


#: Default-parameter resolution of every non-routing-aware family, kept
#: as a plain mapping for backward compatibility with the original
#: ``openloop.PATTERNS`` dict (``adversarial`` is excluded — it cannot
#: resolve without a topology; use :func:`resolve_pattern`).
PATTERNS: Dict[str, DestinationPattern] = {
    name: _REGISTRY[name].factory((), None)
    for name in pattern_names()
    if not _REGISTRY[name].needs_topology
}
