"""A minimal HTTP/1.1 layer over :mod:`asyncio` streams.

The service deliberately avoids third-party web frameworks — the repo
ships zero hard dependencies — so this module implements exactly the
subset the job API needs: request-line + header parsing, a
``Content-Length``-framed body, JSON helpers, and one-response-per-
connection semantics (``Connection: close``).  Keep-alive, chunked
transfer, and TLS are out of scope; a production deployment would sit
this behind a reverse proxy that provides them.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import unquote, urlsplit

#: Bound on the request head (request line + headers) and body.
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request that must be answered with an HTTP error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as JSON; raises :class:`HttpError` 400 on
        anything unparsable."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on a closed socket.

    Raises :class:`HttpError` on malformed framing or oversized
    payloads.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(413, f"request head exceeds {MAX_HEAD_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")
    path = unquote(urlsplit(target).path)
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def response_bytes(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    """A full one-shot HTTP response (``Connection: close``)."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def json_response(status: int, payload: object) -> bytes:
    """A JSON response; payload is rendered with sorted keys so service
    responses are stable for tests and diffing (result bundles are
    served from their precomputed canonical bytes instead — see
    :mod:`repro.service.server`)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    return response_bytes(status, body)


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"error": message, "status": status})


def split_job_path(path: str) -> Optional[Tuple[str, Optional[str]]]:
    """Decompose ``/jobs/<id>[/result]`` → ``(job_id, tail)``.

    Returns ``None`` for paths outside the ``/jobs/`` tree; the tail is
    ``None`` for a bare status path.
    """
    if not path.startswith("/jobs/"):
        return None
    rest = path[len("/jobs/"):]
    if not rest:
        return None
    job_id, _, tail = rest.partition("/")
    if not job_id:
        return None
    return job_id, (tail or None)
