"""``repro.service`` — synthesis-as-a-service: the async job API.

The design-tool flow the paper describes (specify a well-behaved
communication pattern, get back a custom interconnect with a certified
schedule) served over HTTP (see ``docs/SERVICE.md``):

* :mod:`repro.service.spec` — job-spec canonicalization, content-
  addressed job keys over the existing cell cache keys, and bundle
  assembly;
* :mod:`repro.service.manager` — single-flight dedupe and the worker
  pool;
* :mod:`repro.service.http` / :mod:`repro.service.server` — the
  stdlib-only asyncio HTTP front end (``repro serve``);
* :mod:`repro.service.client` — the blocking client
  (``repro submit``).
"""

from __future__ import annotations

from repro.service.client import ServiceClient
from repro.service.manager import (
    DEDUPE_BUNDLE_CACHE,
    DEDUPE_COMPLETED,
    DEDUPE_INFLIGHT,
    DEDUPE_MISS,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobManager,
    JobRecord,
)
from repro.service.server import Service, ServiceConfig, ServiceThread, run_serve
from repro.service.spec import (
    JOB_KINDS,
    SERVICE_SCHEMA,
    canonicalize_spec,
    execute_spec,
    job_key,
)

__all__ = [
    "DEDUPE_BUNDLE_CACHE",
    "DEDUPE_COMPLETED",
    "DEDUPE_INFLIGHT",
    "DEDUPE_MISS",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JobManager",
    "JobRecord",
    "PENDING",
    "RUNNING",
    "SERVICE_SCHEMA",
    "Service",
    "ServiceClient",
    "ServiceConfig",
    "ServiceThread",
    "canonicalize_spec",
    "execute_spec",
    "job_key",
    "run_serve",
]
