"""The asyncio HTTP job server: routes, lifecycle, and a test harness.

Endpoints (all JSON):

* ``POST /jobs`` — submit a workload spec.  ``202`` when the job was
  newly scheduled, ``200`` when it deduped onto an existing record or
  a cached bundle.  The response carries the content-addressed
  ``job_id``.
* ``GET /jobs/<id>`` — job status: state, dedupe provenance, and the
  streamed progress feed (cell outcomes + obs spans).
* ``GET /jobs/<id>/result`` — the result bundle, served verbatim from
  its canonical bytes (byte-identical for every requester); ``409``
  while the job is still in flight, ``500`` with the error for a
  failed job.
* ``GET /healthz`` — liveness.
* ``GET /stats`` — dedupe counters, cell cache hit ratio, queue depth,
  worker utilization, and on-disk cache stats.
* ``POST /shutdown`` — graceful stop (used by the CI smoke driver).

The HTTP loop itself never computes anything: submissions land on the
:class:`~repro.service.manager.JobManager` worker pool and every
handler only reads job records, so slow synthesis cannot stall health
checks or status polling.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import ServiceError
from repro.eval.parallel import DEFAULT_CACHE_DIR, ResultCache
from repro.service import http
from repro.service.manager import DEDUPE_MISS, DONE, FAILED, JobManager

_JOB_ID_CHARS = set("0123456789abcdef")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` configures."""

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 2
    jobs: Optional[int] = None
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR

    def make_cache(self) -> Optional[ResultCache]:
        return ResultCache(self.cache_dir) if self.cache_dir is not None else None


class Service:
    """One running job API instance."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.manager = JobManager(
            cache=config.make_cache(), jobs=config.jobs, workers=config.workers
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.manager.shutdown(wait=True)

    # -- connection handling -------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await http.read_request(reader)
                if request is None:
                    return
                response = self._dispatch(request)
            except http.HttpError as exc:
                response = http.error_response(exc.status, exc.message)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    def _dispatch(self, request: http.Request) -> bytes:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return http.json_response(200, {"status": "ok"})
        if route == ("GET", "/stats"):
            return http.json_response(200, self.manager.stats())
        if route == ("POST", "/jobs"):
            return self._submit(request)
        if route == ("POST", "/shutdown"):
            self.request_shutdown()
            return http.json_response(200, {"status": "shutting-down"})
        job_route = http.split_job_path(request.path)
        if job_route is not None:
            if request.method != "GET":
                raise http.HttpError(405, f"{request.method} not allowed here")
            return self._job(*job_route)
        raise http.HttpError(404, f"no route for {request.method} {request.path}")

    def _submit(self, request: http.Request) -> bytes:
        spec = request.json()
        try:
            record, dedupe = self.manager.submit(spec)
        except ServiceError as exc:
            raise http.HttpError(400, str(exc))
        return http.json_response(
            202 if dedupe == DEDUPE_MISS else 200,
            {
                "job_id": record.job_id,
                "state": record.state,
                "dedupe": dedupe,
                "submissions": record.submissions,
            },
        )

    def _job(self, job_id: str, tail: Optional[str]) -> bytes:
        if len(job_id) != 64 or not set(job_id) <= _JOB_ID_CHARS:
            raise http.HttpError(400, f"malformed job id {job_id!r}")
        record = self.manager.get(job_id)
        if record is None:
            raise http.HttpError(404, f"unknown job {job_id}")
        if tail is None:
            return http.json_response(200, record.status_dict())
        if tail != "result":
            raise http.HttpError(404, f"unknown job resource {tail!r}")
        if record.state == FAILED:
            raise http.HttpError(500, f"job failed: {record.error}")
        if record.state != DONE or record.bundle_bytes is None:
            raise http.HttpError(
                409, f"job {job_id} is {record.state}; result not ready"
            )
        return http.response_bytes(200, record.bundle_bytes)


async def _serve_async(
    config: ServiceConfig, port_file: Optional[str] = None
) -> int:
    service = Service(config)
    await service.start()
    print(
        f"repro service listening on http://{config.host}:{service.port}",
        file=sys.stderr,
        flush=True,
    )
    if port_file is not None:
        with open(port_file, "w", encoding="utf-8") as fh:
            fh.write(f"{service.port}\n")
    loop = asyncio.get_running_loop()
    try:
        import signal

        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, service.request_shutdown)
    except (NotImplementedError, ImportError):  # pragma: no cover - non-POSIX
        pass
    await service.wait_shutdown()
    print("repro service shutting down", file=sys.stderr, flush=True)
    await service.stop()
    return 0


def run_serve(config: ServiceConfig, port_file: Optional[str] = None) -> int:
    """Blocking entry point for ``repro serve``."""
    return asyncio.run(_serve_async(config, port_file=port_file))


class ServiceThread:
    """A service running on a background thread — the harness the tests
    and the smoke driver use to exercise the real HTTP surface in
    process.

    Usage::

        with ServiceThread(ServiceConfig(port=0, cache_dir=...)) as svc:
            client = ServiceClient(svc.base_url)
            ...
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: Optional[Service] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        async def body() -> None:
            self.service = Service(self.config)
            await self.service.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.wait_shutdown()
            await self.service.stop()

        try:
            asyncio.run(body())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._error = exc
        finally:
            self._ready.set()

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise ServiceError(f"service failed to start: {self._error}")
        if self.service is None or self.service.port is None:
            raise ServiceError("service failed to start within 30s")
        return self

    @property
    def base_url(self) -> str:
        assert self.service is not None and self.service.port is not None
        return f"http://{self.config.host}:{self.service.port}"

    def stop(self) -> None:
        if self._loop is not None and self.service is not None:
            with contextlib.suppress(RuntimeError):
                # RuntimeError: the loop already closed because the
                # server was stopped another way (POST /shutdown).
                self._loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
