"""The job manager: single-flight scheduling over a worker pool.

One :class:`JobManager` owns every job the service has seen, keyed by
the content address of its canonical spec (:func:`~repro.service.spec.job_key`).
Three layers of deduplication, consulted in order at submit time:

1. **in-flight / in-memory** — a job with the same key that is pending,
   running, or already done attaches the new submission to the existing
   record (single-flight: N concurrent identical submissions cost one
   execution);
2. **on-disk bundle store** — ``.repro-cache/jobs/<key>.json`` holds
   completed bundles, so a restarted service (or another service
   sharing the cache directory) serves repeats without recomputing;
3. **cell cache** — even a cold job's cells run through the
   content-addressed result cache, so overlapping *different* jobs
   share their common cells.

Execution happens on a :class:`~concurrent.futures.ThreadPoolExecutor`:
cells release the GIL in subprocess fan-out mode (``jobs > 1``) and the
simulator is pure Python either way, so threads exist for scheduling
latency, not parallel speedup — a cold job saturates cores through the
``run_cells`` process pool, not through service threads.

Determinism: a job's ``bundle_bytes`` are the canonical JSON of its
bundle, computed once and served verbatim to every requester — the
byte-identity surface the service tests pin.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.eval.parallel import CellOutcome, ResultCache
from repro.eval.serialize import canonical_json
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.service.spec import canonicalize_spec, execute_spec, job_key

#: Job lifecycle states, in order.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: How a submission was satisfied (the ``dedupe`` field of a status).
DEDUPE_MISS = "miss"
DEDUPE_INFLIGHT = "in-flight"
DEDUPE_COMPLETED = "completed"
DEDUPE_BUNDLE_CACHE = "bundle-cache"

#: Spans this noisy or noisier are not streamed into job progress
#: feeds (per-cell synthesis internals would swamp the event list).
_MAX_STREAMED_DEPTH = 3


class JobRecord:
    """One deduplicated job: spec, state, progress feed, result bundle."""

    def __init__(self, key: str, spec: Dict[str, Any], dedupe: str) -> None:
        self.job_id = key
        self.spec = spec
        self.dedupe = dedupe
        self.state = PENDING
        self.error: Optional[str] = None
        self.bundle_bytes: Optional[bytes] = None
        self.submissions = 1
        self.created_s = time.time()
        self.finished_s: Optional[float] = None
        self._events: List[dict] = []
        self._lock = threading.Lock()

    # -- progress feed (appended from worker threads) ------------------

    def add_event(self, event: dict) -> None:
        with self._lock:
            self._events.append(dict(event, seq=len(self._events)))

    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    # -- state transitions ---------------------------------------------

    def mark_running(self) -> None:
        with self._lock:
            self.state = RUNNING

    def complete(self, bundle_bytes: bytes) -> None:
        with self._lock:
            self.bundle_bytes = bundle_bytes
            self.state = DONE
            self.finished_s = time.time()

    def fail(self, error: str) -> None:
        with self._lock:
            self.error = error
            self.state = FAILED
            self.finished_s = time.time()

    def status_dict(self) -> dict:
        """The ``GET /jobs/<id>`` document."""
        with self._lock:
            return {
                "job_id": self.job_id,
                "kind": self.spec["kind"],
                "state": self.state,
                "dedupe": self.dedupe,
                "submissions": self.submissions,
                "error": self.error,
                "spec": self.spec,
                "events": [dict(e, seq=i) for i, e in enumerate(self._events)],
            }


class JobManager:
    """Owns job records, the worker pool, and the service metrics."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
        workers: int = 2,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be positive, got {workers}")
        self.cache = cache
        self.jobs = jobs
        self.max_workers = workers
        self.metrics = MetricsRegistry(enabled=True)
        self._records: Dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._busy = 0
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self._closed = False

    # -- submission ----------------------------------------------------

    def submit(self, raw_spec: Any) -> Tuple[JobRecord, str]:
        """Canonicalize, dedupe, and (when cold) schedule one spec.

        Returns the job record plus *this submission's* disposition —
        one of :data:`DEDUPE_MISS` (newly scheduled),
        :data:`DEDUPE_INFLIGHT` (attached to a pending/running job),
        :data:`DEDUPE_COMPLETED` (an in-memory finished job), or
        :data:`DEDUPE_BUNDLE_CACHE` (rehydrated from the on-disk bundle
        store).  Raises :class:`~repro.errors.ServiceError` on a
        malformed spec or after :meth:`shutdown`.
        """
        spec = canonicalize_spec(raw_spec)
        key = job_key(spec)
        m = self.metrics
        with self._lock:
            if self._closed:
                raise ServiceError("service is shutting down")
            m.counter("service.jobs.submitted").inc()
            record = self._records.get(key)
            if record is not None:
                record.submissions += 1
                if record.state in (PENDING, RUNNING):
                    m.counter("service.jobs.deduped_inflight").inc()
                    return record, DEDUPE_INFLIGHT
                m.counter("service.jobs.deduped_completed").inc()
                return record, DEDUPE_COMPLETED
            bundle = self.cache.get_bundle(key) if self.cache is not None else None
            if bundle is not None:
                record = JobRecord(key, spec, DEDUPE_BUNDLE_CACHE)
                record.complete(canonical_json(bundle).encode("utf-8"))
                record.add_event({"type": "state", "state": DONE,
                                  "source": "bundle-cache"})
                m.counter("service.jobs.bundle_hits").inc()
                self._records[key] = record
                return record, DEDUPE_BUNDLE_CACHE
            record = JobRecord(key, spec, DEDUPE_MISS)
            self._records[key] = record
            m.counter("service.jobs.scheduled").inc()
            self._pool.submit(self._run, record)
            return record, DEDUPE_MISS

    # -- execution (worker threads) ------------------------------------

    def _run(self, record: JobRecord) -> None:
        record.mark_running()
        record.add_event({"type": "state", "state": RUNNING})
        with self._lock:
            self._busy += 1
        obs = self._job_observability(record)
        try:
            bundle = execute_spec(
                record.spec,
                cache=self.cache,
                jobs=self.jobs,
                progress=self._progress_callback(record),
                obs=obs,
            )
        except ReproError as exc:
            record.fail(str(exc))
            record.add_event({"type": "state", "state": FAILED, "error": str(exc)})
            with self._lock:
                self.metrics.counter("service.jobs.failed").inc()
        else:
            encoded = canonical_json(bundle).encode("utf-8")
            if self.cache is not None:
                self.cache.put_bundle(record.job_id, bundle)
            record.complete(encoded)
            record.add_event({"type": "state", "state": DONE})
            with self._lock:
                self.metrics.counter("service.jobs.executed").inc()
        finally:
            with self._lock:
                self._busy -= 1
                self._merge_cell_counters(obs)

    def _job_observability(self, record: JobRecord) -> Observability:
        """A per-job enabled bundle whose tracer streams shallow spans
        into the job's progress feed as they complete."""

        def sink(event: dict) -> None:
            if event.get("depth", 0) < _MAX_STREAMED_DEPTH:
                record.add_event(
                    {
                        "type": event["type"],
                        "name": event["name"],
                        "seconds": round(event.get("dur_s", 0.0), 6),
                        "args": event.get("args", {}),
                    }
                )

        return Observability(
            metrics=MetricsRegistry(enabled=True),
            tracer=Tracer(enabled=True, sink=sink),
        )

    def _progress_callback(self, record: JobRecord):
        def progress(outcome: CellOutcome, index: int, total: int) -> None:
            record.add_event(
                {
                    "type": "cell",
                    "label": outcome.label,
                    "cache_hit": outcome.cache_hit,
                    "seconds": round(outcome.seconds, 6),
                    "index": index,
                    "total": total,
                }
            )

        return progress

    def _merge_cell_counters(self, obs: Observability) -> None:
        """Fold one job's coordinator-side cell counters into the
        service totals (callers hold ``self._lock``)."""
        for name in ("eval.cache.lookups", "eval.cache.hits", "eval.cache.misses"):
            value = obs.metrics.counter(name).value
            if value:
                self.metrics.counter(name).inc(value)

    # -- queries -------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def stats(self) -> dict:
        """The ``GET /stats`` document: dedupe counters, cell cache hit
        ratio, queue depth, and worker utilization."""
        with self._lock:
            snap = self.metrics.snapshot()["counters"]
            counters = {
                name.split(".", 2)[2]: value
                for name, value in snap.items()
                if name.startswith("service.jobs.")
            }
            cells = {
                "lookups": snap.get("eval.cache.lookups", 0),
                "hits": snap.get("eval.cache.hits", 0),
                "misses": snap.get("eval.cache.misses", 0),
            }
            states: Dict[str, int] = {
                PENDING: 0, RUNNING: 0, DONE: 0, FAILED: 0
            }
            for record in self._records.values():
                states[record.state] += 1
            busy = self._busy
        cells["hit_ratio"] = (
            cells["hits"] / cells["lookups"] if cells["lookups"] else None
        )
        stats = {
            "jobs": dict(counters, states=states),
            "cells": cells,
            "queue_depth": states[PENDING],
            "workers": {
                "max": self.max_workers,
                "busy": busy,
                "utilization": busy / self.max_workers,
            },
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats

    # -- lifecycle -----------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions and (optionally) drain the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait)
