"""Blocking HTTP client for the job API (``repro submit``'s engine).

Stdlib-only (:mod:`urllib.request`), so any machine with Python can
submit work to a running service.  All methods raise
:class:`~repro.errors.ServiceError` with the server's error message on
a non-2xx response.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request as UrlRequest
from urllib.request import urlopen

from repro.errors import ServiceError

#: Job states the client considers terminal.
_TERMINAL = ("done", "failed")


class ServiceClient:
    """Talks to one service instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- raw HTTP ------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> bytes:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = UrlRequest(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            try:
                detail = json.loads(detail)["error"]
            except (ValueError, KeyError, TypeError):
                pass
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}: {detail}"
            )
        except URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            )

    def _json(self, method: str, path: str, payload: Optional[dict] = None) -> Any:
        raw = self._request(method, path, payload)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"service returned invalid JSON for {path}: {exc}")

    # -- API -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/stats")

    def submit(self, spec: dict) -> Dict[str, Any]:
        """Submit a workload spec; returns the submission receipt
        (``job_id``, ``state``, ``dedupe``)."""
        return self._json("POST", "/jobs", spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def result_bytes(self, job_id: str) -> bytes:
        """The canonical result-bundle bytes — the byte-identity
        surface of the service determinism contract."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_bytes(job_id).decode("utf-8"))

    def shutdown(self) -> Dict[str, Any]:
        return self._json("POST", "/shutdown")

    def wait(
        self, job_id: str, poll_interval: float = 0.2, timeout: float = 600.0
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the
        final status document.  Raises on timeout — never on a failed
        job (the caller inspects ``state``)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in _TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll_interval)
