"""Job specs: validation, canonicalization, and execution.

A client submits a workload spec as a JSON object; this module turns
it into the *canonical* form the service dedupes on.  Canonicalization
fills every default explicitly, so two specs asking for the same work
with different amounts of shorthand produce the same canonical dict —
and therefore the same :func:`job_key`, the content address every
layer of deduplication (in-flight single-flight, in-memory completed
jobs, the on-disk bundle store) shares.

Three job kinds, each riding the existing content-addressed cells:

* ``synthesize`` — one :class:`~repro.eval.parallel.SynthesisCell`
  (or a portfolio of them) through :func:`~repro.eval.parallel.run_cells`,
  plus a :class:`~repro.verify.NetworkCertificate` of the winner and
  optional saturation curves of the generated network;
* ``simulate`` — :class:`~repro.eval.parallel.PerformanceCell` per
  requested topology;
* ``sweep`` — :func:`~repro.sweeps.run_sweep`, whose measurements are
  :class:`~repro.eval.parallel.OpenLoopCell` grids internally.

Determinism contract: :func:`execute_spec` builds the result bundle
exclusively from cell payloads (byte-identity pinned by the eval
determinism harness), pure certification, and the canonical spec — no
timings, no cache state — so a job's bundle is byte-identical whether
it is served cold, warm, or deduped mid-flight.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import ServiceError
from repro.eval.parallel import (
    PerformanceCell,
    ProgressCallback,
    ResultCache,
    SynthesisCell,
    code_version_tag,
    run_cells,
)
from repro.eval.serialize import canonical_json
from repro.obs import DISABLED, Observability
from repro.workloads.nas import BENCHMARK_NAMES

#: Version component of every job key: bundles change shape with this
#: schema or with the cell cache schema, and either must invalidate
#: completed-bundle dedupe.
SERVICE_SCHEMA = 1

JOB_KINDS = ("synthesize", "simulate", "sweep")

_SIM_TOPOLOGIES = ("crossbar", "mesh", "torus", "generated")
_SWEEP_TOPOLOGIES = ("mesh", "torus", "crossbar", "generated", "generated-spare")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def _take_int(
    spec: Dict[str, Any], field: str, default: int, minimum: int = 0
) -> int:
    value = spec.pop(field, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool) and value >= minimum,
        f"{field!r} must be an integer >= {minimum}, got {value!r}",
    )
    return value


def _take_float(
    spec: Dict[str, Any], field: str, default: float
) -> float:
    value = spec.pop(field, default)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{field!r} must be a number, got {value!r}",
    )
    return float(value)


def _take_benchmark(spec: Dict[str, Any]) -> str:
    value = spec.pop("benchmark", None)
    _require(
        value in BENCHMARK_NAMES,
        f"'benchmark' must be one of {BENCHMARK_NAMES}, got {value!r}",
    )
    return str(value)


def _reject_unknown(spec: Dict[str, Any], kind: str) -> None:
    _require(
        not spec,
        f"unknown field(s) for {kind!r} job: {sorted(spec)}",
    )


def _canonical_synthesize(spec: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "kind": "synthesize",
        "benchmark": _take_benchmark(spec),
        "nodes": _take_int(spec, "nodes", 16, minimum=2),
        "seed": _take_int(spec, "seed", 0),
        "restarts": _take_int(spec, "restarts", 8, minimum=1),
        "max_degree": _take_int(spec, "max_degree", 5, minimum=2),
    }
    portfolio = spec.pop("portfolio", None)
    if portfolio is not None:
        _require(
            isinstance(portfolio, int)
            and not isinstance(portfolio, bool)
            and portfolio >= 1,
            f"'portfolio' must be a positive integer or null, got {portfolio!r}",
        )
        objective = spec.pop("objective", "links")
        from repro.synthesis.portfolio import OBJECTIVES

        _require(
            objective in OBJECTIVES,
            f"'objective' must be one of {sorted(OBJECTIVES)}, got {objective!r}",
        )
        out["portfolio"] = portfolio
        out["objective"] = objective
    else:
        _require(
            "objective" not in spec,
            "'objective' is only meaningful with 'portfolio'",
        )
        out["portfolio"] = None
    curves = spec.pop("curves", None)
    out["curves"] = _canonical_curves(curves)
    _reject_unknown(spec, "synthesize")
    return out


def _canonical_curves(curves: Any) -> Optional[Dict[str, Any]]:
    """Canonical form of a synthesize job's optional curve request."""
    if curves is None:
        return None
    _require(
        isinstance(curves, Mapping),
        f"'curves' must be an object or null, got {curves!r}",
    )
    curves = dict(curves)
    patterns = curves.pop("patterns", ["uniform"])
    _require(
        isinstance(patterns, list) and patterns
        and all(isinstance(p, str) for p in patterns),
        f"'curves.patterns' must be a non-empty list of pattern specs, "
        f"got {patterns!r}",
    )
    from repro.sweeps.patterns import canonical_spec as canonical_pattern

    out = {
        "patterns": [canonical_pattern(p) for p in patterns],
        "points": _take_int(curves, "points", 4, minimum=1),
        "refine": _take_int(curves, "refine", 2),
        "min_rate": _take_float(curves, "min_rate", 0.05),
        "max_rate": _take_float(curves, "max_rate", 1.0),
    }
    _reject_unknown(curves, "synthesize.curves")
    return out


def _canonical_simulate(spec: Dict[str, Any]) -> Dict[str, Any]:
    topologies = spec.pop("topologies", ["generated"])
    _require(
        isinstance(topologies, list) and topologies,
        f"'topologies' must be a non-empty list, got {topologies!r}",
    )
    unknown = [t for t in topologies if t not in _SIM_TOPOLOGIES]
    _require(
        not unknown,
        f"unknown topologies {unknown}; choose from {_SIM_TOPOLOGIES}",
    )
    _require(
        len(set(topologies)) == len(topologies),
        f"'topologies' has duplicates: {topologies!r}",
    )
    out = {
        "kind": "simulate",
        "benchmark": _take_benchmark(spec),
        "nodes": _take_int(spec, "nodes", 16, minimum=2),
        "seed": _take_int(spec, "seed", 0),
        "restarts": _take_int(spec, "restarts", 8, minimum=1),
        # Sorted: topology order does not change any per-topology
        # result, so it must not change the job key either.
        "topologies": sorted(topologies),
    }
    _reject_unknown(spec, "simulate")
    return out


def _canonical_sweep(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.sweeps.patterns import canonical_spec as canonical_pattern

    topology = spec.pop("topology", "mesh")
    _require(
        topology in _SWEEP_TOPOLOGIES,
        f"'topology' must be one of {_SWEEP_TOPOLOGIES}, got {topology!r}",
    )
    pattern = spec.pop("pattern", "uniform")
    _require(isinstance(pattern, str), f"'pattern' must be a string, got {pattern!r}")
    benchmark = spec.pop("benchmark", "cg")
    _require(
        benchmark in BENCHMARK_NAMES,
        f"'benchmark' must be one of {BENCHMARK_NAMES}, got {benchmark!r}",
    )
    from repro.sweeps.driver import CRITERIA

    criterion = spec.pop("criterion", "mean-knee")
    _require(
        criterion in CRITERIA,
        f"'criterion' must be one of {CRITERIA}, got {criterion!r}",
    )
    out = {
        "kind": "sweep",
        "topology": topology,
        "pattern": canonical_pattern(pattern),
        "benchmark": benchmark,
        "nodes": _take_int(spec, "nodes", 16, minimum=2),
        "seed": _take_int(spec, "seed", 0),
        "restarts": _take_int(spec, "restarts", 8, minimum=1),
        "points": _take_int(spec, "points", 6, minimum=1),
        "refine": _take_int(spec, "refine", 4),
        "min_rate": _take_float(spec, "min_rate", 0.05),
        "max_rate": _take_float(spec, "max_rate", 1.0),
        "criterion": criterion,
    }
    _reject_unknown(spec, "sweep")
    return out


_CANONICALIZERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "synthesize": _canonical_synthesize,
    "simulate": _canonical_simulate,
    "sweep": _canonical_sweep,
}


def canonicalize_spec(raw: Any) -> Dict[str, Any]:
    """Validate a submitted spec and fill every default explicitly.

    Raises :class:`~repro.errors.ServiceError` on anything malformed:
    unknown kinds, unknown fields (typos must not silently become
    defaults), or out-of-range values.
    """
    _require(
        isinstance(raw, Mapping),
        f"job spec must be a JSON object, got {type(raw).__name__}",
    )
    spec = dict(raw)
    kind = spec.pop("kind", None)
    _require(
        kind in JOB_KINDS,
        f"'kind' must be one of {JOB_KINDS}, got {kind!r}",
    )
    return _CANONICALIZERS[str(kind)](spec)


def job_key(spec: Mapping[str, Any]) -> str:
    """Content address of one canonical spec.

    Covers the service schema and the cell-cache version tag, so a
    bundle produced by an older code version can never satisfy a new
    submission.
    """
    return hashlib.sha256(
        canonical_json(
            {
                "service": SERVICE_SCHEMA,
                "version": code_version_tag(),
                "spec": dict(spec),
            }
        ).encode("utf-8")
    ).hexdigest()


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _execute_synthesize(
    spec: Mapping[str, Any],
    cache: Optional[ResultCache],
    jobs: Optional[int],
    progress: Optional[ProgressCallback],
    obs: Observability,
) -> dict:
    from repro.synthesis.constraints import DesignConstraints
    from repro.verify import certify
    from repro.workloads.nas import benchmark as load_benchmark

    pattern = load_benchmark(spec["benchmark"], spec["nodes"]).pattern
    constraints = DesignConstraints(max_degree=spec["max_degree"])
    portfolio_summary: Optional[dict] = None
    if spec["portfolio"] is not None:
        from repro.synthesis.portfolio import PortfolioConfig, synthesize_portfolio

        result = synthesize_portfolio(
            pattern,
            constraints=constraints,
            config=PortfolioConfig(
                size=spec["portfolio"],
                seed_base=spec["seed"],
                objective=spec["objective"],
                restarts=spec["restarts"],
            ),
            jobs=jobs,
            cache=cache,
            progress=progress,
            obs=obs,
        )
        design = result.design
        portfolio_summary = result.summary_dict()
    else:
        from repro.eval.serialize import design_from_dict

        cell = SynthesisCell(
            label=f"synth:{pattern.name}:s{spec['seed']}",
            pattern=pattern,
            seed=spec["seed"],
            constraints=constraints,
            restarts=spec["restarts"],
        )
        (outcome,) = run_cells(
            [cell], jobs=jobs, cache=cache, progress=progress, obs=obs
        )
        if outcome.payload.get("status") != "ok":
            raise ServiceError(
                f"synthesis infeasible for {pattern.name} "
                f"(seed {spec['seed']}): {outcome.payload.get('error')}"
            )
        design = design_from_dict(outcome.payload["design"], pattern)
    from repro.eval.serialize import design_to_dict

    certificate = certify(
        design.topology, pattern, max_degree=spec["max_degree"]
    )
    curves: List[dict] = []
    if spec["curves"] is not None:
        from repro.floorplan import place
        from repro.sweeps.driver import SweepConfig, run_sweep

        plan = place(design.network, seed=spec["seed"])
        for pattern_spec in spec["curves"]["patterns"]:
            curve = run_sweep(
                design.topology,
                pattern_spec,
                sweep=SweepConfig(
                    min_rate=spec["curves"]["min_rate"],
                    max_rate=spec["curves"]["max_rate"],
                    initial_points=spec["curves"]["points"],
                    refine_iters=spec["curves"]["refine"],
                    seed=spec["seed"],
                ),
                link_delays=plan.link_delays(),
                jobs=jobs,
                cache=cache,
                progress=progress,
                obs=obs,
            )
            curves.append(curve.to_dict())
    return {
        "schema": SERVICE_SCHEMA,
        "kind": "synthesize",
        "spec": dict(spec),
        "design": design_to_dict(design),
        "network_certificate": certificate.to_dict(),
        "portfolio": portfolio_summary,
        "curves": curves,
    }


def _execute_simulate(
    spec: Mapping[str, Any],
    cache: Optional[ResultCache],
    jobs: Optional[int],
    progress: Optional[ProgressCallback],
    obs: Observability,
) -> dict:
    from repro.eval.runner import prepare
    from repro.simulator.config import SimConfig

    setup = prepare(
        spec["benchmark"], spec["nodes"], seed=spec["seed"], restarts=spec["restarts"]
    )
    config = SimConfig()
    cells = [
        PerformanceCell(
            label=f"perf:{setup.name}:{kind}",
            program=setup.benchmark.program,
            topology=setup.topology(kind),
            config=config,
            link_delays=setup.link_delays(kind),
        )
        for kind in spec["topologies"]
    ]
    outcomes = run_cells(cells, jobs=jobs, cache=cache, progress=progress, obs=obs)
    return {
        "schema": SERVICE_SCHEMA,
        "kind": "simulate",
        "spec": dict(spec),
        "results": {
            kind: outcome.payload
            for kind, outcome in zip(spec["topologies"], outcomes)
        },
    }


def _execute_sweep(
    spec: Mapping[str, Any],
    cache: Optional[ResultCache],
    jobs: Optional[int],
    progress: Optional[ProgressCallback],
    obs: Observability,
) -> dict:
    from repro.sweeps.driver import SweepConfig, run_sweep, study_topology

    label, topology, link_delays = study_topology(
        spec["topology"],
        spec["nodes"],
        benchmark=spec["benchmark"],
        seed=spec["seed"],
        restarts=spec["restarts"],
    )
    curve = run_sweep(
        topology,
        spec["pattern"],
        sweep=SweepConfig(
            min_rate=spec["min_rate"],
            max_rate=spec["max_rate"],
            initial_points=spec["points"],
            refine_iters=spec["refine"],
            seed=spec["seed"],
            criterion=spec["criterion"],
        ),
        link_delays=link_delays,
        jobs=jobs,
        cache=cache,
        progress=progress,
        obs=obs,
        label=label,
    )
    return {
        "schema": SERVICE_SCHEMA,
        "kind": "sweep",
        "spec": dict(spec),
        "curve": curve.to_dict(),
    }


_EXECUTORS = {
    "synthesize": _execute_synthesize,
    "simulate": _execute_simulate,
    "sweep": _execute_sweep,
}


def execute_spec(
    spec: Mapping[str, Any],
    cache: Optional[ResultCache] = None,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Observability] = None,
) -> dict:
    """Compute the result bundle of one *canonical* spec.

    Every expensive step runs through :func:`run_cells` against
    ``cache``, so repeats are cache hits and the bundle is
    byte-identical (under :func:`~repro.eval.serialize.canonical_json`)
    across cold, warm, serial and fanned execution.
    """
    obs = obs if obs is not None else DISABLED
    with obs.tracer.span("service.job", kind=spec["kind"]):
        return _EXECUTORS[spec["kind"]](spec, cache, jobs, progress, obs)
