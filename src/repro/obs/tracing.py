"""Structured span tracing with JSONL and Chrome-trace export.

A :class:`Tracer` records nested spans (wall-clock durations) and
instant events (simulated-cycle markers).  Spans nest via a stack, so
``repro profile`` can print an indented phase tree, and the whole trace
exports either as JSONL (one event per line, easy to grep) or as the
Chrome ``chrome://tracing`` / Perfetto JSON format.

Wall-clock data lives only in the dedicated ``ts``/``dur``/``start_s``
/``dur_s`` fields; everything else (names, simulated cycles, counts in
``args``) is deterministic.  Traces are observability artifacts — they
never feed result payloads or cache keys, so the determinism harness is
unaffected by tracing being on or off.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

# Chrome trace event phases used by the exporter.
_PHASE_SPAN = "X"  # complete event (ts + dur)
_PHASE_INSTANT = "i"  # instant event


class Tracer:
    """Records spans and instant events on one logical thread.

    ``sink``, when given, is invoked with each event dictionary the
    moment it is recorded — the streaming hook the service layer uses
    to forward a job's spans to its progress feed while the job is
    still running (the buffered ``events`` list is unaffected).  Sink
    exceptions are deliberately not swallowed: a broken sink is a
    programming error, not an observability condition.
    """

    def __init__(
        self,
        enabled: bool = True,
        sink: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.enabled = enabled
        self.events: List[dict] = []
        self.sink = sink
        self._origin = time.perf_counter()
        self._depth = 0

    def _record(self, event: dict) -> None:
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)

    def _now(self) -> float:
        return time.perf_counter() - self._origin

    @contextmanager
    def span(self, name: str, **args) -> Iterator[None]:
        """Time a phase; nests with other spans opened inside it."""
        if not self.enabled:
            yield
            return
        start = self._now()
        depth = self._depth
        self._depth += 1
        try:
            yield
        finally:
            self._depth = depth
            end = self._now()
            self._record(
                {
                    "type": "span",
                    "name": name,
                    "depth": depth,
                    "start_s": start,
                    "dur_s": end - start,
                    "args": args,
                }
            )

    def complete(self, name: str, seconds: float, **args) -> None:
        """Record an already-timed span (e.g. a cell outcome whose
        duration was measured elsewhere) ending now."""
        if not self.enabled:
            return
        end = self._now()
        self._record(
            {
                "type": "span",
                "name": name,
                "depth": self._depth,
                "start_s": max(0.0, end - seconds),
                "dur_s": seconds,
                "args": args,
            }
        )

    def event(self, name: str, cycle: Optional[int] = None, **args) -> None:
        """Record an instant event, stamped with a simulated cycle."""
        if not self.enabled:
            return
        if cycle is not None:
            args = dict(args, cycle=cycle)
        self._record(
            {
                "type": "instant",
                "name": name,
                "depth": self._depth,
                "start_s": self._now(),
                "args": args,
            }
        )

    # -- queries -------------------------------------------------------

    def spans(self) -> List[dict]:
        return [e for e in self.events if e["type"] == "span"]

    def instants(self) -> List[dict]:
        return [e for e in self.events if e["type"] == "instant"]

    # -- export --------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, in recording order."""
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events)

    def chrome_trace(self, process_name: str = "repro") -> dict:
        """The Chrome tracing JSON object (load via ``chrome://tracing``
        or https://ui.perfetto.dev)."""
        trace_events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for e in self.events:
            if e["type"] == "span":
                trace_events.append(
                    {
                        "name": e["name"],
                        "cat": e["name"].split(".", 1)[0],
                        "ph": _PHASE_SPAN,
                        "ts": e["start_s"] * 1e6,
                        "dur": e["dur_s"] * 1e6,
                        "pid": 0,
                        "tid": 0,
                        "args": e["args"],
                    }
                )
            else:
                trace_events.append(
                    {
                        "name": e["name"],
                        "cat": e["name"].split(".", 1)[0],
                        "ph": _PHASE_INSTANT,
                        "ts": e["start_s"] * 1e6,
                        "s": "g",
                        "pid": 0,
                        "tid": 0,
                        "args": e["args"],
                    }
                )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        """Write the trace to ``path``: JSONL when the name ends in
        ``.jsonl``, Chrome trace JSON otherwise."""
        with open(path, "w", encoding="utf-8") as fh:
            if path.endswith(".jsonl"):
                fh.write(self.to_jsonl())
                fh.write("\n")
            else:
                json.dump(self.chrome_trace(), fh, indent=2)
                fh.write("\n")


def validate_chrome_trace(trace: dict) -> List[str]:
    """Schema check of a Chrome-trace object; returns problem strings
    (empty when valid).  Used by tests and the CI smoke step."""
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"event {i}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                problems.append(f"event {i}: missing {field!r}")
        ph = e.get("ph")
        if ph not in ("X", "i", "B", "E", "M", "C"):
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph in ("X", "i") and not isinstance(e.get("ts"), (int, float)):
            problems.append(f"event {i}: missing numeric ts")
        if ph == "X" and not isinstance(e.get("dur"), (int, float)):
            problems.append(f"event {i}: complete event missing numeric dur")
        if "args" in e and not isinstance(e["args"], dict):
            problems.append(f"event {i}: args must be an object")
    return problems


NULL_TRACER = Tracer(enabled=False)
