"""Observability: metrics, tracing, and the profile report.

The subsystem is zero-dependency and off by default.  Hot layers
(synthesis, the flit-level engine, the eval runner) accept an optional
:class:`Observability` bundle; when none is supplied they run with the
shared :data:`DISABLED` bundle, whose instruments are no-ops, and gate
their per-cycle work on ``obs.enabled`` so the disabled overhead stays
within the <2% budget pinned by ``bench_simulator.py``.

Determinism contract: every metric value is derived from simulated
state (cycles, counts, energies).  Wall-clock data is confined to
tracer span timestamps and the registry's dedicated ``wall`` section,
both excluded from canonical metric JSON — so the PR 2 byte-identity
harness passes with collection enabled.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from repro.obs.tracing import NULL_TRACER, Tracer, validate_chrome_trace

# Counters every `repro profile` run must emit; the CI smoke step greps
# the metrics output for each of these names.
MANDATORY_COUNTERS = (
    "synthesis.bisections",
    "synthesis.route_moves",
    "synthesis.color.pipes",
    "sim.flits_injected",
    "sim.flit_hops",
    "sim.packets_delivered",
    "sim.credit_stalls",
    "eval.cache.lookups",
)


class Observability:
    """A metrics registry plus a tracer, handed through the hot layers.

    Identity-hashed (no value equality) so it can ride through
    ``functools.lru_cache``-decorated call chains unharmed.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        sample_every: int = 128,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.sample_every = sample_every

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled


def enabled_observability(sample_every: int = 128) -> Observability:
    """A fresh, fully enabled bundle (its own registry and tracer)."""
    return Observability(
        metrics=MetricsRegistry(enabled=True),
        tracer=Tracer(enabled=True),
        sample_every=sample_every,
    )


#: The shared no-op bundle instrumented code falls back to.
DISABLED = Observability(NULL_REGISTRY, NULL_TRACER)

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MANDATORY_COUNTERS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Observability",
    "Series",
    "Tracer",
    "enabled_observability",
    "validate_chrome_trace",
]
