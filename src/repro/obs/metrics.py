"""Zero-dependency metrics: counters, gauges, histograms, series.

Every instrument hangs off a :class:`MetricsRegistry`.  A disabled
registry hands out shared null instruments whose mutators are no-ops,
so instrumented code can keep unconditional ``counter.inc()`` calls on
warm paths; truly hot paths (per-flit, per-cycle) should additionally
gate on ``registry.enabled`` or a cached boolean, which is how the
simulator engine keeps the disabled overhead under the 2% budget of
``bench_simulator.py``.

Determinism: every value recorded through this module must be derived
from simulated state (cycles, counts, energies) — never from the wall
clock.  Wall-clock timings belong to the tracer
(:mod:`repro.obs.tracing`) or to the registry's dedicated ``wall``
section (:meth:`MetricsRegistry.record_wall`), which
:meth:`MetricsRegistry.snapshot` excludes by default so canonical
metric output is byte-stable across runs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Summary statistics plus power-of-two bucket counts.

    Bucket ``k`` counts observations in ``[2**k, 2**(k+1))``; bucket 0
    also absorbs values below 1.  Compact enough to sit on delivery
    paths and still answer "what does the latency distribution look
    like" without storing every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = max(0, int(value).bit_length() - 1) if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Series:
    """An (x, y) time series — x is a simulated coordinate (cycle,
    annealing step, ...), never wall time."""

    __slots__ = ("name", "points")

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[Number, Number]] = []

    def append(self, x: Number, y: Number) -> None:
        self.points.append((x, y))


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:  # pragma: no cover - trivial
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:  # pragma: no cover - trivial
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: Number) -> None:  # pragma: no cover - trivial
        pass


class _NullSeries(Series):
    __slots__ = ()

    def append(self, x: Number, y: Number) -> None:  # pragma: no cover - trivial
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")
_NULL_SERIES = _NullSeries("null")


class MetricsRegistry:
    """Creates and holds named instruments.

    Instruments are created on first use and shared by name, so two
    call sites incrementing ``sim.retransmissions`` add to the same
    counter.  A disabled registry returns null instruments and records
    nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, Series] = {}
        self._wall: Dict[str, float] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str) -> Series:
        if not self.enabled:
            return _NULL_SERIES
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def record_wall(self, name: str, seconds: float) -> None:
        """Record a wall-clock duration in the isolated ``wall`` section.

        Wall times never enter the deterministic snapshot; they exist so
        ``repro profile`` can print phase timings next to counters.
        """
        if self.enabled:
            self._wall[name] = self._wall.get(name, 0.0) + seconds

    # -- output --------------------------------------------------------

    def snapshot(self, include_wall: bool = False) -> dict:
        """Deterministic dictionary of everything recorded.

        With ``include_wall=False`` (the default) the result contains
        only simulated-coordinate data and is byte-stable across
        identical runs; ``include_wall=True`` adds the ``wall`` section
        for human-facing output.
        """
        out = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "buckets": {str(k): v for k, v in sorted(h.buckets.items())},
                }
                for n, h in sorted(self._histograms.items())
            },
            "series": {
                n: [[x, y] for x, y in s.points]
                for n, s in sorted(self._series.items())
            },
        }
        if include_wall:
            out["wall"] = {n: s for n, s in sorted(self._wall.items())}
        return out

    def canonical_json(self) -> str:
        """Canonical (wall-free) JSON form — byte-identical across runs
        with identical simulated behavior."""
        return json.dumps(
            self.snapshot(include_wall=False),
            sort_keys=True,
            separators=(",", ":"),
        )

    def write_json(self, path: str, include_wall: bool = True) -> None:
        """Write the snapshot to ``path`` (wall section included, under
        its dedicated key, unless disabled)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(include_wall=include_wall), fh, indent=2, sort_keys=True)
            fh.write("\n")


NULL_REGISTRY = MetricsRegistry(enabled=False)
