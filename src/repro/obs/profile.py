"""The ``repro profile`` report: one observed evaluation, summarized.

Runs one benchmark setup plus its per-topology simulations with a fully
enabled :class:`~repro.obs.Observability` bundle, then renders a
phase/time/counter breakdown.  Cells go through the parallel runner's
serial path so the cache phase is exercised (and counted) exactly like
a real evaluation run.

This module imports the eval layer, so it must never be imported from
``repro.obs.__init__`` — the CLI loads it lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.parallel import PerformanceCell, ResultCache, run_cells
from repro.eval.runner import TOPOLOGY_ORDER, prepare
from repro.obs import MANDATORY_COUNTERS, Observability, enabled_observability
from repro.simulator.config import SimConfig


@dataclass
class ProfileReport:
    """Everything one profiled run produced."""

    benchmark: str
    n: int
    seed: int
    obs: Observability
    outcomes: list

    def render(self) -> str:
        return render_report(self)


def run_profile(
    benchmark: str,
    n: int,
    seed: int = 0,
    restarts: int = 8,
    kinds: Sequence[str] = TOPOLOGY_ORDER,
    config: Optional[SimConfig] = None,
    cache: Optional[ResultCache] = None,
    sample_every: int = 128,
    obs: Optional[Observability] = None,
) -> ProfileReport:
    """Run one benchmark end to end under full observability.

    The setup (synthesis + floorplan) and every simulation carry the
    same bundle, so the report covers the whole pipeline: setup spans,
    per-bisection synthesis spans, simulator counters, and the eval
    cache phase.  Cells run serially — observability cannot cross a
    process-pool boundary.
    """
    obs = obs if obs is not None else enabled_observability(sample_every=sample_every)
    config = config or SimConfig()
    with obs.tracer.span("profile.setup", benchmark=benchmark, n=n):
        setup = prepare(benchmark, n, seed=seed, restarts=restarts, obs=obs)
    cells = [
        PerformanceCell(
            label=f"{benchmark}-{n}/{kind}",
            program=setup.benchmark.program,
            topology=setup.topology(kind),
            config=config,
            link_delays=setup.link_delays(kind),
        )
        for kind in kinds
    ]
    with obs.tracer.span("profile.simulate", cells=len(cells)):
        outcomes = run_cells(cells, jobs=None, cache=cache, obs=obs)
    return ProfileReport(
        benchmark=benchmark, n=n, seed=seed, obs=obs, outcomes=outcomes
    )


def _aggregate_spans(spans: List[dict]) -> List[Tuple[str, int, float]]:
    """(name, count, total seconds) per span name, by descending time."""
    totals: Dict[str, Tuple[int, float]] = {}
    for span in spans:
        count, seconds = totals.get(span["name"], (0, 0.0))
        totals[span["name"]] = (count + 1, seconds + span["dur_s"])
    return sorted(
        ((name, c, s) for name, (c, s) in totals.items()),
        key=lambda row: (-row[2], row[0]),
    )


def render_report(report: ProfileReport) -> str:
    """Human-facing phase/time/counter breakdown table."""
    obs = report.obs
    lines: List[str] = [
        f"profile: {report.benchmark}-{report.n} (seed {report.seed})",
        "",
        f"{'phase':<40} {'count':>7} {'total':>10} {'mean':>10}",
    ]
    for name, count, seconds in _aggregate_spans(obs.tracer.spans()):
        lines.append(
            f"{name:<40} {count:>7} {seconds:>9.3f}s {seconds / count:>9.3f}s"
        )

    snapshot = obs.metrics.snapshot(include_wall=True)
    lines += ["", f"{'counter':<40} {'value':>10}"]
    for name, value in snapshot["counters"].items():
        lines.append(f"{name:<40} {value:>10}")
    # Mandatory counters must appear even when zero this run, so the CI
    # smoke grep (and a human scanning the table) sees the full set.
    for name in MANDATORY_COUNTERS:
        if name not in snapshot["counters"]:
            lines.append(f"{name:<40} {0:>10}")

    if snapshot["gauges"]:
        lines += ["", f"{'gauge':<40} {'value':>10}"]
        for name, value in snapshot["gauges"].items():
            lines.append(f"{name:<40} {value:>10}")

    if snapshot["histograms"]:
        lines += [
            "",
            f"{'histogram':<40} {'count':>7} {'mean':>9} {'min':>7} {'max':>7}",
        ]
        for name, h in snapshot["histograms"].items():
            lines.append(
                f"{name:<40} {h['count']:>7} {h['mean']:>9.1f} "
                f"{h['min']:>7} {h['max']:>7}"
            )

    cells = [o for o in report.outcomes]
    if cells:
        lines += ["", f"{'cell':<40} {'status':>10} {'seconds':>10}"]
        for outcome in cells:
            status = "cached" if outcome.cache_hit else "computed"
            lines.append(
                f"{outcome.label:<40} {status:>10} {outcome.seconds:>9.3f}s"
            )
    return "\n".join(lines)
