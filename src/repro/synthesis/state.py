"""Mutable state of the recursive-bisection methodology (paper Section 3).

The state tracks, at every step of the main partitioning algorithm:

* which processors sit on which switch,
* the switch-level route of every communication of the target pattern,
* the *pipes* — for each ordered switch pair, the set of communications
  crossing it in that direction — and their ``Fast_Color`` link
  estimates (cached, invalidated incrementally as routes change).

Routes are stored as switch paths; concrete links are only assigned at
finalization, when exact coloring fixes each pipe's width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import random

from repro.errors import SynthesisError
from repro.model.cliques import CliqueAnalysis
from repro.model.message import Communication
from repro.synthesis.fast_color import fast_color

SwitchPath = Tuple[int, ...]
PipeKey = Tuple[int, int]  # directed (from_switch, to_switch)


def normalize_path(path: Sequence[int]) -> SwitchPath:
    """Collapse revisits: keep the path simple.

    Consecutive duplicates disappear and any loop (a switch appearing
    twice) is spliced out by cutting back to its first occurrence.
    """
    out: List[int] = []
    for s in path:
        if s in out:
            del out[out.index(s) + 1 :]
        else:
            out.append(s)
    return tuple(out)


@dataclass
class StateSnapshot:
    """A restorable copy of the mutable parts of a synthesis state."""

    switch_procs: Dict[int, Set[int]]
    proc_switch: Dict[int, int]
    routes: Dict[Communication, SwitchPath]
    pipe_comms: Dict[PipeKey, Set[Communication]]
    estimates: Dict[FrozenSet[int], int]
    next_switch: int


class SynthesisState:
    """Partitioning state over a clique analysis of the target pattern."""

    def __init__(self, analysis: CliqueAnalysis) -> None:
        self.analysis = analysis
        self.max_cliques = analysis.max_cliques
        self.comms: Tuple[Communication, ...] = tuple(sorted(analysis.communications))
        self.num_processors = analysis.pattern.num_processes
        self.switch_procs: Dict[int, Set[int]] = {}
        self.proc_switch: Dict[int, int] = {}
        self.routes: Dict[Communication, SwitchPath] = {}
        self.pipe_comms: Dict[PipeKey, Set[Communication]] = {}
        self._estimates: Dict[FrozenSet[int], int] = {}
        self._next_switch = 0

    @classmethod
    def initial(cls, analysis: CliqueAnalysis) -> "SynthesisState":
        """The starting point: one mega-switch connecting all processors."""
        state = cls(analysis)
        mega = state._new_switch()
        for p in range(state.num_processors):
            state.switch_procs[mega].add(p)
            state.proc_switch[p] = mega
        for comm in state.comms:
            state.routes[comm] = (mega,)
        return state

    # -- switches ------------------------------------------------------

    def _new_switch(self) -> int:
        sid = self._next_switch
        self._next_switch += 1
        self.switch_procs[sid] = set()
        return sid

    @property
    def switches(self) -> Tuple[int, ...]:
        return tuple(sorted(self.switch_procs))

    def switch_of(self, processor: int) -> int:
        return self.proc_switch[processor]

    # -- routes and pipes ----------------------------------------------

    def route_of(self, comm: Communication) -> SwitchPath:
        return self.routes[comm]

    def set_route(self, comm: Communication, path: Sequence[int]) -> None:
        """Replace a communication's switch path, updating pipe sets."""
        new_path = normalize_path(path)
        self._check_route(comm, new_path)
        old_path = self.routes.get(comm)
        if old_path == new_path:
            return
        if old_path is not None:
            for u, v in zip(old_path, old_path[1:]):
                self.pipe_comms[(u, v)].discard(comm)
                self._estimates.pop(frozenset((u, v)), None)
        for u, v in zip(new_path, new_path[1:]):
            self.pipe_comms.setdefault((u, v), set()).add(comm)
            self._estimates.pop(frozenset((u, v)), None)
        self.routes[comm] = new_path

    def _check_route(self, comm: Communication, path: SwitchPath) -> None:
        if not path:
            raise SynthesisError(f"empty route for {comm}")
        if path[0] != self.proc_switch[comm.source]:
            raise SynthesisError(
                f"route for {comm} starts at S{path[0]}, "
                f"but its source sits on S{self.proc_switch[comm.source]}"
            )
        if path[-1] != self.proc_switch[comm.dest]:
            raise SynthesisError(
                f"route for {comm} ends at S{path[-1]}, "
                f"but its destination sits on S{self.proc_switch[comm.dest]}"
            )
        for s in path:
            if s not in self.switch_procs:
                raise SynthesisError(f"route for {comm} visits unknown switch S{s}")

    def pipe_forward(self, u: int, v: int) -> FrozenSet[Communication]:
        """Communications crossing the pipe in the ``u -> v`` direction."""
        return frozenset(self.pipe_comms.get((u, v), ()))

    def pipes(self) -> Tuple[FrozenSet[int], ...]:
        """All pipes (unordered switch pairs) with traffic in either direction."""
        seen = set()
        for (u, v), comms in self.pipe_comms.items():
            if comms:
                seen.add(frozenset((u, v)))
        return tuple(sorted(seen, key=sorted))

    def pipes_of(self, switch: int) -> Tuple[int, ...]:
        """Switches sharing a non-empty pipe with ``switch``."""
        out = set()
        for (u, v), comms in self.pipe_comms.items():
            if comms:
                if u == switch:
                    out.add(v)
                elif v == switch:
                    out.add(u)
        return tuple(sorted(out))

    def pipe_estimate(self, u: int, v: int) -> int:
        """``Fast_Color`` link estimate for the pipe between two switches."""
        key = frozenset((u, v))
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        est = fast_color(self.pipe_forward(u, v), self.pipe_forward(v, u), self.max_cliques)
        self._estimates[key] = est
        return est

    def estimated_degree(self, switch: int) -> int:
        """Estimated port count: processors + estimated pipe links."""
        return len(self.switch_procs[switch]) + sum(
            self.pipe_estimate(switch, other) for other in self.pipes_of(switch)
        )

    def total_links(self) -> int:
        """Sum of link estimates over every pipe (the synthesis objective)."""
        return sum(self.pipe_estimate(*sorted(pair)) for pair in self.pipes())

    def all_estimated_degrees(self) -> Dict[int, int]:
        """Estimated port count of every switch, in one pass over pipes."""
        deg = {s: len(procs) for s, procs in self.switch_procs.items()}
        seen = set()
        for (u, v), comms in self.pipe_comms.items():
            if not comms:
                continue
            key = frozenset((u, v))
            if key in seen:
                continue
            seen.add(key)
            est = self.pipe_estimate(u, v)
            deg[u] += est
            deg[v] += est
        return deg

    def objective(self, max_degree: int) -> Tuple[int, int]:
        """(total degree excess over ``max_degree``, total links) — the
        lexicographic objective of the global route optimizers."""
        deg = self.all_estimated_degrees()
        excess = sum(max(0, d - max_degree) for d in deg.values())
        return (excess, self.total_links())

    def local_links(self, switches: Iterable[int]) -> int:
        """Sum of link estimates over pipes incident to any given switch."""
        pairs = set()
        for s in switches:
            for other in self.pipes_of(s):
                pairs.add(frozenset((s, other)))
        return sum(self.pipe_estimate(*sorted(pair)) for pair in pairs)

    # -- partitioning moves ---------------------------------------------

    def split_switch(self, si: int, rng: random.Random) -> int:
        """Partition ``si``: create a sibling and move half the processors.

        The moved half is chosen uniformly at random (Appendix step 5);
        routes through ``si`` are rewritten with direct paths, i.e. each
        occurrence of ``si`` keeps its identity except at endpoints that
        moved.
        """
        procs = sorted(self.switch_procs[si])
        if len(procs) < 2:
            raise SynthesisError(f"cannot split switch S{si} with {len(procs)} processor(s)")
        sj = self._new_switch()
        moved = rng.sample(procs, len(procs) // 2)
        for p in moved:
            self.switch_procs[si].discard(p)
            self.switch_procs[sj].add(p)
            self.proc_switch[p] = sj
        for comm in self.comms:
            path = self.routes[comm]
            if si in path or self.proc_switch[comm.source] == sj or self.proc_switch[comm.dest] == sj:
                self.set_route(comm, self._endpoint_adjusted(comm, path))
        return sj

    def move_processor(self, processor: int, to_switch: int) -> None:
        """Move one processor to another switch, re-anchoring its routes.

        Routes of communications that start or end at the processor are
        re-anchored on the new switch directly (Appendix step 7 assumes
        direct paths when evaluating moves).
        """
        frm = self.proc_switch[processor]
        if frm == to_switch:
            return
        if to_switch not in self.switch_procs:
            raise SynthesisError(f"no switch S{to_switch}")
        self.switch_procs[frm].discard(processor)
        self.switch_procs[to_switch].add(processor)
        self.proc_switch[processor] = to_switch
        for comm in self.comms:
            if comm.source == processor or comm.dest == processor:
                self.set_route(comm, self._endpoint_adjusted(comm, self.routes[comm]))

    def _endpoint_adjusted(self, comm: Communication, path: SwitchPath) -> SwitchPath:
        """Re-anchor a path on the current switches of its endpoints.

        The interior of the old path is preserved (direct adjustment);
        :func:`normalize_path` splices out any loop the re-anchoring
        introduces.
        """
        src = self.proc_switch[comm.source]
        dst = self.proc_switch[comm.dest]
        if src == dst:
            return (src,)
        return normalize_path([src, *path[1:-1], dst])

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        """Capture the mutable state for later :meth:`restore`."""
        return StateSnapshot(
            switch_procs={s: set(ps) for s, ps in self.switch_procs.items()},
            proc_switch=dict(self.proc_switch),
            routes=dict(self.routes),
            pipe_comms={k: set(v) for k, v in self.pipe_comms.items()},
            estimates=dict(self._estimates),
            next_switch=self._next_switch,
        )

    def restore(self, snap: StateSnapshot) -> None:
        """Rewind to a previously captured snapshot."""
        self.switch_procs = {s: set(ps) for s, ps in snap.switch_procs.items()}
        self.proc_switch = dict(snap.proc_switch)
        self.routes = dict(snap.routes)
        self.pipe_comms = {k: set(v) for k, v in snap.pipe_comms.items()}
        self._estimates = dict(snap.estimates)
        self._next_switch = snap.next_switch

    # -- reporting --------------------------------------------------------

    def describe(self) -> str:
        """Multi-line dump in the style of the paper's Figure 5."""
        lines = [f"state: {len(self.switches)} switches, est. {self.total_links()} links"]
        for s in self.switches:
            procs = ",".join(str(p) for p in sorted(self.switch_procs[s]))
            pipes = ", ".join(
                f"S{o}:{self.pipe_estimate(s, o)}" for o in self.pipes_of(s)
            )
            lines.append(
                f"  S{s} procs[{procs}] deg~{self.estimated_degree(s)} pipes[{pipes}]"
            )
        return "\n".join(lines)
