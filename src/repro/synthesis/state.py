"""Mutable state of the recursive-bisection methodology (paper Section 3).

The state tracks, at every step of the main partitioning algorithm:

* which processors sit on which switch,
* the switch-level route of every communication of the target pattern,
* the *pipes* — for each ordered switch pair, the set of communications
  crossing it in that direction — and their ``Fast_Color`` link
  estimates (cached, invalidated incrementally as routes change).

Routes are stored as switch paths; concrete links are only assigned at
finalization, when exact coloring fixes each pipe's width.

Hot-path machinery
------------------

The move-evaluation loops propose thousands of speculative mutations
per bisection.  Three structures keep each proposal cheap:

* **Transactions** (:meth:`SynthesisState.transaction`): mutators append
  inverse operations to an undo log while a transaction is open, so a
  speculative candidate reverts in O(routes touched) instead of the
  O(|state|) deep copies :meth:`snapshot`/:meth:`restore` pay.
  Transactions nest with savepoint semantics; an inner commit merely
  hands its operations to the enclosing transaction.
* **Incremental pipe indexes**: ``_adj`` (switch → neighbour → crossing
  communication count) answers :meth:`pipes_of`/:meth:`pipes` without
  scanning ``pipe_comms``, and ``_incident`` (switch → incident directed
  memberships) makes :meth:`pair_traffic` O(1).
* **Content-keyed coloring memoization** (:class:`~repro.synthesis.memo
  .ColorMemo`): ``Fast_Color`` is a pure function of a pipe's
  communication sets, and the loops revisit identical contents
  constantly — estimates marked dirty by a route change usually resolve
  to a cache hit instead of a clique enumeration.

All three are exact: every value observable through the public API is
byte-identical to the recompute-from-scratch implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import random

from repro.errors import SynthesisError
from repro.model.cliques import CliqueAnalysis
from repro.model.message import Communication
from repro.synthesis.memo import ColorMemo

SwitchPath = Tuple[int, ...]
PipeKey = Tuple[int, int]  # directed (from_switch, to_switch)

# Undo-log operation tags.
_OP_ROUTE = 0  # (comm, previous path or None)
_OP_PROC = 1  # (processor, previous switch)
_OP_SWITCH = 2  # (switch id created)

#: Shared empty directional pipe content.
_EMPTY_COMMS: FrozenSet[Communication] = frozenset()


def normalize_path(path: Sequence[int]) -> SwitchPath:
    """Collapse revisits: keep the path simple.

    Consecutive duplicates disappear and any loop (a switch appearing
    twice) is spliced out by cutting back to its first occurrence.
    Runs in O(n) via a position index of the switches currently kept.
    """
    out: List[int] = []
    pos: Dict[int, int] = {}
    for s in path:
        at = pos.get(s)
        if at is not None:
            for dropped in out[at + 1 :]:
                del pos[dropped]
            del out[at + 1 :]
        else:
            pos[s] = len(out)
            out.append(s)
    return tuple(out)


@dataclass
class StateSnapshot:
    """A restorable copy of the mutable parts of a synthesis state."""

    switch_procs: Dict[int, Set[int]]
    proc_switch: Dict[int, int]
    routes: Dict[Communication, SwitchPath]
    pipe_comms: Dict[PipeKey, Set[Communication]]
    estimates: Dict[PipeKey, int]  # unordered (min, max) keys
    next_switch: int


class Transaction:
    """Handle for one open :meth:`SynthesisState.transaction` scope.

    Leaving the scope without :meth:`commit` reverts every mutation made
    inside it.  :meth:`savepoint`/:meth:`rollback_to` give loops a way
    to keep the best state visited without deep copies.
    """

    __slots__ = ("_state", "committed")

    def __init__(self, state: "SynthesisState") -> None:
        self._state = state
        self.committed = False

    def commit(self) -> None:
        """Keep the mutations made inside this transaction."""
        self.committed = True

    def savepoint(self) -> Union[int, StateSnapshot]:
        """An opaque marker for the current state within the scope."""
        if self._state.transactional:
            return len(self._state._undo_log)
        return self._state.snapshot()

    def rollback_to(self, savepoint: Union[int, StateSnapshot]) -> None:
        """Revert every mutation made after ``savepoint``."""
        if isinstance(savepoint, StateSnapshot):
            self._state.restore(savepoint)
        else:
            self._state._rollback(savepoint)


class SynthesisState:
    """Partitioning state over a clique analysis of the target pattern."""

    def __init__(self, analysis: CliqueAnalysis) -> None:
        self.analysis = analysis
        self.max_cliques = analysis.max_cliques
        self.comms: Tuple[Communication, ...] = tuple(sorted(analysis.communications))
        self.num_processors = analysis.pattern.num_processes
        self.switch_procs: Dict[int, Set[int]] = {}
        self.proc_switch: Dict[int, int] = {}
        self.routes: Dict[Communication, SwitchPath] = {}
        self.pipe_comms: Dict[PipeKey, Set[Communication]] = {}
        self._next_switch = 0
        # Communications incident to each processor, in self.comms
        # order — so move_processor re-anchors O(degree) routes instead
        # of scanning every communication.
        self._comms_of_proc: Dict[int, Tuple[Communication, ...]] = {
            p: () for p in range(self.num_processors)
        }
        by_proc: Dict[int, List[Communication]] = {}
        for comm in self.comms:
            by_proc.setdefault(comm.source, []).append(comm)
            if comm.dest != comm.source:
                by_proc.setdefault(comm.dest, []).append(comm)
        for p, cs in by_proc.items():
            self._comms_of_proc[p] = tuple(cs)
        # Estimate accounting: ``_estimates`` holds the accounted
        # Fast_Color value per unordered pipe key ``(min, max)``; keys
        # whose membership changed since sit in ``_dirty`` until
        # flushed.  ``_links_total``/``_pipe_deg`` are running sums over
        # the accounted values, so the global objective is O(dirty
        # pipes) instead of O(all pipes).  Accounted entries are never
        # dropped without adjusting the sums — a later refresh of a
        # stale key subtracts exactly what was accounted, which keeps
        # the aggregates correct across rollbacks and switch reuse.
        self._estimates: Dict[PipeKey, int] = {}
        self._dirty: Set[PipeKey] = set()
        self._links_total = 0
        self._pipe_deg: Dict[int, int] = {}
        # Settled total degree excess per max_degree bound, invalidated
        # whenever a refresh moves ``_pipe_deg`` or a processor changes
        # switches — the objective reads it instead of scanning every
        # switch.
        self._excess_base: Dict[int, int] = {}
        # Cached frozenset per *directed* pipe, so estimate refreshes
        # and memo lookups reuse one hash-cached set instead of
        # rebuilding (and re-hashing every Communication) per read.
        self._frozen: Dict[PipeKey, FrozenSet[Communication]] = {}
        # Incremental pipe indexes (see module docstring).
        self._adj: Dict[int, Dict[int, int]] = {}
        self._incident: Dict[int, int] = {}
        # Transaction machinery.
        self.transactional = True
        self._undo_log: List[tuple] = []
        self._txn_depth = 0
        self.txn_reverts = 0
        # Shared content-keyed coloring memo (see repro.synthesis.memo).
        self.color_memo = ColorMemo(self.max_cliques)
        # Move-preview results, valid only until the next mutation
        # (annealing re-proposes the same move many times between
        # accepted steps — the state, and hence the score, is unchanged
        # in between).
        self._preview_cache: Dict[Tuple[int, int, int, int], Tuple[int, int]] = {}
        # Hypothetical pipe contents (pipe ± one communication), valid
        # until the next mutation: every candidate path of one
        # communication removes it from the same old hops, so the
        # frozensets recur across the candidate sweep.
        self._content_cache: Dict[tuple, FrozenSet[Communication]] = {}

    @classmethod
    def initial(cls, analysis: CliqueAnalysis) -> "SynthesisState":
        """The starting point: one mega-switch connecting all processors."""
        state = cls(analysis)
        mega = state._new_switch()
        for p in range(state.num_processors):
            state.switch_procs[mega].add(p)
            state.proc_switch[p] = mega
        for comm in state.comms:
            state.routes[comm] = (mega,)
        return state

    # -- switches ------------------------------------------------------

    def _new_switch(self) -> int:
        sid = self._next_switch
        self._next_switch += 1
        self.switch_procs[sid] = set()
        # Seed the per-switch index entries so the route hot loop can
        # index them directly.  ``_pipe_deg`` carries estimate
        # accounting across a rolled-back creation (a stale entry is
        # settled by the pending dirty refresh), so it is only seeded
        # when absent.
        self._adj[sid] = {}
        self._incident[sid] = 0
        if sid not in self._pipe_deg:
            self._pipe_deg[sid] = 0
        if self._txn_depth:
            self._undo_log.append((_OP_SWITCH, sid))
        return sid

    @property
    def switches(self) -> Tuple[int, ...]:
        return tuple(sorted(self.switch_procs))

    def switch_of(self, processor: int) -> int:
        return self.proc_switch[processor]

    # -- routes and pipes ----------------------------------------------

    def route_of(self, comm: Communication) -> SwitchPath:
        return self.routes[comm]

    def set_route(self, comm: Communication, path: Sequence[int]) -> None:
        """Replace a communication's switch path, updating pipe sets."""
        new_path = normalize_path(path)
        self._check_route(comm, new_path)
        old_path = self.routes.get(comm)
        if old_path == new_path:
            return
        if self._txn_depth:
            self._undo_log.append((_OP_ROUTE, comm, old_path))
        self._apply_route(comm, new_path)

    def _set_route_direct(self, comm: Communication, new_path: SwitchPath) -> None:
        """:meth:`set_route` for paths already normalized and valid by
        construction (endpoint re-anchoring) — skips re-normalization
        and validation on the move-evaluation hot path."""
        old_path = self.routes.get(comm)
        if old_path == new_path:
            return
        if self._txn_depth:
            self._undo_log.append((_OP_ROUTE, comm, old_path))
        self._apply_route(comm, new_path)

    def _apply_route(self, comm: Communication, new_path: Optional[SwitchPath]) -> None:
        """Raw route replacement: no validation, no undo logging.

        ``None`` removes the route entirely (only the undo of a route
        creation needs that).  Pipe index maintenance is inlined — this
        loop runs tens of thousands of times per bisection.
        """
        old_path = self.routes.get(comm)
        self._preview_cache.clear()
        self._content_cache.clear()
        pc = self.pipe_comms
        dirty = self._dirty
        frozen = self._frozen
        incident = self._incident
        adj = self._adj
        if old_path is not None:
            u = old_path[0]
            for v in old_path[1:]:
                duv = (u, v)
                pc[duv].discard(comm)
                dirty.add(duv if u < v else (v, u))
                frozen.pop(duv, None)
                incident[u] -= 1
                incident[v] -= 1
                row = adj[u]
                count = row[v] - 1
                if count:
                    row[v] = count
                else:
                    del row[v]
                row = adj[v]
                count = row[u] - 1
                if count:
                    row[u] = count
                else:
                    del row[u]
                u = v
        if new_path is None:
            del self.routes[comm]
            return
        u = new_path[0]
        for v in new_path[1:]:
            duv = (u, v)
            members = pc.get(duv)
            if members is None:
                members = pc[duv] = set()
            members.add(comm)
            dirty.add(duv if u < v else (v, u))
            frozen.pop(duv, None)
            incident[u] += 1
            incident[v] += 1
            row = adj[u]
            row[v] = row.get(v, 0) + 1
            row = adj[v]
            row[u] = row.get(u, 0) + 1
            u = v
        self.routes[comm] = new_path

    def _check_route(self, comm: Communication, path: SwitchPath) -> None:
        if not path:
            raise SynthesisError(f"empty route for {comm}")
        if path[0] != self.proc_switch[comm.source]:
            raise SynthesisError(
                f"route for {comm} starts at S{path[0]}, "
                f"but its source sits on S{self.proc_switch[comm.source]}"
            )
        if path[-1] != self.proc_switch[comm.dest]:
            raise SynthesisError(
                f"route for {comm} ends at S{path[-1]}, "
                f"but its destination sits on S{self.proc_switch[comm.dest]}"
            )
        for s in path:
            if s not in self.switch_procs:
                raise SynthesisError(f"route for {comm} visits unknown switch S{s}")

    def pipe_forward(self, u: int, v: int) -> FrozenSet[Communication]:
        """Communications crossing the pipe in the ``u -> v`` direction.

        The frozenset is cached per directed pipe (invalidated on
        membership change), so repeated reads — estimate refreshes, memo
        lookups — reuse one object with a cached hash.
        """
        key = (u, v)
        fs = self._frozen.get(key)
        if fs is None:
            comms = self.pipe_comms.get(key)
            fs = frozenset(comms) if comms else _EMPTY_COMMS
            self._frozen[key] = fs
        return fs

    def pipes(self) -> Tuple[FrozenSet[int], ...]:
        """All pipes (unordered switch pairs) with traffic in either direction."""
        seen = set()
        for u, row in self._adj.items():
            for v in row:
                seen.add(frozenset((u, v)))
        return tuple(sorted(seen, key=sorted))

    def pipes_of(self, switch: int) -> Tuple[int, ...]:
        """Switches sharing a non-empty pipe with ``switch``."""
        row = self._adj.get(switch)
        return tuple(sorted(row)) if row else ()

    def pair_traffic(self, si: int, sj: int) -> int:
        """Communications crossing any directed pipe incident to the
        pair — the secondary move objective, answered in O(1) from the
        incidence index."""
        cross = len(self.pipe_comms.get((si, sj), ())) + len(
            self.pipe_comms.get((sj, si), ())
        )
        return self._incident[si] + self._incident[sj] - cross

    def _refresh(self, key: PipeKey) -> int:
        """Recompute one pipe's accounted estimate, adjusting the sums."""
        u, v = key
        frozen = self._frozen
        pc = self.pipe_comms
        duv = (u, v)
        fwd = frozen.get(duv)
        if fwd is None:
            members = pc.get(duv)
            fwd = frozenset(members) if members else _EMPTY_COMMS
            frozen[duv] = fwd
        dvu = (v, u)
        bwd = frozen.get(dvu)
        if bwd is None:
            members = pc.get(dvu)
            bwd = frozenset(members) if members else _EMPTY_COMMS
            frozen[dvu] = bwd
        new = self.color_memo.fast_pair(fwd, bwd) if (fwd or bwd) else 0
        old = self._estimates.get(key, 0)
        if new != old:
            delta = new - old
            self._links_total += delta
            deg = self._pipe_deg
            deg[u] += delta
            deg[v] += delta
            self._excess_base.clear()
        self._estimates[key] = new
        return new

    def _flush_dirty(self) -> None:
        """Settle every dirty pipe so the aggregate sums are current."""
        dirty = self._dirty
        if dirty:
            refresh = self._refresh
            for key in dirty:
                refresh(key)
            dirty.clear()

    def pipe_estimate(self, u: int, v: int) -> int:
        """``Fast_Color`` link estimate for the pipe between two switches."""
        key = (u, v) if u < v else (v, u)
        if key in self._dirty:
            self._dirty.discard(key)
            return self._refresh(key)
        return self._estimates.get(key, 0)

    def estimated_degree(self, switch: int) -> int:
        """Estimated port count: processors + estimated pipe links."""
        self._flush_dirty()
        return len(self.switch_procs[switch]) + self._pipe_deg.get(switch, 0)

    def total_links(self) -> int:
        """Sum of link estimates over every pipe (the synthesis objective)."""
        self._flush_dirty()
        return self._links_total

    def all_estimated_degrees(self) -> Dict[int, int]:
        """Estimated port count of every switch, from the running sums."""
        self._flush_dirty()
        deg = self._pipe_deg
        return {s: len(procs) + deg.get(s, 0) for s, procs in self.switch_procs.items()}

    def _excess(self, max_degree: int) -> int:
        """Settled total degree excess; call after :meth:`_flush_dirty`."""
        base = self._excess_base.get(max_degree)
        if base is None:
            deg = self._pipe_deg
            base = 0
            for s, procs in self.switch_procs.items():
                over = len(procs) + deg.get(s, 0) - max_degree
                if over > 0:
                    base += over
            self._excess_base[max_degree] = base
        return base

    def objective(self, max_degree: int) -> Tuple[int, int]:
        """(total degree excess over ``max_degree``, total links) — the
        lexicographic objective of the global route optimizers."""
        self._flush_dirty()
        return (self._excess(max_degree), self._links_total)

    def local_links(self, switches: Iterable[int]) -> int:
        """Sum of link estimates over pipes incident to any given switch."""
        self._flush_dirty()
        adj = self._adj
        est = self._estimates
        pairs = set()
        for s in switches:
            row = adj.get(s)
            if row:
                for other in row:
                    pairs.add((s, other) if s < other else (other, s))
        return sum(est.get(pair, 0) for pair in pairs)

    # -- previews ---------------------------------------------------------
    #
    # The optimization loops evaluate thousands of candidates and reject
    # most of them.  Previews compute exactly the objective a candidate
    # mutation would produce — from the settled aggregates plus the
    # hypothetical contents of the touched pipes — without mutating the
    # state, so a rejected candidate costs no apply/rollback churn at
    # all.  Every preview value is byte-identical to mutate-then-read.

    def preview_route_change(
        self, comm: Communication, new_path: SwitchPath
    ) -> Dict[PipeKey, FrozenSet[Communication]]:
        """Directed pipe contents a hypothetical :meth:`set_route` would
        produce, keyed by directed pipe — only the changed pipes."""
        old_path = self.routes[comm]
        old_hops = set(zip(old_path, old_path[1:]))
        new_hops = set(zip(new_path, new_path[1:]))
        changed: Dict[PipeKey, FrozenSet[Communication]] = {}
        cache = self._content_cache
        single = None
        for sign, hops in ((-1, old_hops - new_hops), (1, new_hops - old_hops)):
            for duv in hops:
                key = (duv, comm, sign)
                fs = cache.get(key)
                if fs is None:
                    if single is None:
                        single = frozenset((comm,))
                    base = self.pipe_forward(*duv)
                    fs = base - single if sign < 0 else base | single
                    cache[key] = fs
                changed[duv] = fs
        return changed

    def _preview_estimate(
        self, key: PipeKey, changed: Dict[PipeKey, FrozenSet[Communication]]
    ) -> int:
        """Estimate of one unordered pipe under hypothetical contents."""
        u, v = key
        fwd = changed.get((u, v))
        if fwd is None:
            fwd = self.pipe_forward(u, v)
        bwd = changed.get((v, u))
        if bwd is None:
            bwd = self.pipe_forward(v, u)
        if fwd or bwd:
            return self.color_memo.fast_pair(fwd, bwd)
        return 0

    def preview_objective(
        self,
        changed: Dict[PipeKey, FrozenSet[Communication]],
        max_degree: int,
    ) -> Tuple[int, int]:
        """:meth:`objective` as it would read after applying ``changed``."""
        self._flush_dirty()
        est = self._estimates
        memo_pair = self.color_memo.fast_pair
        delta_links = 0
        deg_delta: Dict[int, int] = {}
        seen: Set[PipeKey] = set()
        for u, v in changed:
            key = (u, v) if u < v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            fwd = changed.get((u, v))
            if fwd is None:
                fwd = self.pipe_forward(u, v)
            bwd = changed.get((v, u))
            if bwd is None:
                bwd = self.pipe_forward(v, u)
            new = memo_pair(fwd, bwd) if (fwd or bwd) else 0
            d = new - est.get(key, 0)
            if d:
                delta_links += d
                deg_delta[u] = deg_delta.get(u, 0) + d
                deg_delta[v] = deg_delta.get(v, 0) + d
        excess = self._excess(max_degree)
        if deg_delta:
            deg = self._pipe_deg
            sp = self.switch_procs
            for s, d in deg_delta.items():
                cur = len(sp[s]) + deg[s] - max_degree
                after = cur + d
                excess += (after if after > 0 else 0) - (cur if cur > 0 else 0)
        return (excess, self._links_total + delta_links)

    def preview_local_links(
        self,
        changed: Dict[PipeKey, FrozenSet[Communication]],
        switches: Iterable[int],
    ) -> int:
        """:meth:`local_links` over ``switches`` as it would read after
        applying ``changed`` (changed pipes always touch switches of the
        candidate path, which callers include)."""
        self._flush_dirty()
        adj = self._adj
        est = self._estimates
        touched: Set[PipeKey] = set()
        for u, v in changed:
            touched.add((u, v) if u < v else (v, u))
        pairs = set(touched)
        for s in switches:
            row = adj.get(s)
            if row:
                for other in row:
                    pairs.add((s, other) if s < other else (other, s))
        total = 0
        for key in pairs:
            if key in touched:
                total += self._preview_estimate(key, changed)
            else:
                total += est.get(key, 0)
        return total

    def preview_move_score(
        self, processor: int, to_switch: int, si: int, sj: int
    ) -> Tuple[int, int]:
        """The move objective ``(local links around the pair, pair
        traffic)`` as it would read after
        ``move_processor(processor, to_switch)`` — without mutating.

        Exactly reproduces the route re-anchoring of
        :meth:`move_processor` on hypothetical pipe contents, then
        evaluates the same quantities :func:`repro.synthesis.moves
        ._score` reads.

        Results are cached until the next mutation: the annealing walk
        re-proposes moves against an unchanged state most of the time.
        """
        cache_key = (processor, to_switch, si, sj)
        cached = self._preview_cache.get(cache_key)
        if cached is not None:
            return cached
        self._flush_dirty()
        proc_switch = self.proc_switch
        routes = self.routes
        pc = self.pipe_comms
        contents: Dict[PipeKey, Set[Communication]] = {}
        cnt_delta: Dict[PipeKey, int] = {}
        inc_delta: Dict[int, int] = {}
        for comm in self._comms_of_proc[processor]:
            old_path = routes[comm]
            src = to_switch if comm.source == processor else proc_switch[comm.source]
            dst = to_switch if comm.dest == processor else proc_switch[comm.dest]
            if src == dst:
                new_path: SwitchPath = (src,)
            elif len(old_path) <= 2:
                new_path = (src, dst)
            else:
                new_path = normalize_path([src, *old_path[1:-1], dst])
            if new_path == old_path:
                continue
            for path, sign in ((old_path, -1), (new_path, 1)):
                u = path[0]
                for v in path[1:]:
                    duv = (u, v)
                    working = contents.get(duv)
                    if working is None:
                        working = contents[duv] = set(pc.get(duv, ()))
                    if sign < 0:
                        working.discard(comm)
                    else:
                        working.add(comm)
                    key = duv if u < v else (v, u)
                    cnt_delta[key] = cnt_delta.get(key, 0) + sign
                    inc_delta[u] = inc_delta.get(u, 0) + sign
                    inc_delta[v] = inc_delta.get(v, 0) + sign
                    u = v
        adj = self._adj
        est = self._estimates
        touched_switches = set()
        for a, b in cnt_delta:
            touched_switches.add(a)
            touched_switches.add(b)

        def neighbors_after(s: int):
            row = adj.get(s) or {}
            if s not in touched_switches:
                # No pipe of this switch changes membership — its
                # neighbour set is exactly the settled adjacency row.
                return row.keys()
            out = set()
            for other, count in row.items():
                key = (s, other) if s < other else (other, s)
                if count + cnt_delta.get(key, 0) > 0:
                    out.add(other)
            for key, d in cnt_delta.items():
                if d > 0:
                    a, b = key
                    if a == s and b not in row:
                        out.add(b)
                    elif b == s and a not in row:
                        out.add(a)
            return out

        affected = {si, sj} | neighbors_after(si) | neighbors_after(sj)
        pairs: Set[PipeKey] = set()
        for s in affected:
            for other in neighbors_after(s):
                pairs.add((s, other) if s < other else (other, s))
        links = 0
        memo_pair = self.color_memo.fast_pair
        for key in pairs:
            u, v = key
            fwd_work = contents.get((u, v))
            bwd_work = contents.get((v, u))
            if fwd_work is None and bwd_work is None:
                links += est.get(key, 0)
                continue
            fwd = frozenset(fwd_work) if fwd_work is not None else self.pipe_forward(u, v)
            bwd = frozenset(bwd_work) if bwd_work is not None else self.pipe_forward(v, u)
            if fwd or bwd:
                links += memo_pair(fwd, bwd)
        forward_pair = contents.get((si, sj))
        if forward_pair is None:
            forward_pair = pc.get((si, sj), ())
        backward_pair = contents.get((sj, si))
        if backward_pair is None:
            backward_pair = pc.get((sj, si), ())
        incident = self._incident
        traffic = (
            incident[si]
            + inc_delta.get(si, 0)
            + incident[sj]
            + inc_delta.get(sj, 0)
            - len(forward_pair)
            - len(backward_pair)
        )
        score = (links, traffic)
        self._preview_cache[cache_key] = score
        return score

    # -- partitioning moves ---------------------------------------------

    def split_switch(self, si: int, rng: random.Random) -> int:
        """Partition ``si``: create a sibling and move half the processors.

        The moved half is chosen uniformly at random (Appendix step 5);
        routes through ``si`` are rewritten with direct paths, i.e. each
        occurrence of ``si`` keeps its identity except at endpoints that
        moved.
        """
        procs = sorted(self.switch_procs[si])
        if len(procs) < 2:
            raise SynthesisError(f"cannot split switch S{si} with {len(procs)} processor(s)")
        sj = self._new_switch()
        self._preview_cache.clear()
        self._excess_base.clear()
        moved = rng.sample(procs, len(procs) // 2)
        for p in moved:
            if self._txn_depth:
                self._undo_log.append((_OP_PROC, p, si))
            self.switch_procs[si].discard(p)
            self.switch_procs[sj].add(p)
            self.proc_switch[p] = sj
        for comm in self.comms:
            path = self.routes[comm]
            if si in path or self.proc_switch[comm.source] == sj or self.proc_switch[comm.dest] == sj:
                self._set_route_direct(comm, self._endpoint_adjusted(comm, path))
        return sj

    def move_processor(self, processor: int, to_switch: int) -> None:
        """Move one processor to another switch, re-anchoring its routes.

        Routes of communications that start or end at the processor are
        re-anchored on the new switch directly (Appendix step 7 assumes
        direct paths when evaluating moves).
        """
        frm = self.proc_switch[processor]
        if frm == to_switch:
            return
        if to_switch not in self.switch_procs:
            raise SynthesisError(f"no switch S{to_switch}")
        if self._txn_depth:
            self._undo_log.append((_OP_PROC, processor, frm))
        self._preview_cache.clear()
        self._excess_base.clear()
        self.switch_procs[frm].discard(processor)
        self.switch_procs[to_switch].add(processor)
        self.proc_switch[processor] = to_switch
        for comm in self._comms_of_proc[processor]:
            self._set_route_direct(comm, self._endpoint_adjusted(comm, self.routes[comm]))

    def _endpoint_adjusted(self, comm: Communication, path: SwitchPath) -> SwitchPath:
        """Re-anchor a path on the current switches of its endpoints.

        The interior of the old path is preserved (direct adjustment);
        :func:`normalize_path` splices out any loop the re-anchoring
        introduces.
        """
        src = self.proc_switch[comm.source]
        dst = self.proc_switch[comm.dest]
        if src == dst:
            return (src,)
        if len(path) <= 2:
            # No interior to preserve: the direct hop is already simple.
            return (src, dst)
        return normalize_path([src, *path[1:-1], dst])

    # -- transactions ----------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Scope for speculative mutations.

        Mutations made inside the ``with`` block are reverted on exit —
        in O(routes touched) via the undo log — unless
        :meth:`Transaction.commit` was called.  Scopes nest: committing
        an inner transaction hands its operations to the enclosing one,
        which may still revert them wholesale.

        With :attr:`transactional` set to ``False`` the same scope runs
        on deep :meth:`snapshot`/:meth:`restore` copies instead — the
        pre-optimization behavior, kept for A/B benchmarking.
        """
        txn = Transaction(self)
        if not self.transactional:
            snap = self.snapshot()
            try:
                yield txn
            finally:
                if not txn.committed:
                    self.restore(snap)
                    self.txn_reverts += 1
            return
        mark = len(self._undo_log)
        self._txn_depth += 1
        try:
            yield txn
        finally:
            self._txn_depth -= 1
            if txn.committed:
                if self._txn_depth == 0:
                    del self._undo_log[mark:]
            else:
                self._rollback(mark)
                self.txn_reverts += 1

    def _rollback(self, mark: int) -> None:
        """Undo logged operations down to ``mark``, newest first."""
        self._preview_cache.clear()
        self._excess_base.clear()
        log = self._undo_log
        while len(log) > mark:
            op = log.pop()
            kind = op[0]
            if kind == _OP_ROUTE:
                self._apply_route(op[1], op[2])
            elif kind == _OP_PROC:
                processor, previous = op[1], op[2]
                current = self.proc_switch[processor]
                self.switch_procs[current].discard(processor)
                self.switch_procs[previous].add(processor)
                self.proc_switch[processor] = previous
            else:  # _OP_SWITCH
                sid = op[1]
                del self.switch_procs[sid]
                self._adj.pop(sid, None)
                self._incident.pop(sid, None)
                self._next_switch = sid

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        """Capture the mutable state for later :meth:`restore`.

        Deep-copies O(|state|); the move-evaluation loops use
        :meth:`transaction` instead and only the last-resort global
        passes and tests still pay this.
        """
        self._flush_dirty()
        return StateSnapshot(
            switch_procs={s: set(ps) for s, ps in self.switch_procs.items()},
            proc_switch=dict(self.proc_switch),
            routes=dict(self.routes),
            pipe_comms={k: set(v) for k, v in self.pipe_comms.items()},
            estimates=dict(self._estimates),
            next_switch=self._next_switch,
        )

    def restore(self, snap: StateSnapshot) -> None:
        """Rewind to a previously captured snapshot.

        Not valid while a transaction is open on intervening mutations:
        the undo log would describe a state that no longer exists.
        """
        if self._txn_depth:
            raise SynthesisError("cannot restore a snapshot inside a transaction")
        self.switch_procs = {s: set(ps) for s, ps in snap.switch_procs.items()}
        self.proc_switch = dict(snap.proc_switch)
        self.routes = dict(snap.routes)
        self.pipe_comms = {k: set(v) for k, v in snap.pipe_comms.items()}
        self._next_switch = snap.next_switch
        self._undo_log.clear()
        self._preview_cache.clear()
        self._content_cache.clear()
        self._excess_base.clear()
        # Snapshot estimates were settled against the captured pipe
        # contents, so they seed the accounting; any non-empty pipe the
        # snapshot had not accounted starts dirty and settles lazily
        # (usually a memo hit).
        self._estimates = dict(snap.estimates)
        self._links_total = sum(self._estimates.values())
        self._pipe_deg = {s: 0 for s in self.switch_procs}
        for (u, v), val in self._estimates.items():
            if val:
                self._pipe_deg[u] = self._pipe_deg.get(u, 0) + val
                self._pipe_deg[v] = self._pipe_deg.get(v, 0) + val
        self._dirty = set()
        self._frozen = {}
        self._adj = {s: {} for s in self.switch_procs}
        self._incident = {s: 0 for s in self.switch_procs}
        for (u, v), comms in self.pipe_comms.items():
            count = len(comms)
            if not count:
                continue
            key = (u, v) if u < v else (v, u)
            if key not in self._estimates:
                self._dirty.add(key)
            self._incident[u] += count
            self._incident[v] += count
            row = self._adj[u]
            row[v] = row.get(v, 0) + count
            row = self._adj[v]
            row[u] = row.get(u, 0) + count

    # -- reporting --------------------------------------------------------

    def describe(self) -> str:
        """Multi-line dump in the style of the paper's Figure 5."""
        lines = [f"state: {len(self.switches)} switches, est. {self.total_links()} links"]
        for s in self.switches:
            procs = ",".join(str(p) for p in sorted(self.switch_procs[s]))
            pipes = ", ".join(
                f"S{o}:{self.pipe_estimate(s, o)}" for o in self.pipes_of(s)
            )
            lines.append(
                f"  S{s} procs[{procs}] deg~{self.estimated_degree(s)} pipes[{pipes}]"
            )
        return "\n".join(lines)
