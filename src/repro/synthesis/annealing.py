"""A small, generic simulated-annealing engine.

The paper applies "a simulated annealing technique" to both the
partitioning moves and (in our reproduction) the floorplan placement.
The deterministic hill-climbing variants in :mod:`repro.synthesis.moves`
and :mod:`repro.synthesis.best_route` are what the Appendix pseudo-code
specifies; this engine provides the temperature-driven variant used by
the floorplanner and by the ``anneal=True`` extension of the
partitioner ablations.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Generic, Optional, Tuple, TypeVar

from repro.obs import DISABLED, Observability

State = TypeVar("State")


@dataclass(frozen=True)
class AnnealSchedule:
    """Geometric cooling schedule.

    Attributes:
        initial_temperature: starting temperature (in objective units).
        cooling: multiplicative factor per step, in (0, 1).
        steps: total number of proposed moves.
        moves_per_temperature: proposals evaluated before cooling.
    """

    initial_temperature: float = 10.0
    cooling: float = 0.95
    steps: int = 2000
    moves_per_temperature: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {self.cooling}")
        if self.initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")
        if self.steps < 1 or self.moves_per_temperature < 1:
            raise ValueError("steps and moves_per_temperature must be positive")


class SimulatedAnnealing(Generic[State]):
    """Minimize ``energy`` over states connected by ``neighbor`` moves.

    ``neighbor(state, rng)`` must return a *new* state (it must not
    mutate its argument); the best state ever visited is returned, so a
    pessimal final temperature cannot lose the incumbent.
    """

    def __init__(
        self,
        energy: Callable[[State], float],
        neighbor: Callable[[State, random.Random], State],
        schedule: Optional[AnnealSchedule] = None,
        seed: int = 0,
        obs: Optional[Observability] = None,
        label: str = "anneal",
    ) -> None:
        self._energy = energy
        self._neighbor = neighbor
        self._schedule = schedule or AnnealSchedule()
        self._rng = random.Random(seed)
        self._obs = obs if obs is not None else DISABLED
        self._label = label

    def run(self, initial: State) -> Tuple[State, float]:
        """Anneal from ``initial``; returns ``(best state, best energy)``."""
        sched = self._schedule
        current = initial
        current_e = self._energy(current)
        best, best_e = current, current_e
        temperature = sched.initial_temperature
        record = self._obs.metrics.enabled
        if record:
            m = self._obs.metrics
            accepted = m.counter(f"{self._label}.accepted")
            accepted_worse = m.counter(f"{self._label}.accepted_worse")
            rejected = m.counter(f"{self._label}.rejected")
            temp_series = m.series(f"{self._label}.temperature")
            energy_series = m.series(f"{self._label}.energy")
        for step in range(sched.steps):
            candidate = self._neighbor(current, self._rng)
            cand_e = self._energy(candidate)
            if cand_e <= current_e or self._accept_worse(cand_e - current_e, temperature):
                if record:
                    accepted.inc()
                    if cand_e > current_e:
                        accepted_worse.inc()
                current, current_e = candidate, cand_e
                if current_e < best_e:
                    best, best_e = current, current_e
            elif record:
                rejected.inc()
            if (step + 1) % sched.moves_per_temperature == 0:
                if record:
                    # One point per temperature level, in step coordinates.
                    temp_series.append(step + 1, temperature)
                    energy_series.append(step + 1, current_e)
                temperature *= sched.cooling
        if record and sched.steps % sched.moves_per_temperature != 0:
            # Flush the trailing partial temperature level: when steps is
            # not a multiple of moves_per_temperature the loop above never
            # reaches its recording branch for the final proposals, which
            # would silently drop them from the series.
            temp_series.append(sched.steps, temperature)
            energy_series.append(sched.steps, current_e)
        return best, best_e

    def _accept_worse(self, delta: float, temperature: float) -> bool:
        if temperature <= 0:
            return False
        return self._rng.random() < math.exp(-delta / temperature)
