"""Facade: from communication pattern to generated network.

``generate_network`` runs the clique analysis, executes the main
partitioning algorithm (with multi-seed restarts, since the initial
halving is random), materializes the best result as a concrete
:class:`~repro.topology.network.Network` with parallel links sized by
exact coloring, installs per-communication source routes pinned to
specific links, and checks Theorem 1 on the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.model.cliques import CliqueAnalysis, permutation_violations
from repro.obs import DISABLED, Observability
from repro.model.message import Communication
from repro.model.pattern import CommunicationPattern
from repro.model.theorem import ContentionCertificate, check_contention_free
from repro.synthesis.annealing import AnnealSchedule
from repro.synthesis.constraints import DesignConstraints
from repro.synthesis.partition import PartitionResult, Partitioner


@dataclass(frozen=True)
class DesignStats:
    """Partitioning counters a design carries after materialization.

    Unlike :class:`~repro.synthesis.partition.PartitionResult` (whose
    :class:`~repro.synthesis.state.SynthesisState` is too heavy to
    serialize), these survive the JSON round-trip through
    :func:`repro.eval.serialize.design_to_dict`, so a cache-rehydrated
    design reports the same numbers as a freshly computed one.
    """

    bisections: int
    route_moves: int
    processor_moves: int
from repro.topology.builders import Topology
from repro.topology.network import Network
from repro.topology.routing import (
    Route,
    RoutingBase,
    ShortestPathRouting,
    TableRouting,
    make_route,
)


@dataclass
class GeneratedDesign:
    """A synthesized network and everything needed to use it.

    Attributes:
        topology: the generated network wrapped as a
            :class:`~repro.topology.builders.Topology` whose routing is
            the synthesized source-routing table (with shortest-path
            fallback for communications outside the target pattern).
        pattern: the communication pattern the network was designed for.
        analysis: the clique analysis of that pattern.
        certificate: Theorem 1 check of the pattern on this network.
        switch_map: synthesis switch id -> network switch id.
        pipe_links: pipe (network switch pair) -> link ids in color order.
        seed: the restart seed that produced this design.
        stats: partitioning counters (serialization-stable).
        result: the raw partitioning result (state, pipe widths) — only
            present on freshly computed designs; ``None`` after a
            rehydration from the synthesis cache, whose JSON payload
            carries :attr:`stats` instead.
    """

    topology: Topology
    pattern: CommunicationPattern
    analysis: CliqueAnalysis
    certificate: ContentionCertificate
    switch_map: Dict[int, int]
    pipe_links: Dict[FrozenSet[int], Tuple[int, ...]]
    seed: int
    stats: DesignStats
    result: Optional[PartitionResult] = None

    @property
    def network(self) -> Network:
        return self.topology.network

    @property
    def num_switches(self) -> int:
        return self.network.num_switches

    @property
    def num_links(self) -> int:
        return self.network.num_links

    def routing_for(self, pattern: CommunicationPattern) -> RoutingBase:
        """Routing covering an arbitrary pattern on this network.

        Communications the network was designed for keep their
        synthesized routes; any others (e.g. when replaying a different
        benchmark's trace, Section 4.2's cross-workload study) fall back
        to deterministic shortest paths.
        """
        return self.topology.routing


class FallbackRouting(RoutingBase):
    """Synthesized table routes with shortest-path fallback."""

    def __init__(self, table: TableRouting, network: Network) -> None:
        self._table = table
        self._fallback = ShortestPathRouting(network)

    def route(self, comm: Communication) -> Route:
        if self._table.has_route(comm):
            return self._table.route(comm)
        return self._fallback.route(comm)

    @property
    def table(self) -> TableRouting:
        return self._table


def generate_network(
    pattern: CommunicationPattern,
    constraints: Optional[DesignConstraints] = None,
    seed: int = 0,
    restarts: int = 16,
    reroute: bool = True,
    moves: bool = True,
    obs: Optional[Observability] = None,
    anneal_schedule: Optional[AnnealSchedule] = None,
    portfolio: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[object] = None,
) -> GeneratedDesign:
    """Run the full design methodology on a communication pattern.

    Args:
        pattern: the target application's communication pattern.
        constraints: design constraints (default: max node degree 5, as
            in the paper's evaluation).
        seed: base RNG seed; restart ``i`` uses ``seed + i``.
        restarts: how many independent runs to take the best of.  The
            initial halving and violator selection are random, so
            restarts play the role of the annealing schedule's
            temperature restarts.
        reroute: enable the global route optimizer (ablation knob).
        moves: enable inter-partition processor moves (ablation knob).
        obs: optional observability bundle — per-restart spans,
            bisection/route-move counters, and ``Fast_Color`` vs exact
            coloring gap events (``docs/OBSERVABILITY.md``).
        anneal_schedule: run temperature-driven processor moves after
            each bisection under this schedule (the paper's "simulated
            annealing technique"; ``None`` keeps the Appendix's greedy
            walk only).
        portfolio: fan ``portfolio`` independent seeded runs (seeds
            ``seed .. seed+portfolio-1``, one restart each) through the
            cached eval runner instead of looping restarts in process;
            the winner is selected deterministically — see
            :func:`repro.synthesis.portfolio.synthesize_portfolio`.
        jobs: worker count for the portfolio fan-out (``None``/1 serial,
            ``<=0`` all cores); only meaningful with ``portfolio``.
        cache: optional :class:`repro.eval.parallel.ResultCache` backing
            the portfolio's synthesis cells.

    Returns:
        The best design found, by (total links, switch count).
    """
    if restarts < 1:
        raise SynthesisError(f"need at least one restart, got {restarts}")
    obs = obs if obs is not None else DISABLED
    if portfolio is not None:
        from repro.synthesis.portfolio import PortfolioConfig, synthesize_portfolio

        config = PortfolioConfig(
            size=portfolio,
            seed_base=seed,
            schedules=(anneal_schedule,),
            reroute=reroute,
            moves=moves,
        )
        return synthesize_portfolio(
            pattern,
            constraints=constraints,
            config=config,
            jobs=jobs,
            cache=cache,
            obs=obs,
        ).design
    constraints = constraints or DesignConstraints()
    with obs.tracer.span("synthesis.analyze", pattern=pattern.name):
        analysis = CliqueAnalysis.of(pattern)
        violations = permutation_violations(analysis.max_cliques)
    if violations:
        clique, reason = violations[0]
        raise SynthesisError(
            f"pattern {pattern.name!r} has a contention period that is not "
            f"a partial permutation ({reason}; period "
            f"{{{', '.join(str(c) for c in sorted(clique))}}}). No network "
            "with one port per processor can serve it contention-free — "
            "stage the offending collective into sequential phases "
            "(e.g. a tree broadcast) and re-extract the pattern."
        )
    best: Optional[Tuple[Tuple[int, int], int, PartitionResult]] = None
    failures: List[str] = []
    for i in range(restarts):
        try:
            with obs.tracer.span("synthesis.restart", seed=seed + i):
                result = Partitioner(
                    analysis,
                    constraints=constraints,
                    seed=seed + i,
                    reroute=reroute,
                    moves=moves,
                    anneal_schedule=anneal_schedule,
                    obs=obs,
                ).run()
        except SynthesisError as exc:
            failures.append(f"seed {seed + i}: {exc}")
            obs.metrics.counter("synthesis.failed_restarts").inc()
            continue
        score = (result.total_links(), len(result.state.switches))
        if best is None or score < best[0]:
            best = (score, seed + i, result)
    if best is None:
        raise SynthesisError(
            "all restarts failed to satisfy the design constraints:\n  "
            + "\n  ".join(failures)
        )
    _, best_seed, result = best
    if obs.metrics.enabled:
        m = obs.metrics
        m.gauge("synthesis.best_seed").set(best_seed)
        m.gauge("synthesis.total_links").set(result.total_links())
        m.gauge("synthesis.switches").set(len(result.state.switches))
    with obs.tracer.span("synthesis.materialize", seed=best_seed):
        return _materialize(pattern, analysis, result, best_seed)


def _materialize(
    pattern: CommunicationPattern,
    analysis: CliqueAnalysis,
    result: PartitionResult,
    seed: int,
) -> GeneratedDesign:
    """Turn a partition result into a concrete network + routing table."""
    state = result.state
    net = Network(pattern.num_processes)
    switch_map: Dict[int, int] = {}
    live_pipes = {final.switches for final in result.pipe_finals.values()}
    piped = {s for pair in live_pipes for s in pair}
    for s in state.switches:
        # Dead switches (no processors, no traffic) can appear when the
        # escape moves turn a switch into a relay and rerouting then
        # empties it; they have no hardware to build.
        if not state.switch_procs[s] and s not in piped:
            continue
        switch_map[s] = net.add_switch()
    for p, s in sorted(state.proc_switch.items()):
        net.attach_processor(p, switch_map[s])

    pipe_links: Dict[FrozenSet[int], Tuple[int, ...]] = {}
    for key, final in sorted(
        result.pipe_finals.items(), key=lambda kv: kv[1].switches
    ):
        u, v = final.switches
        ids = tuple(
            net.add_link(switch_map[u], switch_map[v]) for _ in range(final.width)
        )
        pipe_links[frozenset((switch_map[u], switch_map[v]))] = ids

    # Traffic-free links planned by the partitioner to keep the system
    # strongly connected (already accounted in its degree budget).
    for u, v in result.connectivity_links:
        link = net.add_link(switch_map[u], switch_map[v])
        pipe_links.setdefault(frozenset((switch_map[u], switch_map[v])), (link,))

    _ensure_connected(net, pipe_links)

    routes = []
    for comm in state.comms:
        path = state.route_of(comm)
        net_path = [switch_map[s] for s in path]
        link_choices: Dict[int, int] = {}
        for hop, (u, v) in enumerate(zip(path, path[1:])):
            final = result.pipe_finals[frozenset((u, v))]
            lo, hi = final.switches
            color = (
                final.forward_colors[comm] if (u, v) == (lo, hi) else final.backward_colors[comm]
            )
            link_choices[hop] = pipe_links[frozenset((switch_map[u], switch_map[v]))][color]
        routes.append(make_route(net, comm, net_path, link_choices))
    table = TableRouting(routes)
    routing = FallbackRouting(table, net)

    certificate = check_contention_free(pattern, routing)
    topology = Topology(
        name=f"generated-{pattern.name}",
        network=net,
        routing=routing,
        coords=None,
        kind="generated",
    )
    return GeneratedDesign(
        topology=topology,
        pattern=pattern,
        analysis=analysis,
        certificate=certificate,
        switch_map=switch_map,
        pipe_links=pipe_links,
        seed=seed,
        stats=DesignStats(
            bisections=result.bisections,
            route_moves=result.route_moves,
            processor_moves=result.processor_moves,
        ),
        result=result,
    )


def _ensure_connected(
    net: Network, pipe_links: Dict[FrozenSet[int], Tuple[int, ...]]
) -> None:
    """Join disconnected components with single links.

    A pattern whose processor groups never talk to each other can leave
    the generated switch graph disconnected; Definition 1 requires a
    strongly-connected system, so one link joins each extra component
    (attached at the lowest-degree switches to disturb the constraint
    budget least).
    """
    components = _components(net)
    while len(components) > 1:
        a = min(components[0], key=net.degree)
        b = min(components[1], key=net.degree)
        link = net.add_link(a, b)
        pipe_links.setdefault(frozenset((a, b)), (link,))
        components = _components(net)


def _components(net: Network) -> List[List[int]]:
    remaining = set(net.switches)
    out: List[List[int]] = []
    while remaining:
        start = min(remaining)
        seen = {start}
        frontier = [start]
        while frontier:
            s = frontier.pop()
            for n in net.neighbors(s):
                if n not in seen:
                    seen.add(n)
                    frontier.append(n)
        out.append(sorted(seen))
        remaining -= seen
    return out
