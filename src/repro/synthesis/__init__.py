"""The design methodology (paper Section 3): recursive bisection,
Best_Route, Fast_Color and exact-coloring finalization."""

from repro.synthesis.annealing import AnnealSchedule, SimulatedAnnealing
from repro.synthesis.best_route import best_route
from repro.synthesis.coloring import (
    build_adjacency,
    dsatur_coloring,
    exact_coloring,
    greedy_clique_lower_bound,
    greedy_coloring,
    is_proper_coloring,
    num_colors,
)
from repro.synthesis.conflict_graph import build_conflict_graph, conflict_edge_count
from repro.synthesis.constraints import PAPER_MAX_DEGREE, DesignConstraints
from repro.synthesis.fast_color import fast_color, fast_color_directional
from repro.synthesis.generator import (
    DesignStats,
    FallbackRouting,
    GeneratedDesign,
    generate_network,
)
from repro.synthesis.moves import ProcessorMove, annealed_moves, best_processor_move
from repro.synthesis.multi import generate_network_for_set, merge_patterns

# Imported after generator/constraints/annealing: portfolio pulls in
# repro.eval.parallel, whose lazy reverse imports land back in those
# (already initialized) modules.
from repro.synthesis.portfolio import (
    OBJECTIVES,
    PortfolioConfig,
    PortfolioResult,
    PortfolioRun,
    portfolio_cells,
    synthesize_portfolio,
)
from repro.synthesis.reroute import (
    degree_excess,
    global_processor_moves,
    reduce_degree_violations,
)
from repro.synthesis.partition import (
    PartitionResult,
    Partitioner,
    PipeFinal,
    finalize_pipes,
    partition,
)
from repro.synthesis.state import SynthesisState, normalize_path

__all__ = [
    "AnnealSchedule",
    "DesignConstraints",
    "DesignStats",
    "FallbackRouting",
    "GeneratedDesign",
    "OBJECTIVES",
    "PAPER_MAX_DEGREE",
    "PartitionResult",
    "Partitioner",
    "PipeFinal",
    "PortfolioConfig",
    "PortfolioResult",
    "PortfolioRun",
    "ProcessorMove",
    "SimulatedAnnealing",
    "SynthesisState",
    "annealed_moves",
    "best_processor_move",
    "best_route",
    "build_adjacency",
    "build_conflict_graph",
    "conflict_edge_count",
    "degree_excess",
    "dsatur_coloring",
    "global_processor_moves",
    "reduce_degree_violations",
    "exact_coloring",
    "fast_color",
    "fast_color_directional",
    "finalize_pipes",
    "generate_network",
    "generate_network_for_set",
    "merge_patterns",
    "greedy_clique_lower_bound",
    "greedy_coloring",
    "is_proper_coloring",
    "normalize_path",
    "num_colors",
    "partition",
    "portfolio_cells",
    "synthesize_portfolio",
]
