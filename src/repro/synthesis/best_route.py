"""The ``Best_Route`` procedure (paper Section 3.2 and Appendix).

After a switch ``S_i`` is partitioned into ``S_i`` and ``S_j``, each
communication crossing a pipe ``P(i,k)`` may instead take the indirect
route through the sibling (``S_i -> S_j -> S_k``), and communications
already detouring may return to the direct route.  Moves are committed
greedily whenever they decrease the total estimated number of links of
the affected pipes, and passes repeat until no move improves (hill
climbing over routing assignments, the deterministic core of the
paper's annealing step).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.model.message import Communication
from repro.synthesis.state import SynthesisState

# Safety valve: each commit strictly decreases the integer total link
# estimate, so termination is guaranteed; the cap only guards against
# estimator bugs.
_MAX_PASSES = 50


def best_route(state: SynthesisState, si: int, sj: int) -> int:
    """Optimize routes around a freshly split pair of switches.

    Returns the number of route moves committed.  Only detours through
    the sibling pair are considered, exactly as in Figure 4: a hop
    ``(si, k)`` may become ``(si, sj, k)`` and vice versa (and the same
    with the roles of ``si`` and ``sj`` swapped).
    """
    committed = 0
    for _ in range(_MAX_PASSES):
        moved = _one_pass(state, si, sj) + _one_pass(state, sj, si)
        committed += moved
        if moved == 0:
            break
    return committed


def _one_pass(state: SynthesisState, si: int, sj: int) -> int:
    """One sweep of Appendix ``Best_Route(S_i, S_j)``."""
    moves = 0
    for sk in state.pipes_of(si):
        if sk == sj:
            continue
        # Candidates: every communication using the direct hop si<->sk
        # (try detour via sj), plus every one using si->sj->sk or
        # sk->sj->si (try the direct hop back).
        for comm in sorted(state.pipe_forward(si, sk) | state.pipe_forward(sk, si)):
            if _try_reroute(state, comm, _detour(state.route_of(comm), si, sj, sk)):
                moves += 1
        for comm in sorted(state.pipe_forward(si, sj) | state.pipe_forward(sj, si)):
            if _try_reroute(state, comm, _undetour(state.route_of(comm), si, sj, sk)):
                moves += 1
    return moves


def _detour(path: Tuple[int, ...], si: int, sj: int, sk: int) -> Tuple[int, ...]:
    """Insert ``sj`` into a direct ``si-sk`` hop (either direction).

    Routes are simple paths and ``sj`` is not on this one, so the
    insertion yields a simple path — no re-normalization needed."""
    if sj in path:
        return path
    out: List[int] = []
    for idx, s in enumerate(path):
        out.append(s)
        if idx + 1 < len(path):
            nxt = path[idx + 1]
            if (s, nxt) in ((si, sk), (sk, si)):
                out.append(sj)
    return tuple(out)


def _undetour(path: Tuple[int, ...], si: int, sj: int, sk: int) -> Tuple[int, ...]:
    """Remove ``sj`` from an ``si-sj-sk`` detour (either orientation)."""
    out: List[int] = []
    n = len(path)
    idx = 0
    while idx < n:
        s = path[idx]
        if (
            0 < idx < n - 1
            and s == sj
            and (path[idx - 1], path[idx + 1]) in ((si, sk), (sk, si))
        ):
            idx += 1
            continue
        out.append(s)
        idx += 1
    return tuple(out)


def _try_reroute(state: SynthesisState, comm: Communication, new_path: Tuple[int, ...]) -> bool:
    """Commit a candidate path iff it strictly lowers the link estimate."""
    old_path = state.route_of(comm)
    if new_path == old_path:
        return False
    affected = set(old_path) | set(new_path)
    before = state.local_links(affected)
    changed = state.preview_route_change(comm, new_path)
    after = state.preview_local_links(changed, affected)
    if after < before:
        state.set_route(comm, new_path)
        return True
    return False
