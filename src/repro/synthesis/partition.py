"""The main partitioning algorithm (paper Section 3 and Appendix).

Starting from one mega-switch, switches violating the design
constraints are recursively bisected; after each bisection the routing
is re-optimized (``Best_Route``) and single-processor moves between the
two halves are committed while they lower the ``Fast_Color`` link
estimate.  When every switch satisfies the constraints under the
estimates, exact graph coloring finalizes each pipe's width; if the
exact widths re-violate a constraint, partitioning resumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.model.cliques import CliqueAnalysis
from repro.model.message import Communication
from repro.obs import DISABLED, Observability
from repro.synthesis.annealing import AnnealSchedule
from repro.synthesis.best_route import best_route
from repro.synthesis.constraints import DesignConstraints
from repro.synthesis.moves import annealed_moves, best_processor_move
from repro.synthesis.reroute import global_processor_moves, reduce_degree_violations
from repro.synthesis.state import SynthesisState


@dataclass(frozen=True)
class PipeFinal:
    """Exact-coloring result for one pipe.

    Attributes:
        switches: the unordered switch pair.
        width: number of full-duplex links the pipe receives.
        forward_colors: link index per communication, forward direction
            (from ``min(switches)`` to ``max(switches)``).
        backward_colors: link index per communication, backward direction.
    """

    switches: Tuple[int, int]
    width: int
    forward_colors: Dict[Communication, int]
    backward_colors: Dict[Communication, int]


@dataclass
class PartitionResult:
    """Everything the main algorithm produced.

    Attributes:
        state: the final synthesis state (switch membership + routes).
        pipe_finals: exact pipe widths and per-communication link colors.
        connectivity_links: traffic-free switch pairs that must receive
            one link each so the system graph is strongly connected
            (Definition 1) when the pattern's clusters never talk.
        bisections: how many switch splits were performed.
        route_moves: how many ``Best_Route`` re-routings were committed.
        processor_moves: how many inter-partition processor moves were
            committed.
        estimate_gap: pipes where the exact chromatic number exceeded
            the ``Fast_Color`` estimate (the paper expects this to be
            rare; the ablation benchmark quantifies it).
    """

    state: SynthesisState
    pipe_finals: Dict[FrozenSet[int], PipeFinal]
    connectivity_links: Tuple[Tuple[int, int], ...] = ()
    bisections: int = 0
    route_moves: int = 0
    processor_moves: int = 0
    estimate_gap: List[Tuple[Tuple[int, int], int, int]] = field(default_factory=list)

    def total_links(self) -> int:
        """Final link count over all pipes plus connectivity links."""
        return sum(p.width for p in self.pipe_finals.values()) + len(
            self.connectivity_links
        )

    def final_degree(self, switch: int) -> int:
        """Exact port count of a switch in the finalized network."""
        procs = len(self.state.switch_procs[switch])
        links = sum(
            p.width for key, p in self.pipe_finals.items() if switch in key
        )
        links += sum(1 for pair in self.connectivity_links if switch in pair)
        return procs + links


def finalize_pipes(state: SynthesisState) -> Dict[FrozenSet[int], PipeFinal]:
    """Exact-color every pipe's two conflict graphs (Appendix step 3).

    Colorings come from the state's content-keyed memo: re-partitioning
    rounds (and the two directions of symmetric pipes) hit the cache
    instead of re-running branch and bound.
    """
    finals: Dict[FrozenSet[int], PipeFinal] = {}
    for pair in state.pipes():
        u, v = sorted(pair)
        fwd = state.pipe_forward(u, v)
        bwd = state.pipe_forward(v, u)
        k_f, colors_f = state.color_memo.exact(fwd)
        k_b, colors_b = state.color_memo.exact(bwd)
        finals[frozenset(pair)] = PipeFinal(
            switches=(u, v),
            width=max(k_f, k_b),
            forward_colors=colors_f,
            backward_colors=colors_b,
        )
    return finals


class Partitioner:
    """Runs the main partitioning algorithm over one clique analysis."""

    def __init__(
        self,
        analysis: CliqueAnalysis,
        constraints: Optional[DesignConstraints] = None,
        seed: int = 0,
        max_bisections: Optional[int] = None,
        reroute: bool = True,
        moves: bool = True,
        anneal: bool = False,
        anneal_schedule: Optional[AnnealSchedule] = None,
        obs: Optional[Observability] = None,
        transactional: bool = True,
        memoize: bool = True,
    ) -> None:
        self.analysis = analysis
        self.constraints = constraints or DesignConstraints()
        self.constraints.check_feasible(analysis.pattern.num_processes)
        self.reroute = reroute
        self.moves = moves
        # An explicit schedule turns the annealed walk on; ``anneal=True``
        # without one keeps the historical default parameters.
        self.anneal = anneal or anneal_schedule is not None
        self.anneal_schedule = anneal_schedule
        # A/B knobs for the hot-path machinery: ``transactional=False``
        # evaluates moves on deep snapshot copies and ``memoize=False``
        # recomputes every coloring — the pre-optimization behavior,
        # kept so benchmarks and equivalence tests can pin the speedup
        # and the byte-identity of results.
        self.transactional = transactional
        self.memoize = memoize
        self.obs = obs if obs is not None else DISABLED
        self.rng = random.Random(seed)
        # Each bisection adds a switch; N-1 splits reach one processor
        # per switch, the finest possible partition.  A small multiple
        # tolerates re-partitioning after finalization.
        self.max_bisections = max_bisections or 3 * analysis.pattern.num_processes

    def run(self) -> PartitionResult:
        """Execute the algorithm until constraints hold or splitting is
        exhausted; raises :class:`SynthesisError` when infeasible."""
        state = SynthesisState.initial(self.analysis)
        state.transactional = self.transactional
        state.color_memo.enabled = self.memoize
        result = PartitionResult(state=state, pipe_finals={})
        metrics = self.obs.metrics
        tracer = self.obs.tracer
        c_bisections = metrics.counter("synthesis.bisections")
        c_route_moves = metrics.counter("synthesis.route_moves")
        c_proc_moves = metrics.counter("synthesis.processor_moves")
        while True:
            violators = self._estimate_violators(state)
            if violators and self.reroute:
                # Multi-hop route optimization can satisfy constraints
                # without creating more switches (see reroute module).
                rerouted = reduce_degree_violations(state, self.constraints)
                result.route_moves += rerouted
                c_route_moves.inc(rerouted)
                violators = self._estimate_violators(state)
            if not violators:
                with tracer.span(
                    "synthesis.color",
                    pipes=len(state.pipes()),
                    switches=len(state.switches),
                ):
                    finals = finalize_pipes(state)
                result.pipe_finals = finals
                result.connectivity_links = self._connectivity_plan(state)
                self._record_estimate_gaps(state, result)
                exact_violators = self._exact_violators(state, result)
                if not exact_violators:
                    self._record_hotpath_counters(state)
                    return result
                violators = exact_violators
            splittable = [s for s in violators if len(state.switch_procs[s]) >= 2]
            if not splittable:
                # Last resort: alternate global processor moves (which
                # may turn switches into pure relays) with route
                # re-optimization until violations clear or nothing
                # improves.
                while self._estimate_violators(state):
                    escaped = global_processor_moves(state, self.constraints)
                    rerouted = reduce_degree_violations(state, self.constraints)
                    result.processor_moves += escaped
                    result.route_moves += rerouted
                    c_proc_moves.inc(escaped)
                    c_route_moves.inc(rerouted)
                    if escaped + rerouted == 0:
                        break
                if not self._estimate_violators(state):
                    continue
                raise SynthesisError(
                    "design constraints unsatisfiable: switches "
                    f"{violators} violate them but cannot be split further "
                    f"(constraints: {self.constraints})"
                )
            if result.bisections >= self.max_bisections:
                raise SynthesisError(
                    f"partitioning did not converge within {self.max_bisections} "
                    "bisections; constraints may be too tight for this pattern"
                )
            si = self.rng.choice(sorted(splittable))
            with tracer.span(
                "synthesis.bisect",
                level=result.bisections,
                switch=si,
                violators=len(violators),
            ):
                sj = state.split_switch(si, self.rng)
                result.bisections += 1
                c_bisections.inc()
                moved = best_route(state, si, sj)
                result.route_moves += moved
                c_route_moves.inc(moved)
                if self.anneal and self.moves:
                    sched = self.anneal_schedule
                    if sched is None:
                        annealed = annealed_moves(state, si, sj, self.rng)
                    else:
                        annealed = annealed_moves(
                            state,
                            si,
                            sj,
                            self.rng,
                            steps=sched.steps,
                            initial_temperature=sched.initial_temperature,
                            cooling=sched.cooling,
                            moves_per_temperature=sched.moves_per_temperature,
                        )
                    result.processor_moves += annealed
                    c_proc_moves.inc(annealed)
                    moved = best_route(state, si, sj)
                    result.route_moves += moved
                    c_route_moves.inc(moved)
                while self.moves:
                    move = best_processor_move(state, si, sj)
                    if move is None:
                        break
                    state.move_processor(move.processor, move.to_switch)
                    result.processor_moves += 1
                    c_proc_moves.inc()
                    moved = best_route(state, si, sj)
                    result.route_moves += moved
                    c_route_moves.inc(moved)

    def _record_hotpath_counters(self, state: SynthesisState) -> None:
        """Report the hot-path machinery's work through the registry:
        transaction reverts from move evaluation and the coloring memo's
        hit/miss split.  Counts are pure functions of the seeded run, so
        they are deterministic and safe in canonical metric output."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.counter("synthesis.txn_reverts").inc(state.txn_reverts)
        memo = state.color_memo
        metrics.counter("synthesis.color.fast_hits").inc(memo.fast_hits)
        metrics.counter("synthesis.color.fast_misses").inc(memo.fast_misses)
        metrics.counter("synthesis.color.exact_hits").inc(memo.exact_hits)
        metrics.counter("synthesis.color.exact_misses").inc(memo.exact_misses)

    def _estimate_violators(self, state: SynthesisState) -> Tuple[int, ...]:
        return self.constraints.violators(state)

    def _exact_violators(
        self, state: SynthesisState, result: PartitionResult
    ) -> Tuple[int, ...]:
        """Constraint check against exact pipe widths (not estimates)."""
        out = []
        for s in state.switches:
            if result.final_degree(s) > self.constraints.max_degree:
                out.append(s)
                continue
            if self.constraints.max_pipe_width is not None:
                for key, p in result.pipe_finals.items():
                    if s in key and p.width > self.constraints.max_pipe_width:
                        out.append(s)
                        break
        return tuple(out)

    def _connectivity_plan(self, state: SynthesisState) -> Tuple[Tuple[int, int], ...]:
        """Extra links joining pipe-disconnected switch groups.

        Patterns whose processor clusters never communicate leave the
        switch graph in several components; Definition 1 requires strong
        connectivity, so one link joins each extra component, attached
        at the lowest-degree switch of each side.  Counting these links
        in :meth:`PartitionResult.final_degree` lets the main loop react
        (by splitting) when the repair would bust the port budget.
        """
        adjacency: Dict[int, set] = {s: set() for s in state.switches}
        for pair in state.pipes():
            u, v = sorted(pair)
            adjacency[u].add(v)
            adjacency[v].add(u)
        components: List[List[int]] = []
        remaining = set(state.switches)
        while remaining:
            start = min(remaining)
            seen = {start}
            frontier = [start]
            while frontier:
                s = frontier.pop()
                for nxt in adjacency[s]:
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            components.append(sorted(seen))
            remaining -= seen
        plan: List[Tuple[int, int]] = []
        degrees = {s: state.estimated_degree(s) for s in state.switches}
        while len(components) > 1:
            a = min(components[0], key=lambda s: degrees[s])
            b = min(components[1], key=lambda s: degrees[s])
            plan.append((a, b))
            degrees[a] += 1
            degrees[b] += 1
            components = [sorted(components[0] + components[1])] + components[2:]
        return tuple(plan)

    def _record_estimate_gaps(
        self, state: SynthesisState, result: PartitionResult
    ) -> None:
        metrics = self.obs.metrics
        metrics.counter("synthesis.color.pipes").inc(len(result.pipe_finals))
        for key, final in result.pipe_finals.items():
            u, v = final.switches
            estimate = state.pipe_estimate(u, v)
            if final.width != estimate:
                result.estimate_gap.append(((u, v), estimate, final.width))
                metrics.counter("synthesis.color.estimate_gaps").inc()
                self.obs.tracer.event(
                    "synthesis.color.gap",
                    pipe=f"{u}-{v}",
                    estimate=estimate,
                    exact=final.width,
                )


def partition(
    analysis: CliqueAnalysis,
    constraints: Optional[DesignConstraints] = None,
    seed: int = 0,
) -> PartitionResult:
    """Convenience wrapper around :class:`Partitioner`."""
    return Partitioner(analysis, constraints=constraints, seed=seed).run()
