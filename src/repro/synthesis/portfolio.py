"""Parallel synthesis portfolio: K seeded runs fanned through the eval runner.

The paper's evaluation stops at 16 nodes; at 64-256 nodes a single
annealing run is minutes of work and many seeds fail the constraints
outright, so candidate generation only scales if the seeds run in
parallel and repeats hit cache.  This module treats each (seed,
schedule) of a portfolio as one :class:`~repro.eval.parallel.SynthesisCell`
— content-addressed exactly like the evaluation grids — and fans the
whole grid through :func:`~repro.eval.parallel.run_cells`.

Determinism contract
--------------------
The winner is selected from the cells' JSON payloads by
``(objective, links, seed, cell index)`` and rehydrated from the
winning payload via :func:`~repro.eval.serialize.design_from_dict`, so
the returned design is byte-identical (under ``design_to_dict``) across
``--jobs`` values and cold/warm cache states — the same guarantee the
eval determinism harness pins for simulation grids.  The optional
early-stop race (``target_objective``) breaks that cross-``jobs``
identity by construction (how many cells run depends on the wave width)
and is therefore off by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.eval.parallel import (
    CellOutcome,
    ProgressCallback,
    ResultCache,
    SynthesisCell,
    resolve_jobs,
    run_cells,
)
from repro.eval.serialize import design_from_dict
from repro.model.pattern import CommunicationPattern
from repro.obs import DISABLED, Observability
from repro.synthesis.annealing import AnnealSchedule
from repro.synthesis.constraints import DesignConstraints
from repro.synthesis.generator import GeneratedDesign

# Deterministic objectives over the serialized design payload (the
# winner must be selectable from cached JSON without rehydrating every
# candidate).  Lower is better for all of them.
OBJECTIVES: Dict[str, Callable[[dict], float]] = {
    "links": lambda design: float(len(design["links"])),
    "switches": lambda design: float(design["num_switches"]),
    "avg-hops": lambda design: (
        sum(len(route[2]) - 1 for route in design["routes"]) / len(design["routes"])
        if design["routes"]
        else 0.0
    ),
}


@dataclass(frozen=True)
class PortfolioConfig:
    """Shape of one synthesis portfolio.

    Attributes:
        size: number of seeds; seed ``i`` of the grid is
            ``seed_base + i``.
        seed_base: first seed of the grid.
        schedules: annealing schedules crossed with every seed
            (``None`` entries run the Appendix's greedy walk only), so
            the portfolio has ``size * len(schedules)`` runs.
        objective: key into :data:`OBJECTIVES` ranking the candidates.
        restarts: in-process restarts per run (kept at 1 by default —
            the portfolio's seeds replace serial restarts).
        reroute: enable the global route optimizer (ablation knob).
        moves: enable inter-partition processor moves (ablation knob).
        target_objective: when set, runs execute in waves of the
            effective ``jobs`` width and the race stops at the first
            wave containing a candidate at or below this objective
            value.  Results then depend on the wave width, so this
            breaks the cross-``jobs`` byte-identity guarantee; off by
            default.
    """

    size: int = 8
    seed_base: int = 0
    schedules: Tuple[Optional[AnnealSchedule], ...] = (None,)
    objective: str = "links"
    restarts: int = 1
    reroute: bool = True
    moves: bool = True
    target_objective: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise SynthesisError(f"portfolio needs at least one seed, got {self.size}")
        if not self.schedules:
            raise SynthesisError("portfolio needs at least one schedule (None is one)")
        if self.objective not in OBJECTIVES:
            raise SynthesisError(
                f"unknown objective {self.objective!r}; "
                f"choose from {sorted(OBJECTIVES)}"
            )
        if self.restarts < 1:
            raise SynthesisError(f"restarts must be positive, got {self.restarts}")


@dataclass(frozen=True)
class PortfolioRun:
    """Outcome summary of one (seed, schedule) cell of the portfolio."""

    label: str
    seed: int
    schedule_index: int
    status: str  # "ok" | "infeasible" | "skipped" (early-stop race only)
    cache_hit: bool
    seconds: float
    objective: Optional[float] = None
    links: Optional[int] = None
    switches: Optional[int] = None
    contention_free: Optional[bool] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class PortfolioResult:
    """A selected winner plus the full per-run record."""

    design: GeneratedDesign
    winner: PortfolioRun
    runs: Tuple[PortfolioRun, ...]
    objective: str
    early_stopped: bool = False

    def summary_dict(self) -> dict:
        """Deterministic summary (no timings, no cache state) — the
        byte-identity surface the portfolio determinism tests pin."""
        return {
            "objective": self.objective,
            "winner": {
                "seed": self.winner.seed,
                "schedule_index": self.winner.schedule_index,
                "objective": self.winner.objective,
                "links": self.winner.links,
                "switches": self.winner.switches,
            },
            "runs": [
                {
                    "seed": run.seed,
                    "schedule_index": run.schedule_index,
                    "status": run.status,
                    "objective": run.objective,
                    "links": run.links,
                    "switches": run.switches,
                }
                for run in self.runs
            ],
        }

    def render(self) -> str:
        """Human-readable per-run table for the CLI."""
        header = f"{'run':<24} {'status':<10} {'objective':>9} {'links':>5} {'sw':>3} {'time':>8}"
        lines = [header, "-" * len(header)]
        for run in self.runs:
            timing = "cached" if run.cache_hit else f"{run.seconds:.2f}s"
            if run.status == "skipped":
                timing = "-"
            obj = f"{run.objective:.2f}" if run.objective is not None else "-"
            links = str(run.links) if run.links is not None else "-"
            switches = str(run.switches) if run.switches is not None else "-"
            marker = " *" if run is self.winner else ""
            lines.append(
                f"{run.label:<24} {run.status:<10} {obj:>9} {links:>5} "
                f"{switches:>3} {timing:>8}{marker}"
            )
        return "\n".join(lines)


def portfolio_cells(
    pattern: CommunicationPattern,
    constraints: Optional[DesignConstraints],
    config: PortfolioConfig,
) -> List[SynthesisCell]:
    """The seed-major (seed x schedule) cell grid of one portfolio."""
    cells = []
    for i in range(config.size):
        seed = config.seed_base + i
        for j, schedule in enumerate(config.schedules):
            suffix = f"/g{j}" if len(config.schedules) > 1 else ""
            cells.append(
                SynthesisCell(
                    label=f"synth:{pattern.name}:s{seed}{suffix}",
                    pattern=pattern,
                    seed=seed,
                    constraints=constraints,
                    schedule=schedule,
                    restarts=config.restarts,
                    reroute=config.reroute,
                    moves=config.moves,
                )
            )
    return cells


def _summarize(
    cell: SynthesisCell,
    outcome: Optional[CellOutcome],
    schedule_index: int,
    objective: Callable[[dict], float],
) -> PortfolioRun:
    if outcome is None:
        return PortfolioRun(
            label=cell.label,
            seed=cell.seed,
            schedule_index=schedule_index,
            status="skipped",
            cache_hit=False,
            seconds=0.0,
        )
    payload = outcome.payload
    if payload.get("status") != "ok":
        return PortfolioRun(
            label=cell.label,
            seed=cell.seed,
            schedule_index=schedule_index,
            status="infeasible",
            cache_hit=outcome.cache_hit,
            seconds=outcome.seconds,
            error=payload.get("error"),
        )
    design = payload["design"]
    return PortfolioRun(
        label=cell.label,
        seed=cell.seed,
        schedule_index=schedule_index,
        status="ok",
        cache_hit=outcome.cache_hit,
        seconds=outcome.seconds,
        objective=objective(design),
        links=len(design["links"]),
        switches=design["num_switches"],
        contention_free=design["certificate"]["contention_free"],
    )


def _race(
    cells: Sequence[SynthesisCell],
    target: float,
    objective: Callable[[dict], float],
    jobs: Optional[int],
    cache: Optional[ResultCache],
    progress: Optional[ProgressCallback],
    obs: Observability,
) -> Tuple[List[Optional[CellOutcome]], bool]:
    """Early-stop race: fixed-width waves until the target is met.

    Deterministic for a *fixed* ``jobs`` value (waves are prefixes of
    the cell grid in order), but the set of executed cells depends on
    the wave width — which is why the race is opt-in.
    """
    wave = resolve_jobs(jobs) or 1
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    for start in range(0, len(cells), wave):
        chunk = list(cells[start : start + wave])
        for offset, outcome in enumerate(
            run_cells(chunk, jobs=jobs, cache=cache, progress=progress, obs=obs)
        ):
            outcomes[start + offset] = outcome
        met = any(
            o is not None
            and o.payload.get("status") == "ok"
            and objective(o.payload["design"]) <= target
            for o in outcomes[: start + len(chunk)]
        )
        if met:
            return outcomes, start + len(chunk) < len(cells)
    return outcomes, False


def synthesize_portfolio(
    pattern: CommunicationPattern,
    constraints: Optional[DesignConstraints] = None,
    config: Optional[PortfolioConfig] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    obs: Optional[Observability] = None,
) -> PortfolioResult:
    """Fan a portfolio of seeded synthesis runs and pick the winner.

    Every (seed, schedule) run is one cached :class:`SynthesisCell`;
    ``jobs``/``cache`` behave exactly as in
    :func:`repro.eval.parallel.run_cells`.  The winner minimizes
    ``(objective, links, seed, cell index)`` over the successful runs
    and is rehydrated from its serialized payload, making the result
    byte-identical across ``jobs`` values and cache states.  Raises
    :class:`SynthesisError` when every run failed the constraints.
    """
    obs = obs if obs is not None else DISABLED
    config = config or PortfolioConfig()
    objective = OBJECTIVES[config.objective]
    cells = portfolio_cells(pattern, constraints, config)
    with obs.tracer.span(
        "portfolio.run",
        pattern=pattern.name,
        runs=len(cells),
        objective=config.objective,
    ):
        if config.target_objective is None:
            executed: List[Optional[CellOutcome]] = list(
                run_cells(cells, jobs=jobs, cache=cache, progress=progress, obs=obs)
            )
            early_stopped = False
        else:
            executed, early_stopped = _race(
                cells,
                config.target_objective,
                objective,
                jobs,
                cache,
                progress,
                obs,
            )
    schedules = len(config.schedules)
    runs = tuple(
        _summarize(cell, outcome, i % schedules, objective)
        for i, (cell, outcome) in enumerate(zip(cells, executed))
    )
    ranked = [
        (run.objective, run.links, run.seed, i)
        for i, run in enumerate(runs)
        if run.status == "ok" and run.objective is not None and run.links is not None
    ]
    if obs.metrics.enabled:
        m = obs.metrics
        m.counter("portfolio.runs").inc(len(runs))
        m.counter("portfolio.cache_hits").inc(sum(1 for r in runs if r.cache_hit))
        m.counter("portfolio.infeasible").inc(
            sum(1 for r in runs if r.status == "infeasible")
        )
        if early_stopped:
            m.counter("portfolio.early_stops").inc()
    if not ranked:
        errors = [f"{run.label}: {run.error}" for run in runs if run.error]
        raise SynthesisError(
            f"portfolio: all {len(runs)} runs failed the design constraints:\n  "
            + "\n  ".join(errors)
        )
    _, _, _, winner_index = min(ranked)
    winner = runs[winner_index]
    winning_outcome = executed[winner_index]
    assert winning_outcome is not None  # ranked only holds executed runs
    design = design_from_dict(winning_outcome.payload["design"], pattern)
    if obs.metrics.enabled:
        m = obs.metrics
        m.gauge("portfolio.winner_seed").set(winner.seed)
        if winner.objective is not None:
            m.gauge("portfolio.winner_objective").set(winner.objective)
        m.gauge("portfolio.winner_links").set(design.num_links)
    return PortfolioResult(
        design=design,
        winner=winner,
        runs=runs,
        objective=config.objective,
        early_stopped=early_stopped,
    )
