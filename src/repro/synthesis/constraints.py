"""Design constraints for the partitioning algorithm (paper Section 3.4).

The paper's running constraint is *maximum node degree*: each switch's
port count (attached processors + links) must not exceed a constant —
five in the evaluation, matching mesh/torus switches.  The constraint
interface also supports limits on pipe width and processors per switch,
which are natural additional SoC design constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConstraintError
from repro.synthesis.state import SynthesisState

# Matches the 5-port switches assumed throughout the paper's evaluation.
PAPER_MAX_DEGREE = 5


@dataclass(frozen=True)
class DesignConstraints:
    """Limits every switch of the final network must satisfy.

    Attributes:
        max_degree: maximum switch port count (processor ports plus one
            port per link).  The paper's evaluation uses 5.
        max_pipe_width: optional cap on parallel links between a switch
            pair.
        max_processors_per_switch: optional cap on direct attachments.
    """

    max_degree: int = PAPER_MAX_DEGREE
    max_pipe_width: Optional[int] = None
    max_processors_per_switch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_degree < 2:
            raise ConstraintError(
                f"max_degree must be at least 2, got {self.max_degree}"
            )
        if self.max_pipe_width is not None and self.max_pipe_width < 1:
            raise ConstraintError("max_pipe_width must be positive when set")
        if (
            self.max_processors_per_switch is not None
            and self.max_processors_per_switch < 1
        ):
            raise ConstraintError("max_processors_per_switch must be positive when set")

    def satisfied_by(self, state: SynthesisState, switch: int) -> bool:
        """Whether one switch meets the constraints under link estimates."""
        if state.estimated_degree(switch) > self.max_degree:
            return False
        n_procs = len(state.switch_procs[switch])
        if (
            self.max_processors_per_switch is not None
            and n_procs > self.max_processors_per_switch
        ):
            return False
        if self.max_pipe_width is not None:
            for other in state.pipes_of(switch):
                if state.pipe_estimate(switch, other) > self.max_pipe_width:
                    return False
        return True

    def violators(self, state: SynthesisState) -> Tuple[int, ...]:
        """Switches violating the constraints, in id order."""
        return tuple(
            s for s in state.switches if not self.satisfied_by(state, s)
        )

    def check_feasible(self, num_processors: int) -> None:
        """Reject constraint sets no network could ever satisfy.

        A switch must host at least one processor and keep at least one
        port for connectivity whenever the system has several switches.
        """
        if num_processors > 1 and self.max_degree < 2:
            raise ConstraintError(
                "max_degree < 2 cannot connect more than one processor"
            )
        if (
            self.max_processors_per_switch is not None
            and self.max_processors_per_switch >= self.max_degree
            and num_processors > self.max_degree
        ):
            raise ConstraintError(
                "max_processors_per_switch leaves no ports for links; "
                "the switch graph could never be connected"
            )
