"""Content-keyed memoization for pipe coloring (the synthesis hot path).

The move-evaluation loops of :mod:`repro.synthesis.moves` and the
global reroute passes revisit the same pipe *contents* constantly: a
candidate move is proposed, scored, reverted, and a later step lands on
the identical (forward, backward) communication sets again.  Clique
enumeration over those sets is pure — a function of the communication
set and the pattern's maximum cliques only — so both the ``Fast_Color``
bound and the exact finalization coloring are memoized here, keyed by
the frozen communication set itself.

One :class:`ColorMemo` is shared by a whole synthesis run (across
pipes, transaction reverts, annealing steps, and re-partitioning
rounds).  The directional ``Fast_Color`` bound is cached per direction,
so symmetric pipes and pipes that swap orientations share entries.
Entries are bounded with a generous cap (insertion-order eviction); the
distinct pipe contents of one run are far below it, but the bound keeps
pathological workloads from growing without limit.  Recency is *not*
tracked per hit — hits are the hot path, and the cap is sized so
eviction effectively never happens.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Sequence, Tuple

from repro.model.cliques import Clique
from repro.model.message import Communication
from repro.synthesis.coloring import exact_coloring
from repro.synthesis.conflict_graph import build_conflict_graph
from repro.synthesis.fast_color import fast_color_directional

#: Default LRU bound — far above the distinct pipe contents any
#: realistic synthesis run produces.
DEFAULT_MAXSIZE = 65536

_FrozenComms = FrozenSet[Communication]


class ColorMemo:
    """Bounded caches for the directional ``Fast_Color`` bound and the
    exact finalization coloring, keyed by communication-set content.

    Both caches are pure with respect to their key because the
    communication maximum clique set is fixed for the pattern the memo
    serves; one memo must never be shared between different analyses.
    Hit/miss counts are exposed so the partitioner can report them
    through the observability registry.
    """

    __slots__ = (
        "max_cliques",
        "maxsize",
        "enabled",
        "fast_hits",
        "fast_misses",
        "exact_hits",
        "exact_misses",
        "_fast",
        "_exact",
    )

    def __init__(
        self, max_cliques: Sequence[Clique], maxsize: int = DEFAULT_MAXSIZE
    ) -> None:
        self.max_cliques = max_cliques
        self.maxsize = maxsize
        self.enabled = True
        self.fast_hits = 0
        self.fast_misses = 0
        self.exact_hits = 0
        self.exact_misses = 0
        self._fast: Dict[_FrozenComms, int] = {}
        self._exact: Dict[_FrozenComms, Tuple[int, Dict[Communication, int]]] = {}

    # -- Fast_Color -----------------------------------------------------

    def fast_directional(self, comms: AbstractSet[Communication]) -> int:
        """Memoized ``max_K |K ∩ comms|`` over the pattern's cliques."""
        if not self.enabled:
            return fast_color_directional(comms, self.max_cliques)
        key = comms if type(comms) is frozenset else frozenset(comms)
        cached = self._fast.get(key)
        if cached is not None:
            self.fast_hits += 1
            return cached
        self.fast_misses += 1
        value = fast_color_directional(key, self.max_cliques)
        self._fast[key] = value
        if len(self._fast) > self.maxsize:
            del self._fast[next(iter(self._fast))]
        return value

    def fast(
        self,
        forward: AbstractSet[Communication],
        backward: AbstractSet[Communication],
    ) -> int:
        """Memoized ``Fast_Color`` of a pipe: the max of the two
        directional bounds (exactly :func:`repro.synthesis.fast_color
        .fast_color`)."""
        return max(self.fast_directional(forward), self.fast_directional(backward))

    def fast_pair(
        self,
        forward: _FrozenComms,
        backward: _FrozenComms,
    ) -> int:
        """:meth:`fast` for already-frozen directional sets — the
        estimate-refresh hot path, with the per-direction lookups
        inlined."""
        if not self.enabled:
            return max(
                fast_color_directional(forward, self.max_cliques),
                fast_color_directional(backward, self.max_cliques),
            )
        cache = self._fast
        a = cache.get(forward)
        if a is None:
            self.fast_misses += 1
            a = fast_color_directional(forward, self.max_cliques)
            cache[forward] = a
        else:
            self.fast_hits += 1
        b = cache.get(backward)
        if b is None:
            self.fast_misses += 1
            b = fast_color_directional(backward, self.max_cliques)
            cache[backward] = b
            if len(cache) > self.maxsize:
                del cache[next(iter(cache))]
        else:
            self.fast_hits += 1
        return a if a >= b else b

    # -- exact coloring -------------------------------------------------

    def exact(
        self, comms: AbstractSet[Communication]
    ) -> Tuple[int, Dict[Communication, int]]:
        """Memoized exact coloring of one direction's conflict graph.

        Returns ``(chromatic number, coloring)``; the coloring is a
        fresh dict per call so callers may store or mutate it freely.
        """
        if not self.enabled:
            return exact_coloring(build_conflict_graph(comms, self.max_cliques))
        key = comms if type(comms) is frozenset else frozenset(comms)
        cached = self._exact.get(key)
        if cached is not None:
            self.exact_hits += 1
            return cached[0], dict(cached[1])
        self.exact_misses += 1
        k, colors = exact_coloring(build_conflict_graph(key, self.max_cliques))
        self._exact[key] = (k, colors)
        if len(self._exact) > self.maxsize:
            del self._exact[next(iter(self._exact))]
        return k, dict(colors)
