"""Conflict graphs of pipe communication sets (paper Section 3.1).

The conflict graph of the set of communications crossing a pipe in one
direction has a vertex per communication and an edge between every pair
that potentially contends in time (i.e. that co-occurs in some
communication clique).  Coloring it yields the links that direction
needs; the pipe's width is the larger of the two directions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Sequence, Set, Tuple

from repro.model.cliques import Clique
from repro.model.message import Communication

ConflictGraph = Dict[Communication, Set[Communication]]


def build_conflict_graph(
    comms: Iterable[Communication],
    max_cliques: Sequence[Clique],
) -> ConflictGraph:
    """Conflict graph restricted to ``comms``.

    Edges join communications that appear together in at least one
    clique of the communication maximum clique set (they overlap in
    time, so routing them over the same link would create contention).
    """
    members = set(comms)
    adj: ConflictGraph = {c: set() for c in members}
    for clique in max_cliques:
        present = sorted(clique & members)
        for i, a in enumerate(present):
            for b in present[i + 1 :]:
                adj[a].add(b)
                adj[b].add(a)
    return adj


def conflict_edge_count(adj: ConflictGraph) -> int:
    """Number of undirected edges in a conflict graph."""
    return sum(len(nbrs) for nbrs in adj.values()) // 2
