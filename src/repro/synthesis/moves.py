"""Processor moves between a freshly split switch pair (Appendix steps 7-9).

After ``Best_Route`` settles the routing, the algorithm looks for a
single processor whose transfer between the two partitions lowers the
estimated number of links, keeping the partition sizes within two of
each other (the paper's balance rule).  Candidate moves are evaluated
with direct-path route re-anchoring (exactly what
:meth:`SynthesisState.move_processor` does) and scored by the total
estimate of the pipes incident to the pair.

Candidates are evaluated by :meth:`SynthesisState.preview_move_score`
— the objective of the hypothetical move computed from the incremental
indexes and the coloring memo without mutating the state — so a
rejected candidate costs no apply/rollback churn at all (the original
implementation paid an O(|state|) snapshot copy per candidate).
Accepted moves mutate inside :meth:`SynthesisState.transaction` scopes
with savepoint rewind.  Decisions, scores, and RNG draws are
byte-identical to the snapshot-based implementation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.synthesis.state import SynthesisState

BALANCE_LIMIT = 2


@dataclass(frozen=True)
class ProcessorMove:
    """One candidate processor move and its predicted link estimate."""

    processor: int
    to_switch: int
    predicted_links: int


def _balanced_after(state: SynthesisState, si: int, sj: int, proc: int, to: int) -> bool:
    """Whether moving ``proc`` keeps |S_i| and |S_j| within the balance rule."""
    ni = len(state.switch_procs[si])
    nj = len(state.switch_procs[sj])
    if to == sj:
        ni, nj = ni - 1, nj + 1
    else:
        ni, nj = ni + 1, nj - 1
    if min(ni, nj) < 1:
        return False
    return abs(ni - nj) <= BALANCE_LIMIT


def _score(state: SynthesisState, si: int, sj: int) -> Tuple[int, int]:
    """Move objective: (estimated links, pipe traffic) around the pair.

    The primary objective is the paper's — the estimated number of
    links over the pipes touching the pair.  The secondary objective is
    the number of communications crossing those pipes: moves that
    internalize communications without changing the link estimate are
    still worth taking, because they shrink the conflict graphs of
    later bisections.  Both terms read incrementally maintained indexes
    (estimates dirty-tracked per pipe, traffic from the incidence
    counts), so a score after a candidate move only pays for the pipes
    that move actually touched.
    """
    links = state.local_links(_affected_switches(state, si, sj))
    return (links, state.pair_traffic(si, sj))


def best_processor_move(
    state: SynthesisState, si: int, sj: int
) -> Optional[ProcessorMove]:
    """The best strictly-improving processor move, or ``None``.

    Evaluates every processor of the pair in both directions, scoring
    each by :func:`_score` after the move, and returns the
    lowest-scoring move that strictly improves on the current
    assignment (ties broken toward the lowest processor id, keeping the
    algorithm deterministic given its RNG).
    """
    current = _score(state, si, sj)
    best: Optional[ProcessorMove] = None
    best_score = current
    candidates = [
        (p, sj) for p in sorted(state.switch_procs[si])
    ] + [
        (p, si) for p in sorted(state.switch_procs[sj])
    ]
    for proc, to in candidates:
        if not _balanced_after(state, si, sj, proc, to):
            continue
        predicted = state.preview_move_score(proc, to, si, sj)
        if predicted < best_score:
            best = ProcessorMove(
                processor=proc, to_switch=to, predicted_links=predicted[0]
            )
            best_score = predicted
    return best


def _affected_switches(state: SynthesisState, si: int, sj: int) -> Tuple[int, ...]:
    """The pair plus every switch piped to either of them."""
    return tuple({si, sj, *state.pipes_of(si), *state.pipes_of(sj)})


def annealed_moves(
    state: SynthesisState,
    si: int,
    sj: int,
    rng: random.Random,
    steps: int = 80,
    initial_temperature: float = 3.0,
    cooling: float = 0.94,
    moves_per_temperature: int = 1,
) -> int:
    """Temperature-driven processor moves between a split pair.

    The paper describes the partition optimization as a simulated
    annealing technique; the Appendix pseudo-code is its greedy limit
    (:func:`best_processor_move`).  This variant proposes random moves
    and accepts worsening ones with Boltzmann probability, restoring
    the best state visited — occasionally escaping plateaus the greedy
    walk cannot.  Returns the number of accepted moves.

    ``moves_per_temperature`` holds the temperature for that many
    proposals before each cooling step (an
    :class:`~repro.synthesis.annealing.AnnealSchedule` maps onto these
    four parameters); the default of 1 cools every proposal — the
    historical behavior, byte-identical for existing callers.

    The walk runs inside one outer transaction: proposals are scored by
    preview (no mutation), only accepted moves are applied, the best
    state visited is a savepoint into the shared undo log, and the
    final rewind replays inverse operations instead of copying the
    state.
    """

    def scalar(score: Tuple[int, int]) -> float:
        links, traffic = score
        return links * 1000.0 + traffic

    current = scalar(_score(state, si, sj))
    best = current
    accepted = 0
    temperature = initial_temperature
    with state.transaction() as walk:
        best_mark = walk.savepoint()
        # The candidate list is a pure function of the pair's current
        # membership, so it only needs rebuilding after an accepted
        # move — rejected proposals leave the state untouched.
        candidates = None
        for step in range(steps):
            if candidates is None:
                candidates = [
                    (p, sj) for p in sorted(state.switch_procs[si])
                ] + [
                    (p, si) for p in sorted(state.switch_procs[sj])
                ]
                candidates = [
                    (p, to)
                    for p, to in candidates
                    if _balanced_after(state, si, sj, p, to)
                ]
            if not candidates:
                break
            proc, to = rng.choice(candidates)
            candidate = scalar(state.preview_move_score(proc, to, si, sj))
            delta = candidate - current
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                state.move_processor(proc, to)
                current = candidate
                accepted += 1
                candidates = None
                if current < best:
                    best = current
                    best_mark = walk.savepoint()
            if (step + 1) % moves_per_temperature == 0:
                temperature *= cooling
        walk.rollback_to(best_mark)
        walk.commit()
    return accepted
