"""Graph coloring for pipe conflict graphs (paper Section 3.1).

Finding the minimum number of links a pipe needs is a minimum
graph-coloring problem over the pipe's conflict graph.  The paper
estimates it with ``Fast_Color`` during partitioning and solves it
exactly at finalization; by then the conflict graphs are tiny, so a
branch-and-bound exact solver seeded by DSATUR is practical.

Graphs are adjacency dicts ``{node: set(neighbours)}``; all functions
treat them as undirected and expect symmetric adjacency.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

Node = Hashable
Adjacency = Mapping[Node, Set[Node]]
Coloring = Dict[Node, int]

# Beyond this size the exact solver falls back to DSATUR; conflict
# graphs at finalization are far smaller in practice.
EXACT_NODE_LIMIT = 40


def validate_adjacency(adj: Adjacency) -> None:
    """Assert the adjacency structure is symmetric and loop-free."""
    for node, nbrs in adj.items():
        if node in nbrs:
            raise ValueError(f"conflict graph has a self-loop at {node!r}")
        for n in nbrs:
            if n not in adj or node not in adj[n]:
                raise ValueError(f"conflict graph edge {node!r}-{n!r} is not symmetric")


def is_proper_coloring(adj: Adjacency, coloring: Mapping[Node, int]) -> bool:
    """Whether no edge joins two nodes of the same color."""
    for node, nbrs in adj.items():
        if node not in coloring:
            return False
        for n in nbrs:
            if coloring[node] == coloring.get(n):
                return False
    return True


def greedy_coloring(adj: Adjacency, order: Optional[Sequence[Node]] = None) -> Coloring:
    """First-fit coloring in the given (default: sorted) node order."""
    if order is None:
        order = sorted(adj, key=repr)
    coloring: Coloring = {}
    for node in order:
        used = {coloring[n] for n in adj[node] if n in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[node] = color
    return coloring


def dsatur_coloring(adj: Adjacency) -> Coloring:
    """DSATUR heuristic: color the most saturated node first.

    Exact on many structured graphs (bipartite, cliques, cycles of even
    length) and a strong upper bound elsewhere.
    """
    coloring: Coloring = {}
    saturation: Dict[Node, Set[int]] = {n: set() for n in adj}
    uncolored = set(adj)
    while uncolored:
        node = max(
            uncolored,
            key=lambda n: (len(saturation[n]), len(adj[n]), -_rank(n)),
        )
        used = saturation[node]
        color = 0
        while color in used:
            color += 1
        coloring[node] = color
        uncolored.discard(node)
        for n in adj[node]:
            saturation[n].add(color)
    return coloring


def _rank(node: Node) -> int:
    """Stable tie-break rank for heterogeneous node types.

    Must be identical across processes: ``hash()`` on strings is
    randomized per interpreter (PYTHONHASHSEED), which made colorings —
    and therefore synthesized routings — differ from run to run.
    """
    return zlib.crc32(repr(node).encode("utf-8"))


def num_colors(coloring: Mapping[Node, int]) -> int:
    """Color count of a coloring (0 for empty graphs)."""
    return 1 + max(coloring.values()) if coloring else 0


def greedy_clique_lower_bound(adj: Adjacency) -> int:
    """A clique found greedily from the highest-degree node: a lower
    bound on the chromatic number."""
    if not adj:
        return 0
    start = max(adj, key=lambda n: (len(adj[n]), -_rank(n)))
    clique = {start}
    candidates = set(adj[start])
    while candidates:
        nxt = max(candidates, key=lambda n: (len(adj[n] & candidates), -_rank(n)))
        clique.add(nxt)
        candidates &= adj[nxt]
    return len(clique)


def exact_coloring(adj: Adjacency, node_limit: int = EXACT_NODE_LIMIT) -> Tuple[int, Coloring]:
    """Minimum coloring via branch and bound (DSATUR-seeded).

    Returns ``(chromatic number, proper coloring)``.  Falls back to the
    DSATUR heuristic when the graph exceeds ``node_limit`` nodes; the
    finalization graphs of the methodology are always far below it.
    """
    if not adj:
        return (0, {})
    upper = dsatur_coloring(adj)
    best_k = num_colors(upper)
    lower = greedy_clique_lower_bound(adj)
    if best_k == lower or len(adj) > node_limit:
        return (best_k, upper)

    nodes: List[Node] = sorted(adj, key=lambda n: (-len(adj[n]), _rank(n)))
    best = dict(upper)

    def backtrack(idx: int, coloring: Coloring, k_used: int) -> None:
        nonlocal best_k, best
        if k_used >= best_k:
            return
        if idx == len(nodes):
            best_k = k_used
            best = dict(coloring)
            return
        node = nodes[idx]
        used = {coloring[n] for n in adj[node] if n in coloring}
        # Reusing an existing color keeps k_used; opening the single new
        # color ``k_used`` is only worthwhile below the incumbent bound.
        for color in range(min(k_used, best_k - 2) + 1):
            if color in used:
                continue
            coloring[node] = color
            backtrack(idx + 1, coloring, max(k_used, color + 1))
            del coloring[node]
            if best_k == lower:
                return

    backtrack(0, {}, 0)
    return (best_k, best)


def build_adjacency(nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]) -> Dict[Node, Set[Node]]:
    """Assemble a symmetric adjacency dict from nodes and edge pairs."""
    adj: Dict[Node, Set[Node]] = {n: set() for n in nodes}
    for a, b in edges:
        if a == b:
            continue
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    return adj
