"""Global route optimization for design-constraint satisfaction.

``Best_Route`` only considers detours through the sibling of a freshly
split switch.  Patterns whose processes talk to many distinct partners
(BT/SP's six-neighbour sweeps) additionally need *multi-hop* routes
that funnel several logical neighbours over one physical link; the
paper folds this into its simulated-annealing route optimization.  This
module implements that global pass: communications crossing a pipe of
an over-budget switch are detoured through intermediate switches
whenever doing so reduces, lexicographically, (total degree excess,
total estimated links).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.model.message import Communication
from repro.synthesis.constraints import DesignConstraints
from repro.synthesis.state import SynthesisState


def degree_excess(state: SynthesisState, constraints: DesignConstraints) -> int:
    """Total port overshoot across all switches under link estimates."""
    deg = state.all_estimated_degrees()
    return sum(max(0, d - constraints.max_degree) for d in deg.values())


def _objective(state: SynthesisState, constraints: DesignConstraints) -> Tuple[int, int]:
    return state.objective(constraints.max_degree)


def reduce_degree_violations(
    state: SynthesisState,
    constraints: DesignConstraints,
    max_rounds: int = 30,
) -> int:
    """Greedy global rerouting until no move lowers the objective.

    In each round, every communication crossing a pipe of an over-budget
    switch tries (a) a detour through every other switch and (b) a
    shortcut that removes an intermediate switch from its path.  Moves
    are committed when they strictly lower (degree excess, total
    links), so the loop terminates.  Returns the number of committed
    moves.
    """
    moves = 0
    for _ in range(max_rounds):
        violators = [
            s
            for s in state.switches
            if state.estimated_degree(s) > constraints.max_degree
        ]
        if not violators:
            break
        improved = False
        for s in sorted(violators, key=state.estimated_degree, reverse=True):
            for k in state.pipes_of(s):
                crossing = sorted(
                    state.pipe_forward(s, k) | state.pipe_forward(k, s)
                )
                for comm in crossing:
                    if _improve_comm(state, constraints, comm, s, k):
                        moves += 1
                        improved = True
            # Compound move: emptying a whole pipe drops one port at
            # both endpoints; single-communication moves cannot cross
            # that barrier when the pipe carries several non-conflicting
            # communications.
            for k in state.pipes_of(s):
                if _try_eliminate_pipe(state, constraints, s, k):
                    moves += 1
                    improved = True
        if not improved:
            break
    return moves


def _try_eliminate_pipe(
    state: SynthesisState,
    constraints: DesignConstraints,
    s: int,
    k: int,
) -> bool:
    """Reroute every communication off the ``s-k`` pipe if that lowers
    the objective overall (each communication takes its individually
    best detour)."""
    crossing = sorted(state.pipe_forward(s, k) | state.pipe_forward(k, s))
    if not crossing:
        return False
    before = _objective(state, constraints)
    with state.transaction() as txn:
        for comm in crossing:
            path = state.route_of(comm)
            if not _uses_hop(path, s, k):
                continue
            best_path = None
            best_score = None
            for candidate in _candidate_paths(state, path, s, k):
                if _uses_hop(candidate, s, k):
                    continue
                changed = state.preview_route_change(comm, candidate)
                score = state.preview_objective(changed, constraints.max_degree)
                if best_score is None or score < best_score:
                    best_score = score
                    best_path = candidate
            if best_path is None:
                return False
            state.set_route(comm, best_path)
        if _objective(state, constraints) < before:
            txn.commit()
            return True
    return False


def global_processor_moves(
    state: SynthesisState,
    constraints: DesignConstraints,
    max_rounds: int = 10,
) -> int:
    """Move processors off over-budget switches onto any other switch.

    A last-resort escape used when no violating switch can be split
    further: relocating a processor (with direct route re-anchoring)
    can relieve a port-starved switch.  Moving a switch's only
    processor is allowed — the switch then becomes a pure relay (or
    dies and is dropped at materialization).  Moves commit only when
    they strictly lower (degree excess, total links).  Returns the
    number of committed moves.
    """
    moves = 0
    for _ in range(max_rounds):
        violators = [
            s
            for s in state.switches
            if state.estimated_degree(s) > constraints.max_degree
        ]
        if not violators:
            break
        improved = False
        for s in violators:
            if not state.switch_procs[s]:
                continue
            before = _objective(state, constraints)
            for proc in sorted(state.switch_procs[s]):
                for target in state.switches:
                    if target == s:
                        continue
                    with state.transaction() as txn:
                        state.move_processor(proc, target)
                        if _objective(state, constraints) < before:
                            txn.commit()
                            moves += 1
                            improved = True
                    if improved:
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return moves


def _improve_comm(
    state: SynthesisState,
    constraints: DesignConstraints,
    comm: Communication,
    s: int,
    k: int,
) -> bool:
    """Try all single-switch detours/shortcuts for one hop of ``comm``."""
    old_path = state.route_of(comm)
    if not _uses_hop(old_path, s, k):
        return False
    before = _objective(state, constraints)
    for candidate in _candidate_paths(state, old_path, s, k):
        changed = state.preview_route_change(comm, candidate)
        if state.preview_objective(changed, constraints.max_degree) < before:
            state.set_route(comm, candidate)
            return True
    return False


def _uses_hop(path: Tuple[int, ...], s: int, k: int) -> bool:
    prev = path[0]
    for node in path[1:]:
        if (prev == s and node == k) or (prev == k and node == s):
            return True
        prev = node
    return False


def _candidate_paths(
    state: SynthesisState, path: Tuple[int, ...], s: int, k: int
) -> List[Tuple[int, ...]]:
    """Detours (insert one switch in the s-k hop) and shortcuts (drop an
    interior switch), all normalized and deduplicated."""
    out: List[Tuple[int, ...]] = []
    seen = {path}
    # Routes are simple paths, so inserting a switch not already on the
    # path (detour) or dropping an interior one (shortcut) yields a
    # simple path again — no re-normalization needed.
    # Detours through switches already piped to either endpoint: a
    # disconnected intermediate would add two fresh pipes without
    # relieving the endpoints, so it can never lower the objective.
    candidates = sorted(set(state.pipes_of(s)) | set(state.pipes_of(k)))
    for m in candidates:
        if m in path:
            continue
        detoured: List[int] = []
        for idx, node in enumerate(path):
            detoured.append(node)
            if idx + 1 < len(path) and (node, path[idx + 1]) in ((s, k), (k, s)):
                detoured.append(m)
        candidate = tuple(detoured)
        if candidate not in seen:
            seen.add(candidate)
            out.append(candidate)
    # Shortcuts: drop one interior switch.
    for idx in range(1, len(path) - 1):
        candidate = path[:idx] + path[idx + 1 :]
        if candidate not in seen:
            seen.add(candidate)
            out.append(candidate)
    return out
