"""The ``Fast_Color`` procedure (paper Section 3.3 and Appendix).

Solving graph coloring exactly for every candidate partition would
dominate the methodology's cost, so during partitioning the number of
links a pipe needs is *estimated* with a clique-based lower bound:
communications common to the pipe and to one communication clique form
a clique of the conflict graph, so the largest such intersection lower
bounds the chromatic number.  The paper reports (and our ablation
benchmark confirms) that the bound is almost always exact on the pipes
the methodology encounters.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

from repro.model.cliques import Clique
from repro.model.message import Communication


def fast_color(
    forward: AbstractSet[Communication],
    backward: AbstractSet[Communication],
    max_cliques: Sequence[Clique],
) -> int:
    """Estimate the links a pipe needs (the Appendix ``Fast_Color``).

    Args:
        forward: communications crossing the pipe in its forward
            direction (``C_f``).
        backward: communications crossing in the backward direction
            (``C_b``).
        max_cliques: the communication maximum clique set of the target
            pattern.

    Returns:
        ``max_K max(|K ∩ C_f|, |K ∩ C_b|)`` — a lower bound on the
        number of full-duplex links required for contention freedom.
        Empty pipes need zero links.
    """
    best = 0
    for clique in max_cliques:
        f = len(clique & forward)
        if f > best:
            best = f
        b = len(clique & backward)
        if b > best:
            best = b
    return best


def fast_color_directional(
    comms: AbstractSet[Communication],
    max_cliques: Sequence[Clique],
) -> int:
    """The one-direction bound: ``max_K |K ∩ comms|``."""
    best = 0
    for clique in max_cliques:
        n = len(clique & comms)
        if n > best:
            best = n
    return best
