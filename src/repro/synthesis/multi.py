"""Multi-application network synthesis.

The cross-workload study (paper Section 4.2) shows a network specialized
for one benchmark can degrade others.  When the workload *set* is known
— the common case for the special-purpose systems the paper targets —
the fix is to design for the union of the applications' communication
patterns.  Applications never run concurrently on such systems, so
their patterns are placed on disjoint time ranges: cliques never span
applications, and the methodology sizes each pipe for the worst
application crossing it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import PatternError, SynthesisError
from repro.model.message import Message
from repro.model.pattern import CommunicationPattern
from repro.synthesis.constraints import DesignConstraints
from repro.synthesis.generator import GeneratedDesign, generate_network

# Time gap inserted between consecutive applications' patterns so no
# contention period spans two applications.
_APP_GAP = 10.0


def merge_patterns(
    patterns: Sequence[CommunicationPattern],
    name: str = "",
) -> CommunicationPattern:
    """Concatenate patterns onto disjoint time ranges.

    All patterns must target the same processor count (relabel first if
    they do not).  The result's contention periods are exactly the
    union of the inputs' periods.
    """
    if not patterns:
        raise PatternError("need at least one pattern to merge")
    counts = {p.num_processes for p in patterns}
    if len(counts) != 1:
        raise PatternError(
            f"patterns target different system sizes: {sorted(counts)}; "
            "relabel them onto a common processor set first"
        )
    messages: List[Message] = []
    offset = 0.0
    for p in patterns:
        lo, hi = p.time_span
        for m in p.messages:
            messages.append(
                Message(
                    source=m.source,
                    dest=m.dest,
                    t_start=m.t_start - lo + offset,
                    t_finish=m.t_finish - lo + offset,
                    size_bytes=m.size_bytes,
                    tag=f"{p.name}:{m.tag}",
                )
            )
        offset += (hi - lo) + _APP_GAP
    return CommunicationPattern(
        messages=tuple(messages),
        num_processes=patterns[0].num_processes,
        name=name or "+".join(p.name for p in patterns),
    )


def generate_network_for_set(
    patterns: Iterable[CommunicationPattern],
    constraints: Optional[DesignConstraints] = None,
    seed: int = 0,
    restarts: int = 16,
) -> GeneratedDesign:
    """Synthesize one network serving every pattern contention-free.

    The returned design's certificate covers the merged pattern; since
    the merge preserves each application's contention periods, the
    network is contention-free for each application individually.
    """
    merged = merge_patterns(list(patterns))
    design = generate_network(
        merged, constraints=constraints, seed=seed, restarts=restarts
    )
    if not design.certificate.contention_free:
        raise SynthesisError(
            f"merged design for {merged.name!r} failed its certificate: "
            f"{design.certificate.violations[:3]}"
        )
    return design
