"""Messages and communications (paper Definition 2).

A *communication* is a (source, destination) pair of processors.  A
*message* is one concrete transfer for a communication, carrying the
timing information used by the contention model: the time it leaves its
source, ``t_start``, and the time it is completely absorbed by its
destination, ``t_finish``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PatternError


@dataclass(frozen=True, order=True)
class Communication:
    """A source-destination pair of processors.

    Communications are the vertices of conflict graphs and the elements
    of communication cliques.  They are ordered and hashable so they can
    be stored in sets and sorted deterministically.
    """

    source: int
    dest: int

    def __post_init__(self) -> None:
        if self.source < 0 or self.dest < 0:
            raise PatternError(
                f"processor ids must be non-negative, got ({self.source}, {self.dest})"
            )
        if self.source == self.dest:
            raise PatternError(
                f"communication source and destination must differ, got {self.source}"
            )
        # Communications are hashed constantly (pipe sets, memo keys);
        # cache the dataclass hash — same value, computed once.
        object.__setattr__(self, "_hash", hash((self.source, self.dest)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def reversed(self) -> "Communication":
        """The communication going the opposite way."""
        return Communication(self.dest, self.source)

    def __str__(self) -> str:
        return f"({self.source},{self.dest})"


@dataclass(frozen=True)
class Message:
    """One message of a communication pattern (Definition 2).

    Attributes:
        source: processor id the message leaves from, ``S(m)``.
        dest: processor id that absorbs the message, ``D(m)``.
        t_start: time the message leaves its source, ``T_s(m)``.
        t_finish: time the message is completely absorbed, ``T_f(m)``.
        size_bytes: payload size; not used by the contention model but
            carried through to trace-driven simulation.
        tag: free-form label, typically the originating phase/library
            call, useful when debugging extracted patterns.
    """

    source: int
    dest: int
    t_start: float
    t_finish: float
    size_bytes: int = 1024
    tag: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        # Communication() validates the endpoints.
        Communication(self.source, self.dest)
        if self.t_finish < self.t_start:
            raise PatternError(
                f"message finish time {self.t_finish} precedes start time {self.t_start}"
            )
        if self.size_bytes <= 0:
            raise PatternError(f"message size must be positive, got {self.size_bytes}")

    @property
    def communication(self) -> Communication:
        """The (source, dest) pair this message realizes."""
        return Communication(self.source, self.dest)

    @property
    def duration(self) -> float:
        """Length of the message's contention interval."""
        return self.t_finish - self.t_start

    def overlaps(self, other: "Message") -> bool:
        """Whether two messages potentially collide in time (Definition 3).

        The paper's overlap relation is the standard closed-interval
        intersection test: the four disjuncts of Definition 3 are
        equivalent to ``T_s(m1) <= T_f(m2) and T_s(m2) <= T_f(m1)``.
        """
        return self.t_start <= other.t_finish and other.t_start <= self.t_finish
