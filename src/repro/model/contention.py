"""Time-conflict model (paper Definitions 3 and 4).

The overlap relation pairs up messages that are active at the same time;
the *potential communication contention set* compresses it into the
distinct source-destination 4-tuples that could ever contend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Tuple

from repro.model.message import Communication, Message
from repro.model.pattern import CommunicationPattern


@dataclass(frozen=True, order=True)
class ContentionEvent:
    """A potential contention between two communications (Definition 4).

    The paper represents each event as a 4-tuple ``(s1, d1, s2, d2)``.
    Contention is symmetric, so we canonicalize the pair (``first <=
    second``) to make set intersections with the network resource
    conflict set well defined.
    """

    first: Communication
    second: Communication

    @classmethod
    def of(cls, a: Communication, b: Communication) -> "ContentionEvent":
        """Build a canonically-ordered event from two communications."""
        if b < a:
            a, b = b, a
        return cls(a, b)

    @property
    def as_4tuple(self) -> Tuple[int, int, int, int]:
        """The paper's ``(s1, d1, s2, d2)`` representation."""
        return (self.first.source, self.first.dest, self.second.source, self.second.dest)

    def involves(self, comm: Communication) -> bool:
        """Whether this event mentions ``comm``."""
        return comm in (self.first, self.second)

    def __str__(self) -> str:
        return f"{self.first}~{self.second}"


def overlap_pairs(pattern: CommunicationPattern) -> Iterator[Tuple[Message, Message]]:
    """Iterate over the overlap relation ``O`` (Definition 3).

    Yields each unordered pair of distinct messages whose closed time
    intervals intersect, using a sweep over messages sorted by start
    time so that the cost is proportional to the number of overlapping
    pairs rather than all pairs.
    """
    msgs: List[Message] = list(pattern.sorted_by_start())
    active: List[Message] = []
    for m in msgs:
        # Retire messages that finished strictly before m starts; the
        # overlap relation uses closed intervals, so equality keeps them.
        active = [a for a in active if a.t_finish >= m.t_start]
        for a in active:
            yield (a, m)
        active.append(m)


def potential_contention_set(pattern: CommunicationPattern) -> FrozenSet[ContentionEvent]:
    """The potential communication contention set ``C`` (Definition 4).

    Two messages of the *same* communication trivially share the whole
    path; such self-pairs carry no routing decision and are excluded,
    matching the paper's use of ``C`` (which only ever constrains pairs
    that could be separated onto different links).
    """
    events = set()
    for m1, m2 in overlap_pairs(pattern):
        c1, c2 = m1.communication, m2.communication
        if c1 != c2:
            events.add(ContentionEvent.of(c1, c2))
    return frozenset(events)


def contention_degree(pattern: CommunicationPattern) -> int:
    """Size of ``C``: a crude measure of pattern complexity.

    The paper notes that a complicated communication pattern has a
    larger potential contention set than a simple one; this helper is
    used in reports to rank benchmark complexity.
    """
    return len(potential_contention_set(pattern))
