"""Communication patterns (paper Definitions 1 and 2).

A :class:`CommunicationPattern` is the set of all messages an
application passes between its processes, together with the number of
processors of the system the application maps onto.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.errors import PatternError
from repro.model.message import Communication, Message


@dataclass(frozen=True)
class CommunicationPattern:
    """The communication pattern of an application.

    Attributes:
        messages: every message exchanged, in no particular order.
        num_processes: number of processors ``|P|``; all message
            endpoints must lie in ``range(num_processes)``.
        name: label used in reports (e.g. ``"CG-16"``).
    """

    messages: Tuple[Message, ...]
    num_processes: int
    name: str = "pattern"

    def __post_init__(self) -> None:
        if self.num_processes <= 0:
            raise PatternError(
                f"pattern needs a positive process count, got {self.num_processes}"
            )
        for m in self.messages:
            if m.source >= self.num_processes or m.dest >= self.num_processes:
                raise PatternError(
                    f"message {m.source}->{m.dest} references a processor outside "
                    f"range(0, {self.num_processes})"
                )

    @classmethod
    def from_messages(
        cls,
        messages: Iterable[Message],
        num_processes: int = 0,
        name: str = "pattern",
    ) -> "CommunicationPattern":
        """Build a pattern, inferring the process count if not given."""
        msgs = tuple(messages)
        if num_processes == 0:
            if not msgs:
                raise PatternError("cannot infer process count from an empty pattern")
            num_processes = 1 + max(max(m.source, m.dest) for m in msgs)
        return cls(messages=msgs, num_processes=num_processes, name=name)

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    @property
    def communications(self) -> FrozenSet[Communication]:
        """Distinct (source, dest) pairs appearing in the pattern."""
        return frozenset(m.communication for m in self.messages)

    @property
    def time_span(self) -> Tuple[float, float]:
        """Earliest start and latest finish over all messages."""
        if not self.messages:
            return (0.0, 0.0)
        return (
            min(m.t_start for m in self.messages),
            max(m.t_finish for m in self.messages),
        )

    @property
    def total_bytes(self) -> int:
        """Sum of all message payload sizes."""
        return sum(m.size_bytes for m in self.messages)

    def messages_by_communication(self) -> Dict[Communication, Tuple[Message, ...]]:
        """Group messages by their (source, dest) pair."""
        groups: Dict[Communication, list] = {}
        for m in self.messages:
            groups.setdefault(m.communication, []).append(m)
        return {c: tuple(ms) for c, ms in groups.items()}

    def filter(self, predicate: Callable[[Message], bool]) -> "CommunicationPattern":
        """A new pattern containing only messages matching ``predicate``."""
        return CommunicationPattern(
            messages=tuple(m for m in self.messages if predicate(m)),
            num_processes=self.num_processes,
            name=self.name,
        )

    def restrict_to(self, processes: Iterable[int]) -> "CommunicationPattern":
        """Keep only messages whose endpoints are both in ``processes``."""
        keep = set(processes)
        return self.filter(lambda m: m.source in keep and m.dest in keep)

    def relabel(self, mapping: Dict[int, int], num_processes: int = 0) -> "CommunicationPattern":
        """Rename processors according to ``mapping``.

        Every endpoint appearing in the pattern must be a key of
        ``mapping``; unmapped processors raise :class:`PatternError`.
        """
        new_messages = []
        for m in self.messages:
            if m.source not in mapping or m.dest not in mapping:
                raise PatternError(
                    f"relabel mapping misses endpoint of message {m.source}->{m.dest}"
                )
            new_messages.append(
                Message(
                    source=mapping[m.source],
                    dest=mapping[m.dest],
                    t_start=m.t_start,
                    t_finish=m.t_finish,
                    size_bytes=m.size_bytes,
                    tag=m.tag,
                )
            )
        if num_processes == 0:
            num_processes = self.num_processes
        return CommunicationPattern(
            messages=tuple(new_messages), num_processes=num_processes, name=self.name
        )

    def merged_with(self, other: "CommunicationPattern", name: str = "") -> "CommunicationPattern":
        """Union of two patterns over the larger of the two systems."""
        return CommunicationPattern(
            messages=self.messages + other.messages,
            num_processes=max(self.num_processes, other.num_processes),
            name=name or f"{self.name}+{other.name}",
        )

    def sorted_by_start(self) -> Sequence[Message]:
        """Messages ordered by start time (finish time as tie-break)."""
        return sorted(self.messages, key=lambda m: (m.t_start, m.t_finish, m.source, m.dest))
