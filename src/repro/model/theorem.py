"""Sufficient condition for contention freedom (paper Theorem 1).

An application mapped onto a system is contention-free if the
intersection of its potential communication contention set ``C`` and
the system's network resource conflict set ``R`` is empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.model.conflicts import (
    RouteResources,
    network_resource_conflict_set,
    shared_links,
)
from repro.model.contention import ContentionEvent, potential_contention_set
from repro.model.pattern import CommunicationPattern


@dataclass(frozen=True)
class ContentionViolation:
    """One witness that Theorem 1's condition fails.

    Two communications that overlap in time *and* share links.
    """

    event: ContentionEvent
    links: Tuple[object, ...]

    def __str__(self) -> str:
        links = ", ".join(str(l) for l in self.links)
        return f"{self.event} share [{links}]"


@dataclass(frozen=True)
class ContentionCertificate:
    """Result of checking Theorem 1 for a pattern on a routed network.

    Attributes:
        contention_free: whether ``C`` and ``R`` are disjoint.
        contention_set_size: ``|C|``.
        conflict_set_size: ``|R|`` restricted to the pattern's
            communications.
        violations: the (possibly empty) witnesses in ``C`` intersected
            with ``R``, each annotated with the shared links.
    """

    contention_free: bool
    contention_set_size: int
    conflict_set_size: int
    violations: Tuple[ContentionViolation, ...]

    def __bool__(self) -> bool:
        return self.contention_free


def intersect_contention(
    contention_set: FrozenSet[ContentionEvent],
    conflict_set: FrozenSet[ContentionEvent],
) -> FrozenSet[ContentionEvent]:
    """``C ∩ R``: the pairs that are both temporal and spatial conflicts."""
    return contention_set & conflict_set


def check_contention_free(
    pattern: CommunicationPattern,
    route_resources: RouteResources,
) -> ContentionCertificate:
    """Check Theorem 1 for ``pattern`` routed by ``route_resources``.

    Builds ``C`` from the pattern's timing information and ``R`` from
    the routing function's link footprints, then intersects them.  An
    empty intersection certifies contention-free communication; a
    non-empty one yields explicit witnesses (which pairs collide and on
    which links).
    """
    contention = potential_contention_set(pattern)
    conflicts = network_resource_conflict_set(route_resources, pattern.communications)
    offending = sorted(intersect_contention(contention, conflicts))
    violations = tuple(
        ContentionViolation(
            event=e,
            links=tuple(sorted(map(repr, shared_links(route_resources, e.first, e.second)))),
        )
        for e in offending
    )
    return ContentionCertificate(
        contention_free=not violations,
        contention_set_size=len(contention),
        conflict_set_size=len(conflicts),
        violations=violations,
    )
