"""Contention periods and communication clique sets (paper Definition 5).

A *potential contention period* is a maximal stretch of time during
which no message begins or ends; the messages active during it mutually
overlap and therefore form a clique of the overlap relation.  The
*communication clique set* collects the communication of every such
clique; the *maximum clique set* drops cliques covered by larger ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.model.contention import ContentionEvent
from repro.model.message import Communication
from repro.model.pattern import CommunicationPattern

Clique = FrozenSet[Communication]


@dataclass(frozen=True)
class ContentionPeriod:
    """One potential contention period.

    Attributes:
        t_start: beginning of the period.
        t_end: end of the period.
        clique: communications of the messages active throughout it.
    """

    t_start: float
    t_end: float
    clique: Clique

    def __len__(self) -> int:
        return len(self.clique)


def contention_periods(pattern: CommunicationPattern) -> List[ContentionPeriod]:
    """Extract every potential contention period of a pattern.

    Definition 5 quantifies over every real time ``t``; the set of
    messages active at ``t`` forms a clique of the overlap relation.
    The active set only changes at message start/finish times, so the
    sweep emits one clique per event *point* (covering messages that
    touch only at a boundary, and instantaneous messages) and one per
    elementary *interval* between consecutive events, then merges
    adjacent periods with identical cliques.  Empty cliques are skipped.
    """
    if not pattern.messages:
        return []
    times = sorted({t for m in pattern.messages for t in (m.t_start, m.t_finish)})
    msgs = pattern.sorted_by_start()

    segments: List[Tuple[float, float, Clique]] = []
    for i, t in enumerate(times):
        at_point = frozenset(
            m.communication for m in msgs if m.t_start <= t <= m.t_finish
        )
        segments.append((t, t, at_point))
        if i + 1 < len(times):
            t2 = times[i + 1]
            # Active throughout (t, t2): every message boundary is an
            # event time, so Tf >= t2 iff the message outlives the gap.
            in_interval = frozenset(
                m.communication for m in msgs if m.t_start <= t and m.t_finish >= t2
            )
            segments.append((t, t2, in_interval))

    periods: List[ContentionPeriod] = []
    for lo, hi, clique in segments:
        if not clique:
            continue
        if periods and periods[-1].clique == clique and periods[-1].t_end >= lo:
            periods[-1] = ContentionPeriod(
                t_start=periods[-1].t_start, t_end=hi, clique=clique
            )
        else:
            periods.append(ContentionPeriod(t_start=lo, t_end=hi, clique=clique))
    return periods


def clique_set(pattern: CommunicationPattern) -> FrozenSet[Clique]:
    """The communication clique set ``K`` (Definition 5)."""
    return frozenset(p.clique for p in contention_periods(pattern))


def maximum_clique_set(cliques: Iterable[Clique]) -> Tuple[Clique, ...]:
    """Remove cliques covered by a superset clique.

    A network contention-free for a clique is contention-free for all of
    its sub-cliques, so only maximal cliques constrain the design.  The
    result is sorted (largest first, then lexicographically) so that the
    synthesis algorithms behave deterministically.
    """
    unique = sorted(set(cliques), key=lambda c: (-len(c), sorted(c)))
    maximal: List[Clique] = []
    for c in unique:
        if not any(c < kept for kept in maximal):
            maximal.append(c)
    return tuple(maximal)


@dataclass(frozen=True)
class CliqueAnalysis:
    """Everything the design methodology needs to know about a pattern.

    Attributes:
        pattern: the analyzed communication pattern.
        periods: every potential contention period, in time order.
        max_cliques: the communication maximum clique set.
    """

    pattern: CommunicationPattern
    periods: Tuple[ContentionPeriod, ...]
    max_cliques: Tuple[Clique, ...]

    @classmethod
    def of(cls, pattern: CommunicationPattern) -> "CliqueAnalysis":
        """Run the full clique analysis of Definition 5 on a pattern."""
        periods = tuple(contention_periods(pattern))
        return cls(
            pattern=pattern,
            periods=periods,
            max_cliques=maximum_clique_set(p.clique for p in periods),
        )

    @property
    def communications(self) -> FrozenSet[Communication]:
        """Union of all communications over all cliques."""
        out = set()
        for c in self.max_cliques:
            out |= c
        return frozenset(out)

    @property
    def largest_clique_size(self) -> int:
        """Size of the widest permutation the pattern ever forms."""
        return max((len(c) for c in self.max_cliques), default=0)

    def cliques_containing(self, comm: Communication) -> Tuple[Clique, ...]:
        """Maximal cliques in which ``comm`` participates."""
        return tuple(c for c in self.max_cliques if comm in c)

    def contention_events(self) -> FrozenSet[ContentionEvent]:
        """Potential contention set ``C`` induced by the cliques.

        Equivalent to :func:`repro.model.contention.potential_contention_set`
        (every pair inside a clique overlaps in time), but computed from
        the compressed clique representation.
        """
        events = set()
        for clique in self.max_cliques:
            members = sorted(clique)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    events.add(ContentionEvent.of(a, b))
        return frozenset(events)

    def conflicting_pairs_by_comm(self) -> Dict[Communication, FrozenSet[Communication]]:
        """For each communication, the set it potentially contends with."""
        out: Dict[Communication, set] = {}
        for clique in self.max_cliques:
            for a in clique:
                out.setdefault(a, set()).update(c for c in clique if c != a)
        return {k: frozenset(v) for k, v in out.items()}


def permutation_violations(cliques: Iterable[Clique]) -> List[Tuple[Clique, str]]:
    """Cliques that are not partial permutations.

    Definition 5 observes that each contention period "represents a
    permutation or partial permutation": within one period every
    processor sends at most one message and receives at most one.  A
    period violating this cannot be contention-free on *any* network
    with a single injection/ejection link per processor, so the design
    methodology rejects such patterns up front.  Returns the offending
    cliques with a human-readable reason.
    """
    out: List[Tuple[Clique, str]] = []
    for clique in cliques:
        sources = [c.source for c in clique]
        dests = [c.dest for c in clique]
        dup_src = {s for s in sources if sources.count(s) > 1}
        dup_dst = {d for d in dests if dests.count(d) > 1}
        if dup_src or dup_dst:
            parts = []
            if dup_src:
                parts.append(f"processors {sorted(dup_src)} send more than once")
            if dup_dst:
                parts.append(f"processors {sorted(dup_dst)} receive more than once")
            out.append((clique, "; ".join(parts)))
    return out


def describe_periods(periods: Sequence[ContentionPeriod]) -> str:
    """Human-readable multi-line dump of contention periods."""
    lines = []
    for i, p in enumerate(periods, start=1):
        comms = " ".join(str(c) for c in sorted(p.clique))
        lines.append(f"period {i}: [{p.t_start:g}, {p.t_end:g}] {{{comms}}}")
    return "\n".join(lines)
