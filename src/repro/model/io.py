"""Pattern serialization.

Communication patterns are the designer-facing artifact (extracted once
from profiling, then reused across synthesis runs), so they round-trip
through a simple JSON file format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import PatternError
from repro.model.message import Message
from repro.model.pattern import CommunicationPattern

FORMAT_VERSION = 1


def write_pattern(pattern: CommunicationPattern, path: Union[str, Path]) -> None:
    """Write a pattern as a single JSON document."""
    doc = {
        "format": FORMAT_VERSION,
        "name": pattern.name,
        "num_processes": pattern.num_processes,
        "messages": [
            {
                "source": m.source,
                "dest": m.dest,
                "t_start": m.t_start,
                "t_finish": m.t_finish,
                "size_bytes": m.size_bytes,
                "tag": m.tag,
            }
            for m in pattern.messages
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=1), encoding="utf-8")


def read_pattern(path: Union[str, Path]) -> CommunicationPattern:
    """Read a pattern written by :func:`write_pattern`."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PatternError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != FORMAT_VERSION:
        raise PatternError(
            f"{path} is not a version-{FORMAT_VERSION} pattern file"
        )
    try:
        messages = tuple(
            Message(
                source=m["source"],
                dest=m["dest"],
                t_start=m["t_start"],
                t_finish=m["t_finish"],
                size_bytes=m.get("size_bytes", 1024),
                tag=m.get("tag", ""),
            )
            for m in doc["messages"]
        )
        return CommunicationPattern(
            messages=messages,
            num_processes=doc["num_processes"],
            name=doc.get("name", "pattern"),
        )
    except (KeyError, TypeError) as exc:
        raise PatternError(f"{path} has malformed message records: {exc}") from exc
