"""Contention model of the paper (Section 2): Definitions 1-7, Theorem 1."""

from repro.model.cliques import (
    CliqueAnalysis,
    ContentionPeriod,
    clique_set,
    contention_periods,
    describe_periods,
    maximum_clique_set,
    permutation_violations,
)
from repro.model.conflicts import (
    network_resource_conflict_set,
    shared_links,
)
from repro.model.contention import (
    ContentionEvent,
    contention_degree,
    overlap_pairs,
    potential_contention_set,
)
from repro.model.io import read_pattern, write_pattern
from repro.model.message import Communication, Message
from repro.model.pattern import CommunicationPattern
from repro.model.theorem import (
    ContentionCertificate,
    ContentionViolation,
    check_contention_free,
    intersect_contention,
)

__all__ = [
    "CliqueAnalysis",
    "Communication",
    "CommunicationPattern",
    "ContentionCertificate",
    "ContentionEvent",
    "ContentionPeriod",
    "ContentionViolation",
    "Message",
    "check_contention_free",
    "clique_set",
    "contention_degree",
    "contention_periods",
    "describe_periods",
    "intersect_contention",
    "maximum_clique_set",
    "network_resource_conflict_set",
    "overlap_pairs",
    "permutation_violations",
    "potential_contention_set",
    "read_pattern",
    "shared_links",
    "write_pattern",
]
