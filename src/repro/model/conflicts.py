"""Path-conflict model (paper Definitions 6 and 7).

The network resource conflict set ``R`` collects pairs of
source-destination communications whose deterministic routing paths
share at least one link.  This module is topology-agnostic: it only
needs a function mapping each communication to the set of link
resources its path occupies (the image of the source-based routing
function ``F`` of Definition 6).
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Dict, FrozenSet, Hashable, Iterable, List

from repro.model.contention import ContentionEvent
from repro.model.message import Communication

# A link resource is any hashable token identifying one directed,
# non-sharable channel (an inter-switch link direction, an injection
# link, an ejection link, ...).
LinkResource = Hashable

# The spatial footprint of the routing function: comm -> set of links.
RouteResources = Callable[[Communication], AbstractSet[LinkResource]]


def network_resource_conflict_set(
    route_resources: RouteResources,
    communications: Iterable[Communication],
) -> FrozenSet[ContentionEvent]:
    """The network resource conflict set ``R`` (Definition 7).

    Only the supplied communications are considered; for the
    contention-freedom check of Theorem 1 it suffices to pass the
    communications that actually occur in the pattern, since
    ``C`` mentions no others.

    Uses an inverted link->communications index so the cost is
    proportional to the amount of actual sharing rather than to the
    number of communication pairs.
    """
    comms = sorted(set(communications))
    by_link: Dict[LinkResource, List[Communication]] = {}
    for comm in comms:
        for link in route_resources(comm):
            by_link.setdefault(link, []).append(comm)
    events = set()
    for sharers in by_link.values():
        for i, a in enumerate(sharers):
            for b in sharers[i + 1 :]:
                if a != b:
                    events.add(ContentionEvent.of(a, b))
    return frozenset(events)


def shared_links(
    route_resources: RouteResources,
    a: Communication,
    b: Communication,
) -> FrozenSet[LinkResource]:
    """Links two communications' paths have in common (the conflict witness)."""
    return frozenset(route_resources(a)) & frozenset(route_resources(b))
