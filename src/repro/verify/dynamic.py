"""Dynamic cross-validation of static certificates.

A certificate is a promise about behaviour; this module checks the
promise against the flit-level engine.  :func:`replay_pattern` injects
the pattern's messages into the engine at cycle times that preserve the
pattern's overlap structure — messages that overlap in the pattern may
coexist in the network, messages that don't are spaced far enough apart
that the earlier one has fully drained — and reports the engine's
contention and deadlock counters.  :func:`cross_validate` then asserts:

* a network certified **contention-free** replays with zero
  :attr:`~repro.simulator.engine.Engine.contention_stalls` (no packet
  ever waits on a channel because of another packet);
* a network certified **deadlock-free** never trips the engine's
  timeout-based deadlock recovery (``deadlocks_detected == 0``);
* every message is delivered exactly once.

The injection scale is derived, not guessed: for any two disjoint
messages A before B, the injected gap ``K * (T_s(B) - T_s(A))`` must
exceed a conservative upper bound on A's solo service time (credit
round trips included), so ``K`` is the max bound divided by the
smallest start-time gap over disjoint interval pairs.  Large ``K`` is
nearly free — the engine skips idle cycles event-driven.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.model.pattern import CommunicationPattern
from repro.simulator.config import SimConfig
from repro.simulator.engine import Engine
from repro.simulator.routing import SimRouting
from repro.simulator.simulation import routing_policy_for
from repro.topology.builders import Topology
from repro.verify.certificate import NetworkCertificate


@dataclass(frozen=True)
class ReplayReport:
    """Engine-side observations from one pattern replay.

    Attributes:
        topology_name/pattern_name: what was replayed on what.
        scale: cycles per pattern time unit used for injection.
        messages: packets submitted.
        delivered_packets: packets whose tail flit reached its NIC.
        contention_stalls: cycles lost to inter-packet contention.
        deadlocks_detected: regressive-recovery activations.
        retransmissions: packets re-injected after a kill.
        cycles: simulated cycles until the network drained.
    """

    topology_name: str
    pattern_name: str
    scale: int
    messages: int
    delivered_packets: int
    contention_stalls: int
    deadlocks_detected: int
    retransmissions: int
    cycles: int

    def summary(self) -> str:
        return (
            f"replayed {self.pattern_name} on {self.topology_name} "
            f"(scale {self.scale}): {self.delivered_packets}/{self.messages} "
            f"delivered in {self.cycles} cycles, "
            f"{self.contention_stalls} contention stalls, "
            f"{self.deadlocks_detected} deadlocks, "
            f"{self.retransmissions} retransmissions"
        )


def injection_scale(
    pattern: CommunicationPattern,
    config: SimConfig,
    max_route_hops: int,
    max_link_delay: int,
) -> int:
    """Cycles per pattern time unit preserving the overlap structure.

    The per-message solo service bound is generous — head latency plus
    one credit round trip per flit — because overshooting ``K`` only
    stretches idle (skipped) cycles, while undershooting would let
    schedule-disjoint messages collide and void the cross-validation.
    """
    intervals = sorted({(m.t_start, m.t_finish) for m in pattern.messages})
    max_flits = max(
        (config.flits_for(m.size_bytes) for m in pattern.messages), default=1
    )
    service_bound = (max_flits + max_route_hops + 4) * (2 * max_link_delay + 4)
    min_gap = None
    for i, (s1, f1) in enumerate(intervals):
        for s2, _ in intervals[i + 1:]:
            if f1 < s2:  # strictly disjoint (closed intervals)
                gap = s2 - s1
                if min_gap is None or gap < min_gap:
                    min_gap = gap
    if min_gap is None or min_gap <= 0:
        return 1
    return max(1, math.ceil(service_bound / min_gap))


def replay_pattern(
    topology: Topology,
    pattern: CommunicationPattern,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
    routing: Optional[SimRouting] = None,
) -> ReplayReport:
    """Inject the pattern's messages at schedule-preserving times and
    run the engine until the network drains."""
    config = config or SimConfig()
    engine = Engine(
        topology,
        routing or routing_policy_for(topology),
        config,
        link_delays=link_delays,
    )
    max_hops = _max_route_hops(topology, pattern)
    max_delay = max(link_delays.values()) if link_delays else 1
    scale = injection_scale(pattern, config, max_hops, max_delay)
    ordered = sorted(
        pattern.messages, key=lambda m: (m.t_start, m.t_finish, m.source, m.dest)
    )
    for seq, message in enumerate(ordered):
        engine.submit(
            source=message.source,
            dest=message.dest,
            size_bytes=message.size_bytes,
            inject_cycle=int(round(message.t_start * scale)),
            seq=seq,
        )
    cycles = _drain(engine, config)
    return ReplayReport(
        topology_name=topology.name,
        pattern_name=pattern.name,
        scale=scale,
        messages=len(ordered),
        delivered_packets=engine.delivered_packets,
        contention_stalls=engine.contention_stalls,
        deadlocks_detected=engine.deadlocks_detected,
        retransmissions=engine.retransmissions,
        cycles=cycles,
    )


def cross_validate(
    certificate: NetworkCertificate,
    topology: Topology,
    pattern: CommunicationPattern,
    config: Optional[SimConfig] = None,
    link_delays: Optional[Dict[int, int]] = None,
) -> Tuple[ReplayReport, List[str]]:
    """Replay the pattern and compare the engine against the certificate.

    Returns the replay report plus a list of human-readable mismatch
    descriptions (empty when the static and dynamic views agree).  Only
    certified properties are asserted: an uncertified network is
    allowed to stall or recover.
    """
    report = replay_pattern(topology, pattern, config=config, link_delays=link_delays)
    mismatches: List[str] = []
    if report.delivered_packets != report.messages:
        mismatches.append(
            f"delivered {report.delivered_packets} of {report.messages} messages"
        )
    if certificate.contention_free and report.contention_stalls:
        mismatches.append(
            f"certified contention-free but the replay recorded "
            f"{report.contention_stalls} contention stalls"
        )
    if certificate.deadlock_free and report.deadlocks_detected:
        mismatches.append(
            f"certified deadlock-free but the engine triggered deadlock "
            f"recovery {report.deadlocks_detected} times"
        )
    if certificate.deadlock_free and report.retransmissions:
        mismatches.append(
            f"certified deadlock-free but {report.retransmissions} packets "
            "were killed and retransmitted"
        )
    return report, mismatches


def _max_route_hops(topology: Topology, pattern: CommunicationPattern) -> int:
    """Longest model-route hop count over the pattern (diameter proxy).

    The torus simulates fully-adaptive minimal routing, whose paths are
    never longer than the model-level dimension-order ones, so the
    model routes bound both cases.
    """
    longest = 1
    for comm in sorted(pattern.communications):
        longest = max(longest, topology.routing.route(comm).num_hops)
    return longest


def _drain(engine: Engine, config: SimConfig) -> int:
    """Run the engine until every submitted packet has left the network.

    Mirrors the idle-skipping main loop of
    :func:`repro.simulator.simulation.simulate`, minus the process
    replay (the pattern supplies injection times directly).
    """
    t = 0
    while engine.busy():
        if t > config.max_cycles:
            raise SimulationError(
                f"pattern replay exceeded {config.max_cycles} cycles; "
                "likely livelock"
            )
        if engine.step(t):
            t += 1
            continue
        event_next = engine.next_event_time()
        if event_next is not None:
            t = max(t + 1, event_next)
        elif engine.flits_in_network > 0:
            t = max(t + 1, engine.last_progress + config.deadlock_threshold)
        else:
            t += 1
    return engine.cycles_simulated
