"""Static network certification (the ``repro verify`` pass).

:func:`certify` takes any routed network — synthesized, mesh, torus,
crossbar, fat tree — plus the workload pattern it must carry and
produces a :class:`~repro.verify.certificate.NetworkCertificate` with
five named findings:

* ``connectivity`` — the switch graph is connected;
* ``degree`` — every switch respects the port-count bound (when one is
  given; otherwise the observed maximum is recorded);
* ``routes_valid`` — every communication's route is a contiguous walk
  over links that exist, traversed in their claimed direction;
* ``contention`` — Theorem 1 (``C ∩ R = ∅``), with the offending pairs
  and their shared channels as witnesses on failure;
* ``deadlock`` — Dally–Seitz acyclicity of the channel-dependency
  graph over ``(channel, vc class)`` resources.  When the global CDG
  has a cycle, the verifier falls back to *schedule slicing*: packets
  can only wait on each other if their messages coexist, and a set of
  closed time intervals pairwise overlaps iff it shares a common
  instant (Helly's theorem in one dimension), so checking the CDG of
  every maximal live communication set — one per distinct message
  start time — is exact for traffic that respects the pattern's
  schedule.  A cycle inside a slice is a genuine deadlock risk and
  fails the finding with the cycle, its slice time, and the live
  communications as witness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RoutingError, TopologyError
from repro.eval.serialize import encode_resource
from repro.model.conflicts import shared_links
from repro.model.pattern import CommunicationPattern
from repro.model.theorem import check_contention_free
from repro.topology.builders import Topology
from repro.topology.routing import RoutingBase
from repro.topology.validate import check_routes_valid, degree_report
from repro.verify.cdg import CycleWitness, build_cdg
from repro.verify.certificate import Finding, NetworkCertificate
from repro.verify.vcmap import VcClassifier, classifier_for


def certify(
    topology: Topology,
    pattern: CommunicationPattern,
    max_degree: Optional[int] = None,
    routing: Optional[RoutingBase] = None,
    classifier: Optional[VcClassifier] = None,
) -> NetworkCertificate:
    """Certify ``pattern`` on ``topology``; never raises on unsafe
    networks — failures become findings with witnesses.

    Args:
        topology: the network to certify (its ``routing`` is used
            unless overridden).
        pattern: the workload the certificate is scoped to.
        max_degree: optional port-count bound for the ``degree``
            finding (synthesized networks promise one; baselines don't).
        routing: override the routing function under test.
        classifier: override the VC-class discipline (defaults to
            dateline classes on tori, a single class elsewhere).
    """
    network = topology.network
    routing = routing if routing is not None else topology.routing
    classifier = classifier if classifier is not None else classifier_for(topology)
    findings = (
        _check_connectivity(network),
        _check_degree(network, max_degree),
        _check_routes(network, routing, pattern),
        _check_contention(pattern, routing),
        _check_deadlock(pattern, routing, classifier),
    )
    return NetworkCertificate(
        topology_name=topology.name,
        topology_kind=topology.kind,
        pattern_name=pattern.name,
        num_processors=network.num_processors,
        num_switches=network.num_switches,
        num_links=network.num_links,
        findings=findings,
    )


def cycle_to_dict(cycle: CycleWitness) -> Dict:
    """JSON-safe form of a cycle witness (sorted, stable encodings)."""
    return {
        "length": len(cycle),
        "nodes": [
            {"channel": encode_resource(res), "vc_class": cls}
            for res, cls in cycle.nodes
        ],
        "edges": [
            {
                "src": encode_resource(e.src[0]),
                "src_vc_class": e.src[1],
                "dst": encode_resource(e.dst[0]),
                "dst_vc_class": e.dst[1],
                "comm": [e.comm.source, e.comm.dest] if e.comm else None,
                "hop_index": e.hop_index,
            }
            for e in cycle.edges
        ],
    }


def _check_connectivity(network) -> Finding:
    reachable = _reachable_switches(network)
    unreached = sorted(set(network.switches) - reachable)
    if not unreached:
        return Finding(
            name="connectivity",
            status="pass",
            summary=f"switch graph connected ({network.num_switches} switches)",
            details={"num_switches": network.num_switches},
        )
    return Finding(
        name="connectivity",
        status="fail",
        summary=f"{len(unreached)} switches unreachable from switch "
        f"{min(network.switches)}",
        details={"num_switches": network.num_switches},
        witness={"unreachable_switches": unreached},
    )


def _reachable_switches(network) -> set:
    switches = network.switches
    if not switches:
        return set()
    seen = {switches[0]}
    frontier = [switches[0]]
    while frontier:
        for n in network.neighbors(frontier.pop()):
            if n not in seen:
                seen.add(n)
                frontier.append(n)
    return seen


def _check_degree(network, max_degree: Optional[int]) -> Finding:
    observed = network.max_degree()
    if max_degree is None:
        return Finding(
            name="degree",
            status="pass",
            summary=f"max switch degree {observed} (no bound requested)",
            details={"max_allowed": None, "max_observed": observed},
        )
    report = degree_report(network, max_degree)
    details = {
        "max_allowed": max_degree,
        "max_observed": observed,
        "degrees": [[s, d] for s, d in report.degrees],
    }
    if report.satisfied:
        return Finding(
            name="degree",
            status="pass",
            summary=f"every switch within the degree bound {max_degree} "
            f"(max observed {observed})",
            details=details,
        )
    return Finding(
        name="degree",
        status="fail",
        summary=f"{len(report.violators)} switches exceed the degree bound "
        f"{max_degree}",
        details=details,
        witness={"violators": list(report.violators)},
    )


def _check_routes(network, routing: RoutingBase, pattern: CommunicationPattern) -> Finding:
    comms = sorted(pattern.communications)
    try:
        check_routes_valid(network, routing, comms)
    except (RoutingError, TopologyError) as exc:
        return Finding(
            name="routes_valid",
            status="fail",
            summary="a route is malformed or uses nonexistent links",
            details={"communications": len(comms)},
            witness={"error": str(exc)},
        )
    return Finding(
        name="routes_valid",
        status="pass",
        summary=f"all {len(comms)} routes are contiguous walks over "
        "existing links",
        details={"communications": len(comms)},
    )


def _check_contention(pattern: CommunicationPattern, routing: RoutingBase) -> Finding:
    cert = check_contention_free(pattern, routing)
    details = {
        "contention_set_size": cert.contention_set_size,
        "conflict_set_size": cert.conflict_set_size,
        "violations": len(cert.violations),
    }
    if cert.contention_free:
        return Finding(
            name="contention",
            status="pass",
            summary="Theorem 1 holds: C ∩ R = ∅ (contention-free)",
            details=details,
        )
    witness = [
        {
            "first": [v.event.first.source, v.event.first.dest],
            "second": [v.event.second.source, v.event.second.dest],
            "shared_channels": sorted(
                encode_resource(res)
                for res in shared_links(routing, v.event.first, v.event.second)
            ),
        }
        for v in cert.violations
    ]
    return Finding(
        name="contention",
        status="fail",
        summary=f"Theorem 1 violated: {len(cert.violations)} overlapping "
        "pairs share channels",
        details=details,
        witness={"violations": witness},
    )


def _check_deadlock(
    pattern: CommunicationPattern,
    routing: RoutingBase,
    classifier: VcClassifier,
) -> Finding:
    comms = pattern.communications
    graph = build_cdg(routing, comms, classifier)
    base_details = {
        "classifier": classifier.name,
        "vc_classes": classifier.num_classes,
        "nodes": len(graph.nodes),
        "edges": graph.num_edges,
    }
    cycle = graph.find_cycle()
    if cycle is None:
        return Finding(
            name="deadlock",
            status="pass",
            summary="channel-dependency graph is acyclic (Dally–Seitz)",
            details=dict(base_details, method="acyclic"),
        )
    # The global CDG is cyclic: fall back to schedule slicing.  Each
    # slice is one maximal set of communications that can coexist under
    # the pattern's timing.
    slices = schedule_slices(pattern)
    for slice_time, live in slices:
        slice_cycle = build_cdg(routing, live, classifier).find_cycle()
        if slice_cycle is not None:
            return Finding(
                name="deadlock",
                status="fail",
                summary=f"dependency cycle among communications live at "
                f"t={slice_time:g}",
                details=dict(base_details, method="none", slices=len(slices)),
                witness=dict(
                    cycle_to_dict(slice_cycle),
                    slice_time=slice_time,
                    live_communications=[[c.source, c.dest] for c in sorted(live)],
                ),
            )
    return Finding(
        name="deadlock",
        status="pass",
        summary=f"every coexisting communication set is acyclic "
        f"({len(slices)} schedule slices; global CDG has a cycle that "
        "the schedule never realizes)",
        details=dict(base_details, method="schedule", slices=len(slices)),
        witness={"unscheduled_cycle": cycle_to_dict(cycle)},
    )


def schedule_slices(
    pattern: CommunicationPattern,
) -> List[Tuple[float, frozenset]]:
    """Maximal sets of communications that can be in flight together.

    For closed intervals, any pairwise-overlapping family shares a
    common instant, and every maximal overlapping family is live at
    some message's start time — so sampling the live set at each
    distinct ``t_start`` enumerates all maximal coexistence sets.
    Duplicate sets are dropped (first occurrence wins).
    """
    messages = pattern.messages
    slices: List[Tuple[float, frozenset]] = []
    seen = set()
    for t in sorted({m.t_start for m in messages}):
        live = frozenset(
            m.communication for m in messages if m.t_start <= t <= m.t_finish
        )
        if live and live not in seen:
            seen.add(live)
            slices.append((t, live))
    return slices
