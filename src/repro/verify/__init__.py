"""Static network certification: deadlock freedom + Theorem-1 certificates.

The verifier takes any routed network plus a workload pattern and emits
a machine-checkable :class:`NetworkCertificate` — connectivity, degree,
route validity, Theorem-1 contention freedom, and Dally–Seitz
channel-dependency acyclicity (with dateline VC classes on tori and
schedule slicing for pattern-scoped guarantees), each as a named
finding with a concrete witness on failure.  ``repro verify`` and
``scripts/certify_corpus.py`` expose it; :mod:`repro.verify.dynamic`
cross-validates certificates against the flit-level engine.  See
``docs/VERIFICATION.md``.
"""

from repro.verify.cdg import (
    CdgNode,
    CycleWitness,
    DependencyEdge,
    DependencyGraph,
    build_cdg,
    cdg_node_key,
    route_nodes,
)
from repro.verify.certificate import (
    CERTIFICATE_SCHEMA,
    FINDING_NAMES,
    Finding,
    NetworkCertificate,
    VerificationError,
    certificate_from_dict,
)
from repro.verify.dynamic import (
    ReplayReport,
    cross_validate,
    injection_scale,
    replay_pattern,
)
from repro.verify.vcmap import (
    DatelineClasses,
    SingleClass,
    VcClassifier,
    classifier_for,
)
from repro.verify.verify import certify, cycle_to_dict, schedule_slices

__all__ = [
    "CERTIFICATE_SCHEMA",
    "CdgNode",
    "CycleWitness",
    "DatelineClasses",
    "DependencyEdge",
    "DependencyGraph",
    "FINDING_NAMES",
    "Finding",
    "NetworkCertificate",
    "ReplayReport",
    "SingleClass",
    "VcClassifier",
    "VerificationError",
    "build_cdg",
    "cdg_node_key",
    "certificate_from_dict",
    "certify",
    "classifier_for",
    "cross_validate",
    "cycle_to_dict",
    "injection_scale",
    "replay_pattern",
    "route_nodes",
    "schedule_slices",
]
