"""Virtual-channel class assignment for dependency analysis.

The engine's physical channels each carry ``SimConfig.num_vcs`` virtual
channels.  For dependency analysis a *class* function refines every hop
of a route with the VC class its flits may occupy; the dependency graph
then lives over ``(channel, class)`` pairs.  Two disciplines cover the
repo's topologies:

* :class:`SingleClass` — all VCs equivalent (source-routed generated
  networks, meshes, crossbars, fat trees).  Deadlock freedom must then
  come from the routes themselves.
* :class:`DatelineClasses` — the classic dateline discipline for
  wraparound (torus) dimension-order routing: a packet starts in class
  0 and moves to class 1 in a dimension once it has crossed that
  dimension's wraparound link, which breaks the ring cycle in every
  row and column.  Requires at least two VCs per physical channel.

:func:`classifier_for` picks the discipline the repo's model-level
routing needs for a topology kind.
"""

from __future__ import annotations

from typing import Dict, Protocol, Tuple

from repro.errors import TopologyError
from repro.topology.builders import Topology
from repro.topology.routing import Route


class VcClassifier(Protocol):
    """Assigns one VC class per inter-switch hop of a route."""

    name: str
    num_classes: int

    def classes(self, route: Route) -> Tuple[int, ...]:
        """Class of each hop, aligned with ``route.hops``."""


class SingleClass:
    """All virtual channels form one equivalence class."""

    name = "single"
    num_classes = 1

    def classes(self, route: Route) -> Tuple[int, ...]:
        return (0,) * len(route.hops)


class DatelineClasses:
    """Per-dimension dateline VC classes for wraparound grid routing.

    Wraparound links (endpoint coordinates differing by more than one
    in a dimension) are the datelines.  A route's hop is class 1 when
    the route has already crossed the dateline of that hop's dimension,
    class 0 otherwise (the crossing hop itself is the last class-0 hop
    of its dimension).  Dimension-order routes cross each dateline at
    most once, so two classes suffice.
    """

    name = "dateline"
    num_classes = 2

    def __init__(self, topology: Topology) -> None:
        if topology.coords is None:
            raise TopologyError(
                f"dateline classes need grid coordinates; {topology.name} has none"
            )
        self._dimension: Dict[int, int] = {}
        self._is_dateline: Dict[int, bool] = {}
        coords = topology.coords
        for link in topology.network.links:
            (x1, y1), (x2, y2) = coords[link.u], coords[link.v]
            self._dimension[link.link_id] = 0 if y1 == y2 else 1
            self._is_dateline[link.link_id] = abs(x1 - x2) > 1 or abs(y1 - y2) > 1

    def classes(self, route: Route) -> Tuple[int, ...]:
        crossed = [False, False]
        out = []
        for hop in route.hops:
            link_id = hop[1]
            dim = self._dimension[link_id]
            out.append(1 if crossed[dim] else 0)
            if self._is_dateline[link_id]:
                crossed[dim] = True
        return tuple(out)


def classifier_for(topology: Topology) -> VcClassifier:
    """The VC discipline the repo's model routing uses on ``topology``.

    Tori route dimension-order with wraparound, so their dependency
    analysis gets dateline classes; every other topology kind routes
    over a single class.
    """
    if topology.kind == "torus" and topology.coords is not None:
        return DatelineClasses(topology)
    return SingleClass()
