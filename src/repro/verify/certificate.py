"""Machine-checkable network certificates.

A :class:`NetworkCertificate` bundles every static safety property the
verifier establishes for one (network, workload pattern) pair into a
schema-versioned, canonically serializable artifact: named findings
with pass/fail status, structured details, and concrete witnesses on
failure.  The JSON form (:meth:`NetworkCertificate.to_json`) is
byte-stable across runs for the same inputs — it contains no
timestamps, no absolute paths, and every collection is sorted — so CI
can archive and diff certificates directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.eval.serialize import canonical_json

# Bump when the certificate JSON layout changes shape.
CERTIFICATE_SCHEMA = 1

# The findings every certificate carries, in report order.
FINDING_NAMES = ("connectivity", "degree", "routes_valid", "contention", "deadlock")


class VerificationError(ReproError):
    """A certificate could not be produced or is internally inconsistent."""


@dataclass(frozen=True)
class Finding:
    """One named check's outcome.

    Attributes:
        name: check identifier (one of :data:`FINDING_NAMES`).
        status: ``"pass"`` or ``"fail"``.
        summary: one human-readable line.
        details: JSON-safe structured facts backing the status.
        witness: JSON-safe counterexample when the check fails (or an
            informational witness on pass, e.g. the schedule-excluded
            cycle of a ``deadlock``/``schedule`` finding).
    """

    name: str
    status: str
    summary: str
    details: Dict = field(default_factory=dict)
    witness: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.status not in ("pass", "fail"):
            raise VerificationError(
                f"finding {self.name!r} has invalid status {self.status!r}"
            )

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "status": self.status,
            "summary": self.summary,
            "details": self.details,
            "witness": self.witness,
        }


@dataclass(frozen=True)
class NetworkCertificate:
    """The verifier's verdict on one routed network under one pattern.

    Attributes:
        topology_name/topology_kind: the certified network.
        pattern_name: the workload pattern the certificate is scoped to
            (contention and schedule-based deadlock findings are
            statements about this pattern, not all possible traffic).
        num_processors/num_switches/num_links: network size facts.
        findings: the named checks, in :data:`FINDING_NAMES` order.
    """

    topology_name: str
    topology_kind: str
    pattern_name: str
    num_processors: int
    num_switches: int
    num_links: int
    findings: Tuple[Finding, ...]
    schema_version: int = CERTIFICATE_SCHEMA

    def finding(self, name: str) -> Finding:
        for f in self.findings:
            if f.name == name:
                return f
        raise VerificationError(f"certificate has no finding named {name!r}")

    @property
    def contention_free(self) -> bool:
        """Theorem 1 holds: the pattern cannot contend on this network."""
        return self.finding("contention").passed

    @property
    def deadlock_free(self) -> bool:
        return self.finding("deadlock").passed

    @property
    def deadlock_method(self) -> str:
        """How deadlock freedom was established: ``"acyclic"`` (the
        channel-dependency graph has no cycle — unconditional),
        ``"schedule"`` (every set of communications that can coexist
        under the pattern's timing has an acyclic CDG), or ``"none"``
        when the finding failed."""
        if not self.deadlock_free:
            return "none"
        return self.finding("deadlock").details.get("method", "acyclic")

    def ok(self, require_contention_free: bool = False) -> bool:
        """Whether the certificate grants the safety properties asked of it.

        Connectivity, route validity, degree and deadlock freedom are
        always required; Theorem-1 contention freedom only when the
        caller demands it (synthesized networks promise it, regular
        baselines do not).
        """
        for f in self.findings:
            if f.name == "contention" and not require_contention_free:
                continue
            if not f.passed:
                return False
        return True

    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "topology_name": self.topology_name,
            "topology_kind": self.topology_kind,
            "pattern_name": self.pattern_name,
            "num_processors": self.num_processors,
            "num_switches": self.num_switches,
            "num_links": self.num_links,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, no whitespace, newline-terminated)."""
        return canonical_json(self.to_dict()) + "\n"

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            f"certificate for {self.topology_name} "
            f"({self.topology_kind}) under {self.pattern_name}:",
            f"  {self.num_processors} processors, {self.num_switches} switches, "
            f"{self.num_links} links",
        ]
        for f in self.findings:
            mark = "PASS" if f.passed else "FAIL"
            lines.append(f"  [{mark}] {f.name}: {f.summary}")
            if not f.passed and f.witness is not None:
                for row in _render_witness(f.witness):
                    lines.append(f"         {row}")
        return "\n".join(lines)


def certificate_from_dict(raw: Dict) -> NetworkCertificate:
    """Invert :meth:`NetworkCertificate.to_dict` (for archived artifacts)."""
    if raw.get("schema_version") != CERTIFICATE_SCHEMA:
        raise VerificationError(
            f"unsupported certificate schema {raw.get('schema_version')!r} "
            f"(expected {CERTIFICATE_SCHEMA})"
        )
    return NetworkCertificate(
        topology_name=raw["topology_name"],
        topology_kind=raw["topology_kind"],
        pattern_name=raw["pattern_name"],
        num_processors=raw["num_processors"],
        num_switches=raw["num_switches"],
        num_links=raw["num_links"],
        findings=tuple(
            Finding(
                name=f["name"],
                status=f["status"],
                summary=f["summary"],
                details=f["details"],
                witness=f["witness"],
            )
            for f in raw["findings"]
        ),
        schema_version=raw["schema_version"],
    )


def _render_witness(witness: Dict) -> list:
    """Flatten a witness dictionary into indented report lines."""
    lines = []
    for key in sorted(witness):
        value = witness[key]
        if isinstance(value, list) and value and isinstance(value[0], (dict, list)):
            lines.append(f"{key}:")
            for item in value:
                lines.append(f"  {canonical_json(item)}")
        else:
            lines.append(f"{key}: {canonical_json(value)}")
    return lines
