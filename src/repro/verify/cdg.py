"""Channel-dependency graphs and Dally–Seitz acyclicity checking.

A wormhole network is deadlock-free when the dependency graph over its
channel resources is acyclic (Dally & Seitz): a packet holding channel
``a`` while requesting channel ``b`` contributes the edge ``a -> b``,
and a cyclic wait requires a cycle of such edges.

Nodes here are ``(channel resource, vc class)`` pairs — the resource
tuples of :mod:`repro.topology.network` (``("link", id, dir)``,
``("inj", p)``, ``("ej", p)``) refined by a virtual-channel class from
:mod:`repro.verify.vcmap`, so disciplines like dateline VCs on a torus
are expressible.  Every edge remembers one contributing route fragment
(which communication, at which hop), so a detected cycle is a concrete,
printable witness rather than a bare "cyclic" verdict.

The graph container and cycle search are deliberately generic (any
hashable, orderable-by-key nodes), which lets property tests drive them
with synthetic graphs independent of networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.model.message import Communication
from repro.topology.network import ejection_resource, injection_resource
from repro.topology.routing import Route, RoutingBase

# A CDG node: (directed channel resource, virtual-channel class).
CdgNode = Tuple[Tuple, int]


def cdg_node_key(node: CdgNode) -> Tuple:
    """Deterministic sort key for channel/class nodes.

    Resources compare by kind first ("ej" < "inj" < "link"), then by
    their integer fields, then by class — stable across runs and
    processes, which keeps certificates byte-identical.
    """
    resource, vc_class = node
    return (resource[0], tuple(resource[1:]), vc_class)


@dataclass(frozen=True)
class DependencyEdge:
    """One dependency ``src -> dst`` with a sample contributor.

    ``comm``/``hop_index`` identify one route fragment inducing the
    edge: while ``comm``'s packet holds ``src`` (its ``hop_index``-th
    resource, injection included), its next flit requests ``dst``.
    """

    src: CdgNode
    dst: CdgNode
    comm: Optional[Communication] = None
    hop_index: int = 0


@dataclass(frozen=True)
class CycleWitness:
    """A concrete cycle: a closed node walk plus the edges realizing it.

    ``nodes`` is the closed walk (first node repeated last); ``edges``
    has one entry per step, each carrying the route fragment that
    induces the dependency.
    """

    nodes: Tuple[CdgNode, ...]
    edges: Tuple[DependencyEdge, ...]

    def __len__(self) -> int:
        return len(self.edges)

    @property
    def communications(self) -> Tuple[Communication, ...]:
        """Distinct communications contributing edges, sorted."""
        return tuple(sorted({e.comm for e in self.edges if e.comm is not None}))

    def render(self) -> str:
        """Multi-line human-readable form of the cycle."""
        lines = [f"channel-dependency cycle of length {len(self.edges)}:"]
        for edge in self.edges:
            via = f" via {edge.comm} hop {edge.hop_index}" if edge.comm else ""
            lines.append(f"  {_node_str(edge.src)} -> {_node_str(edge.dst)}{via}")
        return "\n".join(lines)


def _node_str(node: CdgNode) -> str:
    resource, vc_class = node
    body = ":".join(str(part) for part in resource)
    return f"{body}@vc{vc_class}"


class DependencyGraph:
    """A directed graph over hashable nodes with labelled edges.

    Iteration order is fixed by ``key`` (defaults to ``repr``), so
    :meth:`find_cycle` returns the same witness for the same graph on
    every run.
    """

    def __init__(self, key: Callable = repr) -> None:
        self._key = key
        self._succ: Dict[object, Dict[object, DependencyEdge]] = {}

    def add_node(self, node) -> None:
        self._succ.setdefault(node, {})

    def add_edge(
        self,
        src,
        dst,
        comm: Optional[Communication] = None,
        hop_index: int = 0,
    ) -> None:
        """Add ``src -> dst``; the first contributor of an edge wins."""
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succ[src]:
            self._succ[src][dst] = DependencyEdge(
                src=src, dst=dst, comm=comm, hop_index=hop_index
            )

    @property
    def nodes(self) -> List:
        return sorted(self._succ, key=self._key)

    @property
    def num_edges(self) -> int:
        return sum(len(out) for out in self._succ.values())

    def successors(self, node) -> List:
        return sorted(self._succ.get(node, ()), key=self._key)

    def has_edge(self, src, dst) -> bool:
        return dst in self._succ.get(src, {})

    def find_cycle(self) -> Optional[CycleWitness]:
        """The first cycle in deterministic DFS order, or ``None``.

        Iterative colour-marking DFS (white/grey/black): a grey node
        reached again closes a cycle, and the grey path from its first
        visit back to it is the witness.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[object, int] = {}
        for start in self.nodes:
            if colour.get(start, WHITE) != WHITE:
                continue
            colour[start] = GREY
            path: List[object] = [start]
            stack = [iter(self.successors(start))]
            while stack:
                advanced = False
                for nxt in stack[-1]:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        cycle_nodes = path[path.index(nxt):] + [nxt]
                        edges = tuple(
                            self._succ[a][b]
                            for a, b in zip(cycle_nodes, cycle_nodes[1:])
                        )
                        return CycleWitness(nodes=tuple(cycle_nodes), edges=edges)
                    if state == WHITE:
                        colour[nxt] = GREY
                        path.append(nxt)
                        stack.append(iter(self.successors(nxt)))
                        advanced = True
                        break
                if not advanced:
                    colour[path.pop()] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None


def route_nodes(route: Route, classes: Tuple[int, ...]) -> List[CdgNode]:
    """The ordered resource/class nodes a route's packet acquires.

    Injection and ejection channels bracket the inter-switch hops; they
    carry class 0 (a NIC is an infinite sink, so ejection channels can
    never close a cycle, but including them makes witnesses complete
    end-to-end fragments).
    """
    nodes: List[CdgNode] = [(injection_resource(route.comm.source), 0)]
    nodes.extend((hop, cls) for hop, cls in zip(route.hops, classes))
    nodes.append((ejection_resource(route.comm.dest), 0))
    return nodes


def build_cdg(
    routing: RoutingBase,
    communications: Iterable[Communication],
    classifier,
) -> DependencyGraph:
    """The channel-dependency graph of a routing function.

    One edge per consecutive resource pair of every communication's
    route, with hop classes assigned by ``classifier`` (see
    :mod:`repro.verify.vcmap`).
    """
    graph = DependencyGraph(key=cdg_node_key)
    for comm in sorted(communications):
        route = routing.route(comm)
        nodes = route_nodes(route, classifier.classes(route))
        for i, (src, dst) in enumerate(zip(nodes, nodes[1:])):
            graph.add_edge(src, dst, comm=comm, hop_index=i)
    return graph
