"""Fault-campaign generation: enumerate or sample failure scenarios.

A campaign is an ordered tuple of :class:`~repro.faults.spec.FaultScenario`
covering a topology's failure space: every single link, every single
switch, optionally every unordered pair of those (double faults).  When
the full enumeration exceeds ``max_scenarios`` a seeded sample is drawn,
so campaigns stay deterministic and reproducible at any size.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import FaultError
from repro.faults.spec import FaultScenario, FaultSpec, LinkFault, SwitchFault
from repro.topology.network import Network

FAULT_KINDS = ("link", "switch")


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of a fault campaign.

    Attributes:
        kinds: which resource classes fail ("link", "switch").
        double: also include every unordered pair of single faults.
        max_scenarios: cap on campaign size; beyond it a seeded sample
            of the full enumeration is drawn.  ``None`` means unbounded.
        seed: RNG seed used only when sampling is needed.
        start: cycle every fault activates at.
        end: cycle every fault recovers at (``None`` = permanent).
    """

    kinds: Tuple[str, ...] = ("link",)
    double: bool = False
    max_scenarios: Optional[int] = None
    seed: int = 0
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kinds:
            raise FaultError("campaign needs at least one fault kind")
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown:
            raise FaultError(
                f"unknown fault kinds {unknown}; choose from {FAULT_KINDS}"
            )
        if self.max_scenarios is not None and self.max_scenarios < 1:
            raise FaultError("max_scenarios must be positive when given")


def _single_faults(network: Network, spec: CampaignSpec) -> List[FaultSpec]:
    faults: List[FaultSpec] = []
    if "link" in spec.kinds:
        for link in network.links:
            faults.append(LinkFault(link.link_id, start=spec.start, end=spec.end))
    if "switch" in spec.kinds:
        for s in network.switches:
            faults.append(SwitchFault(s, start=spec.start, end=spec.end))
    return faults


def single_link_scenarios(
    network: Network, start: int = 0, end: Optional[int] = None
) -> Tuple[FaultScenario, ...]:
    """One scenario per link of the network."""
    return tuple(
        FaultScenario.of(LinkFault(link.link_id, start=start, end=end))
        for link in network.links
    )


def single_switch_scenarios(
    network: Network, start: int = 0, end: Optional[int] = None
) -> Tuple[FaultScenario, ...]:
    """One scenario per switch of the network."""
    return tuple(
        FaultScenario.of(SwitchFault(s, start=start, end=end))
        for s in network.switches
    )


def build_campaign(
    network: Network, spec: Optional[CampaignSpec] = None
) -> Tuple[FaultScenario, ...]:
    """Enumerate (or sample) the fault scenarios of a campaign.

    Single-fault scenarios come first in resource order; double-fault
    scenarios (when enabled) follow in lexicographic pair order.  If the
    total exceeds ``spec.max_scenarios``, a seeded sample is drawn
    without replacement, preserving the enumeration order.
    """
    spec = spec or CampaignSpec()
    singles = _single_faults(network, spec)
    scenarios = [FaultScenario.of(f) for f in singles]
    if spec.double:
        scenarios.extend(
            FaultScenario.of(a, b) for a, b in itertools.combinations(singles, 2)
        )
    if spec.max_scenarios is not None and len(scenarios) > spec.max_scenarios:
        rng = random.Random(spec.seed)
        picked = rng.sample(range(len(scenarios)), spec.max_scenarios)
        scenarios = [scenarios[i] for i in sorted(picked)]
    return tuple(scenarios)
