"""Cycle-resolved fault state consulted by the simulation engine.

A :class:`FaultState` compiles a :class:`~repro.faults.spec.FaultScenario`
against a concrete :class:`~repro.topology.network.Network` into
per-channel outage windows, keyed by the engine's channel-id tokens
(``("link", link_id, direction)``, ``("inj", p)``, ``("ej", p)``).

The engine asks one question per decision point —
:meth:`FaultState.channel_dead` — and uses :attr:`transitions` /
:meth:`next_transition` to wake itself exactly at fault activations and
recoveries, so idle-skip scheduling stays exact under transient faults.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.faults.spec import FaultScenario, LinkFault, SwitchFault
from repro.topology.network import Network

ChannelId = Tuple  # mirrors repro.simulator.packet.ChannelId
_Window = Tuple[int, Optional[int]]  # [start, end); end None = forever


class FaultState:
    """Outage windows per directed channel for one fault scenario."""

    def __init__(self, network: Network, scenario: FaultScenario) -> None:
        scenario.validate(network)
        self.network = network
        self.scenario = scenario
        self._windows: Dict[ChannelId, List[_Window]] = {}
        transition_set = set()
        for fault in scenario.faults:
            transition_set.add(fault.start)
            if fault.end is not None:
                transition_set.add(fault.end)
            window = (fault.start, fault.end)
            for cid in self._fault_channels(network, fault):
                self._windows.setdefault(cid, []).append(window)
        self.transitions: Tuple[int, ...] = tuple(sorted(transition_set))

    @staticmethod
    def _fault_channels(network: Network, fault) -> List[ChannelId]:
        """Every directed channel a fault takes out of service."""
        if isinstance(fault, LinkFault):
            return [("link", fault.link_id, 0), ("link", fault.link_id, 1)]
        assert isinstance(fault, SwitchFault)
        channels: List[ChannelId] = []
        for neighbor in network.neighbors(fault.switch_id):
            for link_id in network.links_between(fault.switch_id, neighbor):
                channels.append(("link", link_id, 0))
                channels.append(("link", link_id, 1))
        for p in network.processors_of(fault.switch_id):
            channels.append(("inj", p))
            channels.append(("ej", p))
        return channels

    # -- queries --------------------------------------------------------

    def channel_dead(self, cid: ChannelId, cycle: int) -> bool:
        """Whether the directed channel ``cid`` is failed at ``cycle``."""
        windows = self._windows.get(cid)
        if not windows:
            return False
        return any(
            start <= cycle and (end is None or cycle < end)
            for start, end in windows
        )

    def next_transition(self, after: int) -> Optional[int]:
        """Earliest fault activation/recovery strictly after ``after``."""
        for t in self.transitions:
            if t > after:
                return t
        return None

    @property
    def faulted_channels(self) -> FrozenSet[ChannelId]:
        """Channels with at least one outage window (at any time)."""
        return frozenset(self._windows)

    def dead_links(self, cycle: int) -> FrozenSet[int]:
        """Link ids with at least one dead direction at ``cycle``."""
        return frozenset(
            cid[1]
            for cid in self._windows
            if cid[0] == "link" and self.channel_dead(cid, cycle)
        )
