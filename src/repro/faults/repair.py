"""Fault-aware route repair for source-routed networks.

Given a topology and a fault scenario, :func:`repair_routes` recomputes
the source-routing table so that every requested communication avoids
permanently dead resources:

* pairs whose original route touches no dead resource keep their route
  unchanged (synthesized routes stay pinned — repair is minimal);
* affected pairs are rerouted by deterministic BFS over the surviving
  fabric (:class:`~repro.topology.routing.ShortestPathRouting` with
  avoid sets), pinned to live parallel links;
* pairs with no surviving path — common on the paper's minimal
  generated networks, which carry no spare links by design — are
  reported as *disconnected*, a first-class outcome rather than an
  error, so the resilience evaluation can score them.

Transient faults are ignored by default: routing around a failure that
heals would hide exactly the retransmission behavior the fault
subsystem exists to observe.  Pass ``include_transient=True`` to treat
every fault as permanent for repair purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.faults.spec import FaultScenario, LinkFault, SwitchFault
from repro.model.message import Communication
from repro.topology.builders import Topology
from repro.topology.routing import Route, ShortestPathRouting, TableRouting


@dataclass(frozen=True)
class RepairResult:
    """Outcome of one route-repair pass.

    Attributes:
        routing: repaired source-routing table covering every requested
            pair that is still connected.
        unchanged: pairs whose original route survived untouched.
        rerouted: pairs that now take a different path.
        disconnected: pairs with no surviving path (sorted).
        dead_link_ids: links the repair routed around.
        dead_switch_ids: switches the repair routed around.
    """

    routing: TableRouting
    unchanged: Tuple[Communication, ...]
    rerouted: Tuple[Communication, ...]
    disconnected: Tuple[Communication, ...]
    dead_link_ids: FrozenSet[int]
    dead_switch_ids: FrozenSet[int]

    @property
    def connected(self) -> bool:
        """Whether every requested pair still has a path."""
        return not self.disconnected


def all_pairs(num_processors: int) -> Tuple[Communication, ...]:
    """Every ordered processor pair — the exhaustive repair domain."""
    return tuple(
        Communication(s, d)
        for s in range(num_processors)
        for d in range(num_processors)
        if s != d
    )


def dead_resources(
    scenario: FaultScenario, include_transient: bool = False
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """The (link ids, switch ids) a repair pass must route around."""
    links: Set[int] = set()
    switches: Set[int] = set()
    for fault in scenario.faults:
        if not fault.permanent and not include_transient:
            continue
        if isinstance(fault, LinkFault):
            links.add(fault.link_id)
        elif isinstance(fault, SwitchFault):
            switches.add(fault.switch_id)
    return frozenset(links), frozenset(switches)


def _route_touches(
    route: Route, dead_links: FrozenSet[int], dead_switches: FrozenSet[int]
) -> bool:
    if dead_switches and any(s in dead_switches for s in route.switch_path):
        return True
    if dead_links and any(lid in dead_links for lid in route.link_ids):
        return True
    return False


def repair_routes(
    topology: Topology,
    scenario: FaultScenario,
    pairs: Optional[Iterable[Communication]] = None,
    include_transient: bool = False,
) -> RepairResult:
    """Recompute routes for ``pairs`` avoiding the scenario's dead resources.

    ``pairs`` defaults to every ordered processor pair.  The original
    routing function of the topology is kept wherever it avoids the dead
    resources already; only affected pairs are rerouted.
    """
    network = topology.network
    scenario.validate(network)
    dead_links, dead_switches = dead_resources(scenario, include_transient)
    # Links incident to a dead switch are unusable too.
    incident = {
        link.link_id
        for link in network.links
        if link.u in dead_switches or link.v in dead_switches
    }
    avoid_links = dead_links | incident
    detour = ShortestPathRouting(
        network, avoid_links=avoid_links, avoid_switches=dead_switches
    )
    unchanged: List[Communication] = []
    rerouted: List[Communication] = []
    disconnected: List[Communication] = []
    routes: List[Route] = []
    for comm in sorted(set(pairs if pairs is not None else all_pairs(network.num_processors))):
        original: Optional[Route]
        try:
            original = topology.routing.route(comm)
        except RoutingError:
            original = None
        if original is not None and not _route_touches(
            original, frozenset(avoid_links), dead_switches
        ):
            routes.append(original)
            unchanged.append(comm)
            continue
        try:
            repaired = detour.route(comm)
        except RoutingError:
            disconnected.append(comm)
            continue
        routes.append(repaired)
        rerouted.append(comm)
    return RepairResult(
        routing=TableRouting(routes),
        unchanged=tuple(unchanged),
        rerouted=tuple(rerouted),
        disconnected=tuple(disconnected),
        dead_link_ids=frozenset(dead_links),
        dead_switch_ids=frozenset(dead_switches),
    )
