"""Declarative fault models for synthesized and reference networks.

The paper's methodology strips redundancy out of the network: the
synthesizer emits the *minimal* irregular topology that is
contention-free for one pattern.  These specs describe how that fabric
can break so the rest of the subsystem (:mod:`repro.faults.state`,
:mod:`repro.faults.repair`, :mod:`repro.eval.resilience`) can measure
how gracefully the minimal designs degrade against the mesh/torus
baselines that carry spare paths.

Two physical fault classes are modeled:

* :class:`LinkFault` — one full-duplex link is dead (both directed
  channels).  Permanent when ``end`` is ``None``, transient otherwise
  (fail at ``start``, recover at ``end``).
* :class:`SwitchFault` — a whole switch is dead: every incident link
  channel plus the injection/ejection channels of its attached
  processors.

A :class:`FaultScenario` bundles one or more specs under a stable name;
campaigns (:mod:`repro.faults.campaign`) enumerate or sample scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple, Union

from repro.errors import FaultError
from repro.topology.network import Network


def _check_window(start: int, end: Optional[int], what: str) -> None:
    if start < 0:
        raise FaultError(f"{what} fails at negative cycle {start}")
    if end is not None and end <= start:
        raise FaultError(
            f"{what} recovers at cycle {end}, not after its failure at {start}"
        )


@dataclass(frozen=True)
class LinkFault:
    """One full-duplex link out of service during ``[start, end)``.

    ``end is None`` means the failure is permanent.
    """

    link_id: int
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, f"link {self.link_id}")

    @property
    def permanent(self) -> bool:
        return self.end is None

    def active(self, cycle: int) -> bool:
        """Whether the link is dead at ``cycle``."""
        return self.start <= cycle and (self.end is None or cycle < self.end)

    def validate(self, network: Network) -> None:
        network.link(self.link_id)  # raises TopologyError if unknown

    def describe(self) -> str:
        window = "" if self.permanent else f"@{self.start}-{self.end}"
        return f"link{self.link_id}{window}"


@dataclass(frozen=True)
class SwitchFault:
    """A whole switch out of service during ``[start, end)``.

    Kills every channel touching the switch: both directions of each
    incident link and the injection/ejection channels of its attached
    processors.  ``end is None`` means the failure is permanent.
    """

    switch_id: int
    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, f"switch {self.switch_id}")

    @property
    def permanent(self) -> bool:
        return self.end is None

    def active(self, cycle: int) -> bool:
        """Whether the switch is dead at ``cycle``."""
        return self.start <= cycle and (self.end is None or cycle < self.end)

    def validate(self, network: Network) -> None:
        if self.switch_id not in network.switches:
            raise FaultError(f"no switch with id {self.switch_id}")

    def describe(self) -> str:
        window = "" if self.permanent else f"@{self.start}-{self.end}"
        return f"switch{self.switch_id}{window}"


FaultSpec = Union[LinkFault, SwitchFault]


@dataclass(frozen=True)
class FaultScenario:
    """A named set of concurrent faults applied to one simulation run."""

    name: str
    faults: Tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        if not self.faults:
            raise FaultError(f"scenario {self.name!r} has no faults")

    @classmethod
    def of(cls, *faults: FaultSpec, name: Optional[str] = None) -> "FaultScenario":
        """Build a scenario, naming it after its faults by default."""
        label = name or "+".join(f.describe() for f in faults)
        return cls(name=label, faults=tuple(faults))

    def validate(self, network: Network) -> None:
        """Check every fault references a resource of ``network``."""
        for fault in self.faults:
            fault.validate(network)

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    @property
    def permanent_link_ids(self) -> FrozenSet[int]:
        """Links that never come back — the set route repair must avoid."""
        return frozenset(
            f.link_id for f in self.faults if isinstance(f, LinkFault) and f.permanent
        )

    @property
    def permanent_switch_ids(self) -> FrozenSet[int]:
        """Switches that never come back."""
        return frozenset(
            f.switch_id
            for f in self.faults
            if isinstance(f, SwitchFault) and f.permanent
        )

    @property
    def has_transient(self) -> bool:
        return any(not f.permanent for f in self.faults)
