"""Fault injection and resilience machinery for synthesized interconnects.

The paper's minimal generated networks carry no spare paths by design;
this subsystem measures how they degrade when links or switches fail,
against the mesh/torus baselines:

* :mod:`repro.faults.spec` — declarative fault models (permanent and
  transient link faults, whole-switch faults) and named scenarios,
* :mod:`repro.faults.state` — cycle-resolved outage windows the
  simulation engine consults,
* :mod:`repro.faults.campaign` — seeded enumeration/sampling of single-
  and double-fault campaigns over any network,
* :mod:`repro.faults.repair` — fault-aware route repair with
  disconnection as a first-class outcome.

The campaign *runner* lives in :mod:`repro.eval.resilience`.
"""

from repro.faults.campaign import (
    FAULT_KINDS,
    CampaignSpec,
    build_campaign,
    single_link_scenarios,
    single_switch_scenarios,
)
from repro.faults.repair import (
    RepairResult,
    all_pairs,
    dead_resources,
    repair_routes,
)
from repro.faults.spec import FaultScenario, FaultSpec, LinkFault, SwitchFault
from repro.faults.state import FaultState

__all__ = [
    "CampaignSpec",
    "FAULT_KINDS",
    "FaultScenario",
    "FaultSpec",
    "FaultState",
    "LinkFault",
    "RepairResult",
    "SwitchFault",
    "all_pairs",
    "build_campaign",
    "dead_resources",
    "repair_routes",
    "single_link_scenarios",
    "single_switch_scenarios",
]
