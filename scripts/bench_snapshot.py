#!/usr/bin/env python
"""Write schema-versioned benchmark snapshots (``BENCH_*.json``).

Measures the hot paths the repo pins — synthesis (cg-16 annealed
partitioning plus portfolio fan-outs at 16 and 64 nodes, serial vs
fanned and cold vs warm cache), the flit-level simulator (trace replay
plus the idle-heavy NIC-wake workload), and the saturation-sweep driver
(tornado + uniform knee searches on the 4x4 mesh, plus the batched
suite fan-out against per-pair sweeps on the robustness smoke grid) —
and writes
``BENCH_synthesis.json``, ``BENCH_simulator.json`` and
``BENCH_sweep.json``.

Each snapshot carries:

* ``calibration_s`` — the wall time of a fixed pure-Python loop on the
  measuring machine.  Per-case wall times are also stored as
  ``calibrated`` multiples of it, so a snapshot taken on a fast laptop
  and one taken on a loaded CI runner are comparable:
  ``check_bench_regression.py`` gates on the calibrated ratio, not raw
  seconds.
* ``deterministic`` fields per case — seeded result quantities (links,
  cycles, moves) that must match the committed baseline *exactly*; a
  mismatch means behavior changed, not performance.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py [--out-dir DIR]
    PYTHONPATH=src python scripts/bench_snapshot.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SCHEMA_VERSION = 1


def _calibrate(repeats: int = 3) -> float:
    """Wall time of a fixed pure-Python workload (best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(1_500_000):
            acc += (i * i) & 0xFFFF
        best = min(best, time.perf_counter() - t0)
    assert acc >= 0
    return best


def _best_of(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _synthesis_cases(repeats: int):
    from repro.model.cliques import CliqueAnalysis
    from repro.synthesis.annealing import AnnealSchedule
    from repro.synthesis.constraints import DesignConstraints
    from repro.synthesis.partition import Partitioner
    from repro.synthesis.portfolio import PortfolioConfig
    from repro.workloads.nas import benchmark as nas_benchmark

    analysis = CliqueAnalysis.of(nas_benchmark("cg", 16).pattern)

    def run():
        return Partitioner(
            analysis, constraints=DesignConstraints(), seed=0, anneal=True
        ).run()

    run()  # warm imports and caches outside the timed region
    wall, result = _best_of(run, max(repeats, 5))  # fast case: extra repeats are cheap
    cases = {
        "cg16-anneal-seed0": {
            "wall_s": round(wall, 6),
            "deterministic": {
                "total_links": result.total_links(),
                "bisections": result.bisections,
                "route_moves": result.route_moves,
                "processor_moves": result.processor_moves,
                "switches": len(result.state.switch_procs),
            },
        }
    }

    # Portfolio cases: serial (jobs=1) vs fanned (jobs=2), each run cold
    # against a fresh cache and again warm against its own.  The winner's
    # deterministic fields and the full summary+design byte identity are
    # pinned across all four variants — the portfolio's core contract.
    cg16 = nas_benchmark("cg", 16).pattern
    cases["cg16-portfolio-k4"] = _portfolio_case(
        cg16, DesignConstraints(), PortfolioConfig(size=4)
    )
    cases["cg16-portfolio-grid"] = _portfolio_case(
        cg16,
        DesignConstraints(),
        PortfolioConfig(
            size=2,
            schedules=(None, AnnealSchedule(steps=400, moves_per_temperature=10)),
        ),
    )
    # The scaled-NAS corpus (workloads.nas.scaled_suite): cg at 64 nodes
    # is infeasible at the paper's degree-5 bound, so the 64-node bench
    # runs at max_degree=8 where seeds 0 and 1 both succeed.
    cases["cg64-portfolio-k2"] = _portfolio_case(
        nas_benchmark("cg", 64).pattern,
        DesignConstraints(max_degree=8),
        PortfolioConfig(size=2),
    )
    return cases


def _portfolio_case(pattern, constraints, config):
    """Time one synthesis portfolio serial vs fanned, cold vs warm.

    Four variants: serial (``jobs=1``) and fanned (``jobs=2``), each
    cold against a fresh content-addressed cache and then warm against
    its own.  ``fanned_speedup`` is the cold ratio — real compute
    parallelism, so it grows with core count and is ~1 on a single-core
    runner; the warm ratio is also recorded and is ~1 everywhere
    (pure cache hits).  ``byte_identical`` pins the portfolio's
    determinism contract: the summary and the rehydrated winner design
    serialize identically across jobs values and cache states.
    """
    import hashlib
    import shutil
    import tempfile

    from repro.eval.parallel import ResultCache
    from repro.eval.serialize import canonical_json, design_to_dict
    from repro.synthesis.portfolio import synthesize_portfolio

    def identity(result):
        return canonical_json(
            {
                "summary": result.summary_dict(),
                "design": design_to_dict(result.design),
            }
        )

    tmp = tempfile.mkdtemp(prefix="bench-portfolio-")
    try:
        serial_cache = ResultCache(Path(tmp) / "serial")
        fanned_cache = ResultCache(Path(tmp) / "fanned")

        def run(jobs, cache):
            return synthesize_portfolio(
                pattern, constraints=constraints, config=config,
                jobs=jobs, cache=cache,
            )

        walls = {}
        t0 = time.perf_counter()
        serial = run(1, serial_cache)
        walls["cold_serial"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_serial = run(1, serial_cache)
        walls["warm_serial"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        fanned = run(2, fanned_cache)
        walls["cold_fanned"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_fanned = run(2, fanned_cache)
        walls["warm_fanned"] = time.perf_counter() - t0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    text = identity(fanned)
    return {
        "wall_s": round(walls["cold_fanned"], 6),
        "wall_serial_s": round(walls["cold_serial"], 6),
        "wall_warm_s": round(walls["warm_fanned"], 6),
        "wall_warm_serial_s": round(walls["warm_serial"], 6),
        "fanned_speedup": round(walls["cold_serial"] / walls["cold_fanned"], 4),
        "fanned_speedup_warm": round(
            walls["warm_serial"] / walls["warm_fanned"], 4
        ),
        "deterministic": {
            "winner_seed": fanned.winner.seed,
            "winner_objective": fanned.winner.objective,
            "winner_links": fanned.winner.links,
            "winner_switches": fanned.winner.switches,
            "feasible_runs": sum(1 for r in fanned.runs if r.status == "ok"),
            "runs": len(fanned.runs),
            "byte_identical": (
                identity(serial) == text
                and identity(warm_serial) == text
                and identity(warm_fanned) == text
            ),
            "result_sha256": hashlib.sha256(text.encode()).hexdigest(),
        },
    }


def _simulator_cases(repeats: int):
    from repro.simulator import SimConfig, simulate
    from repro.topology import mesh, torus
    from repro.workloads.events import Program, RecvEvent, SendEvent
    from repro.workloads.nas import benchmark as nas_benchmark

    cases = {}

    def record(name, program, topology):
        def run():
            return simulate(program, topology, SimConfig(max_cycles=5_000_000))

        run()
        wall, r = _best_of(run, repeats)
        cases[name] = {
            "wall_s": round(wall, 6),
            "deterministic": {
                "execution_cycles": r.execution_cycles,
                "delivered_packets": r.delivered_packets,
                "flit_hops": r.flit_hops,
                "deadlocks_detected": r.deadlocks_detected,
                "retransmissions": r.retransmissions,
            },
        }

    record("cg8-mesh4x2", nas_benchmark("cg", 8).program, mesh(4, 2))
    record("mg8-torus4x2", nas_benchmark("mg", 8).program, torus(4, 2))

    # Idle-heavy: a neighbour stream on a 256-node mesh — 254 NICs idle
    # every cycle; pins the event-driven NIC wake lists.
    n, messages = 256, 2000
    events = [()] * n
    events[0] = tuple(SendEvent(dest=1, size_bytes=64) for _ in range(messages))
    events[1] = tuple(RecvEvent(source=0) for _ in range(messages))
    idle = Program(name="idle-heavy", num_processes=n, events=tuple(events))
    record("idle-heavy-mesh16x16", idle, mesh(16, 16))
    return cases


def _sweep_cases(repeats: int):
    from repro.sweeps import SweepConfig, run_sweep
    from repro.topology import mesh

    topology = mesh(4, 4)
    sweep = SweepConfig(
        initial_points=4,
        refine_iters=3,
        warmup_cycles=200,
        measure_cycles=800,
        drain_cycles=800,
    )

    cases = {}
    for pattern in ("tornado", "uniform"):
        def run(pattern=pattern):
            return run_sweep(topology, pattern, sweep=sweep)

        run()
        wall, curve = _best_of(run, repeats)
        cases[f"mesh4x4-{pattern}"] = {
            "wall_s": round(wall, 6),
            "deterministic": {
                "points": len(curve.points),
                "saturated": curve.saturated,
                "saturation_rate": curve.saturation_rate,
                "saturation_throughput": curve.saturation_throughput,
                "delivered_total": sum(p.delivered for p in curve.points),
                "p50_latency_sum": sum(p.p50_latency for p in curve.points),
                "p95_latency_sum": sum(p.p95_latency for p in curve.points),
                "p99_latency_max": max(p.p99_latency for p in curve.points),
            },
        }
    cases["suite-fanout-smoke"] = _sweep_fanout_case()
    return cases


def _sweep_fanout_case():
    """Suite-level fan-out: the batched grid vs per-pair sweeps.

    Times the nightly robustness ``--smoke`` grid (cg at 8 nodes, four
    topologies, nine patterns) two ways with ``jobs=2``: through
    :func:`run_sweep_suite`'s single batched ``run_cells`` call, and
    through the pre-batching reference path — one :func:`run_sweep`
    per (topology, pattern) pair — each cold and again against its own
    warm cache.  ``fanout_speedup`` is the warm-cache re-run ratio:
    per-pair sweeps pay one worker-pool spawn per pair even for pure
    cache hits, the batch pays one in total, so this ratio holds on
    any machine.  The cold ratio is also recorded; it grows with core
    count (per-pair sweeps stall the pool on each pair's slowest cell)
    and is ~1 on a single-core runner.
    """
    import hashlib
    import shutil
    import tempfile

    from repro.eval.parallel import ResultCache
    from repro.sweeps import SweepResult, run_sweep, run_sweep_suite, study_topology

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from robustness_study import STUDY_PATTERNS, STUDY_TOPOLOGIES, _sweep_config

    sweep = _sweep_config(smoke=True, seed=0)
    rows = [
        study_topology(kind, 8, benchmark="cg", seed=0)
        for kind in STUDY_TOPOLOGIES
    ]

    tmp = tempfile.mkdtemp(prefix="bench-fanout-")
    try:
        pair_cache = ResultCache(Path(tmp) / "per-pair")
        suite_cache = ResultCache(Path(tmp) / "batched")

        def per_pair():
            curves = []
            for top_label, topology, link_delays in rows:
                for pattern in STUDY_PATTERNS:
                    curve = run_sweep(
                        topology,
                        pattern,
                        sweep=sweep,
                        link_delays=link_delays,
                        jobs=2,
                        cache=pair_cache,
                        label=top_label,
                    )
                    curves.append((top_label, curve.pattern, curve))
            return SweepResult(label="bench-fanout", curves=tuple(curves))

        def batched():
            return run_sweep_suite(
                rows,
                STUDY_PATTERNS,
                sweep=sweep,
                jobs=2,
                cache=suite_cache,
                label="bench-fanout",
            )

        walls = {}
        t0 = time.perf_counter()
        reference = per_pair()
        walls["cold_per_pair"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        per_pair()
        walls["warm_per_pair"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = batched()
        walls["cold_batched"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched()
        walls["warm_batched"] = time.perf_counter() - t0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    text = result.to_json()
    return {
        "wall_s": round(walls["cold_batched"], 6),
        "wall_per_pair_s": round(walls["cold_per_pair"], 6),
        "wall_warm_s": round(walls["warm_batched"], 6),
        "wall_warm_per_pair_s": round(walls["warm_per_pair"], 6),
        "fanout_speedup": round(walls["warm_per_pair"] / walls["warm_batched"], 4),
        "fanout_speedup_cold": round(
            walls["cold_per_pair"] / walls["cold_batched"], 4
        ),
        "deterministic": {
            "pairs": len(result.curves),
            "byte_identical": reference.to_json() == text,
            "result_sha256": hashlib.sha256(text.encode()).hexdigest(),
        },
    }


def _snapshot(kind: str, cases: dict, calibration_s: float) -> dict:
    for case in cases.values():
        case["calibrated"] = round(case["wall_s"] / calibration_s, 4)
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "calibration_s": round(calibration_s, 6),
        "cases": cases,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", default=".", help="directory for the BENCH_*.json files"
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of repeats per timed case (default 3)",
    )
    parser.add_argument(
        "--only", choices=("synthesis", "simulator", "sweep"),
        help="write just one snapshot",
    )
    args = parser.parse_args()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    # Sample the calibration loop before and after every build and keep
    # the minimum: a load spike that slows a case also slows at least
    # one adjacent calibration sample less than it would need to, so
    # using the best sample keeps calibrated ratios conservative.
    calibration = _calibrate()
    print(f"calibration loop: {calibration * 1e3:.1f} ms", flush=True)

    targets = {
        "synthesis": _synthesis_cases,
        "simulator": _simulator_cases,
        "sweep": _sweep_cases,
    }
    built = {}
    for kind, build in targets.items():
        if args.only and kind != args.only:
            continue
        built[kind] = build(args.repeats)
        calibration = min(calibration, _calibrate())

    for kind, cases in built.items():
        snapshot = _snapshot(kind, cases, calibration)
        path = out_dir / f"BENCH_{kind}.json"
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        for name, case in sorted(snapshot["cases"].items()):
            print(
                f"{kind}/{name}: {case['wall_s'] * 1e3:.1f} ms "
                f"({case['calibrated']:.2f}x calibration)",
                flush=True,
            )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
