#!/usr/bin/env python
"""Gate a fresh benchmark snapshot against a committed baseline.

Two kinds of check, per case of a ``BENCH_*.json`` snapshot (see
``bench_snapshot.py``):

* **deterministic fields** must match exactly — links, cycles, move
  counts are seeded and machine-independent, so any difference means
  the change altered behavior, not just speed;
* **calibrated wall time** (wall seconds divided by the snapshot's own
  pure-Python calibration loop) may not regress by more than
  ``--max-regression`` (default 20%).  Comparing calibrated multiples
  rather than raw seconds makes a laptop baseline meaningful on a
  loaded CI runner.

Exits nonzero on any missing case, deterministic mismatch, or
wall-time regression.  ``--summary PATH`` additionally appends the
outcome as a GitHub-flavored markdown table (CI points it at
``$GITHUB_STEP_SUMMARY``).

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py \\
        --baseline BENCH_synthesis.json --fresh /tmp/bench/BENCH_synthesis.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: snapshot {path} does not exist")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: snapshot {path} is not valid JSON: {exc}")
    if data.get("schema") != 1:
        raise SystemExit(
            f"error: snapshot {path} has unsupported schema {data.get('schema')!r}"
        )
    return data


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--fresh", required=True, type=Path)
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="allowed fractional calibrated wall-time increase (default 0.20)",
    )
    parser.add_argument(
        "--summary", type=Path, default=None, metavar="PATH",
        help="append a markdown outcome table to PATH "
        "(point at $GITHUB_STEP_SUMMARY in CI)",
    )
    args = parser.parse_args()

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    if baseline.get("kind") != fresh.get("kind"):
        print(
            f"FAIL: snapshot kinds differ "
            f"({baseline.get('kind')!r} vs {fresh.get('kind')!r})"
        )
        return 1

    failures = 0
    rows = []
    for name, base_case in sorted(baseline["cases"].items()):
        fresh_case = fresh["cases"].get(name)
        if fresh_case is None:
            print(f"FAIL {name}: missing from fresh snapshot")
            rows.append((name, "—", "—", "—", "FAIL (missing)"))
            failures += 1
            continue
        if fresh_case["deterministic"] != base_case["deterministic"]:
            print(
                f"FAIL {name}: deterministic fields changed\n"
                f"  baseline: {base_case['deterministic']}\n"
                f"  fresh:    {fresh_case['deterministic']}"
            )
            rows.append((name, "—", "—", "—", "FAIL (deterministic drift)"))
            failures += 1
            continue
        base_cal = base_case["calibrated"]
        fresh_cal = fresh_case["calibrated"]
        limit = base_cal * (1.0 + args.max_regression)
        ratio = fresh_cal / base_cal if base_cal else float("inf")
        verdict = "ok" if fresh_cal <= limit else "FAIL"
        print(
            f"{verdict} {name}: calibrated {fresh_cal:.2f}x vs baseline "
            f"{base_cal:.2f}x ({ratio - 1.0:+.0%} change, "
            f"limit {limit:.2f}x)"
        )
        rows.append(
            (
                name,
                f"{base_cal:.2f}x",
                f"{fresh_cal:.2f}x",
                f"{ratio - 1.0:+.0%}",
                "✅ ok" if verdict == "ok" else "❌ FAIL",
            )
        )
        if fresh_cal > limit:
            failures += 1
    for name in sorted(set(fresh["cases"]) - set(baseline["cases"])):
        print(f"note: case {name} is new (not in baseline)")

    if args.summary is not None:
        write_summary(args.summary, baseline.get("kind", "?"), rows, failures)
    if failures:
        print(f"{failures} benchmark gate failure(s)")
        return 1
    print("benchmark gates passed")
    return 0


def write_summary(path: Path, kind: str, rows, failures: int) -> None:
    """Append the gate outcome to ``path`` as a markdown table."""
    lines = [
        f"### Benchmark gate: `{kind}` "
        f"({'❌ ' + str(failures) + ' failure(s)' if failures else '✅ passed'})",
        "",
        "| case | baseline | fresh | change | verdict |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines += [
        f"| {name} | {base} | {fresh} | {change} | {verdict} |"
        for name, base, fresh, change, verdict in rows
    ]
    lines.append("")
    with path.open("a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


if __name__ == "__main__":
    sys.exit(main())
