#!/usr/bin/env python
"""Service smoke driver: boot ``repro serve``, hammer it, check the contract.

Boots a real ``repro serve`` subprocess on an ephemeral port with a
fresh cache directory, fires N concurrent ``repro submit`` subprocesses
with an identical cg-8 synthesize spec, and asserts the service
contract end to end:

* **single-flight** — the N submissions collapse onto one job: exactly
  one scheduled execution and exactly one cell-cache miss in ``/stats``;
* **byte identity** — every submission's result bundle is byte-for-byte
  identical, and identical to executing the same canonical spec
  directly (no HTTP) against the warmed cache;
* **clean shutdown** — ``POST /shutdown`` stops the server with exit
  code 0.

Exits nonzero on any violation.  CI runs this as the ``service-smoke``
step of the fast lane.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--clients 8] [--restarts 2]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service import ServiceClient, canonicalize_spec, execute_spec
from repro.eval.parallel import ResultCache
from repro.eval.serialize import canonical_json


def _repro(*argv: str) -> list:
    return [sys.executable, "-m", "repro", *argv]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_port(port_file: Path, proc: subprocess.Popen, timeout: float) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early with code {proc.returncode}")
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError(f"server did not write {port_file} within {timeout}s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent identical submissions (default 8)",
    )
    parser.add_argument("--benchmark", default="cg")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--restarts", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    spec = {
        "kind": "synthesize",
        "benchmark": args.benchmark,
        "nodes": args.nodes,
        "seed": 0,
        "restarts": args.restarts,
    }
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        tmp_path = Path(tmp)
        cache_dir = tmp_path / "cache"
        port_file = tmp_path / "port"
        server = subprocess.Popen(
            _repro(
                "serve", "--port", "0", "--port-file", str(port_file),
                "--workers", "2", "--cache-dir", str(cache_dir),
            ),
            env=_env(), cwd=ROOT,
        )
        try:
            port = _wait_port(port_file, server, timeout=60.0)
            url = f"http://127.0.0.1:{port}"
            client = ServiceClient(url)
            assert client.healthz()["status"] == "ok"
            print(f"server up at {url}", flush=True)

            spec_file = tmp_path / "spec.json"
            spec_file.write_text(json.dumps(spec))
            started = time.perf_counter()
            submits = [
                subprocess.Popen(
                    _repro(
                        "submit", "--url", url, "--spec", str(spec_file),
                        "--out", str(tmp_path / f"bundle-{i}.json"),
                        "--timeout", str(args.timeout),
                    ),
                    env=_env(), cwd=ROOT,
                )
                for i in range(args.clients)
            ]
            for i, proc in enumerate(submits):
                if proc.wait(timeout=args.timeout) != 0:
                    print(f"FAIL: submit {i} exited {proc.returncode}", file=sys.stderr)
                    failures += 1
            elapsed = time.perf_counter() - started
            print(f"{args.clients} submissions done in {elapsed:.1f}s", flush=True)

            bundles = [
                (tmp_path / f"bundle-{i}.json").read_bytes()
                for i in range(args.clients)
            ]
            if len(set(bundles)) != 1:
                print(
                    f"FAIL: {len(set(bundles))} distinct bundles across "
                    f"{args.clients} identical submissions",
                    file=sys.stderr,
                )
                failures += 1

            stats = client.stats()
            jobs, cells = stats["jobs"], stats["cells"]
            if jobs["scheduled"] != 1 or jobs.get("executed", 0) != 1:
                print(f"FAIL: expected one scheduled+executed job, got {jobs}",
                      file=sys.stderr)
                failures += 1
            if cells["misses"] != 1:
                print(f"FAIL: expected exactly one cell-cache miss, got {cells}",
                      file=sys.stderr)
                failures += 1
            if jobs["submitted"] != args.clients:
                print(f"FAIL: expected {args.clients} submissions, got {jobs}",
                      file=sys.stderr)
                failures += 1
            print(f"stats: jobs={jobs} cells={cells}", flush=True)

            # The no-HTTP reference: the same canonical spec executed
            # directly against the (now warm) cache must produce the
            # same canonical bytes the service served.
            reference = canonical_json(
                execute_spec(canonicalize_spec(spec), cache=ResultCache(str(cache_dir)))
            ).encode("utf-8")
            if bundles and bundles[0] != reference:
                print("FAIL: served bundle differs from direct execution",
                      file=sys.stderr)
                failures += 1

            client.shutdown()
            code = server.wait(timeout=30.0)
            if code != 0:
                print(f"FAIL: server exited {code} after shutdown", file=sys.stderr)
                failures += 1
        finally:
            if server.poll() is None:
                server.terminate()
                try:
                    server.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    server.kill()
    if failures:
        print(f"{failures} smoke failure(s)", file=sys.stderr)
        return 1
    print(
        f"OK: single-flight dedupe and byte-identical bundles across "
        f"{args.clients} concurrent submissions"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
