#!/usr/bin/env python
"""Certify the benchmark x topology corpus; the CI gate for repro.verify.

Runs the static verifier over every NAS benchmark at both paper scales
(8/9 and 16 processors) on the synthesized network and the mesh and
torus baselines, writes each :class:`~repro.verify.NetworkCertificate`
as canonical JSON to ``--out-dir``, and enforces the paper's safety
story as a gate:

* **generated** networks must certify contention-free (Theorem 1) and
  deadlock-free, with valid routes, full connectivity, and the
  synthesis degree bound;
* **mesh/torus** baselines must certify deadlock-free (dimension-order
  routing with dateline VC classes on the torus); contention is
  reported but expected, so it does not gate.

With ``--dynamic`` each certificate is additionally cross-validated
against the flit-level engine (zero contention stalls when certified
contention-free, zero deadlock recoveries when certified
deadlock-free).  Exits nonzero on any gate failure or dynamic mismatch.
``--summary PATH`` additionally appends the outcome as a markdown table
(CI points it at ``$GITHUB_STEP_SUMMARY``).

Usage::

    PYTHONPATH=src python scripts/certify_corpus.py --out-dir /tmp/certificates
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.runner import prepare
from repro.synthesis import DesignConstraints
from repro.verify import certify, cross_validate
from repro.workloads.nas import BENCHMARK_NAMES, PAPER_LARGE_SIZE, PAPER_SMALL_SIZES

GATED_KINDS = ("generated", "mesh", "torus")


def corpus_entries(benchmarks, sizes):
    for name in benchmarks:
        for label in sizes:
            n = PAPER_SMALL_SIZES[name] if label == "small" else PAPER_LARGE_SIZE
            for kind in GATED_KINDS:
                yield name, n, kind


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", type=Path, default=None,
        help="directory for the JSON certificates (created if missing)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--benchmarks", nargs="+", default=list(BENCHMARK_NAMES),
        choices=BENCHMARK_NAMES, metavar="BENCH",
    )
    parser.add_argument(
        "--sizes", nargs="+", default=["small", "large"],
        choices=("small", "large"),
    )
    parser.add_argument(
        "--dynamic", action="store_true",
        help="also cross-validate each certificate against the engine",
    )
    parser.add_argument(
        "--summary", type=Path, default=None, metavar="PATH",
        help="append a markdown outcome table to PATH "
        "(point at $GITHUB_STEP_SUMMARY in CI)",
    )
    args = parser.parse_args()

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)

    failures = []
    rows = []
    started = time.perf_counter()
    for name, n, kind in corpus_entries(args.benchmarks, args.sizes):
        setup = prepare(name, n, seed=args.seed)
        topology = setup.topology(kind)
        max_degree = (
            DesignConstraints().max_degree if kind == "generated" else None
        )
        cert = certify(topology, setup.benchmark.pattern, max_degree=max_degree)
        require_cf = kind == "generated"
        ok = cert.ok(require_contention_free=require_cf)
        problems = [
            f.name for f in cert.findings
            if not f.passed and (f.name != "contention" or require_cf)
        ]

        if args.out_dir is not None:
            path = args.out_dir / f"{name}-{n}-{kind}.cert.json"
            path.write_text(cert.to_json())

        line = (
            f"{name}-{n:>2} {kind:<9} "
            f"contention={'pass' if cert.contention_free else 'FAIL'} "
            f"deadlock={cert.deadlock_method if cert.deadlock_free else 'FAIL'}"
        )
        if args.dynamic:
            report, mismatches = cross_validate(
                cert, topology, setup.benchmark.pattern,
                link_delays=setup.link_delays(kind),
            )
            line += (
                f" replay[{report.delivered_packets}/{report.messages} "
                f"stalls={report.contention_stalls} "
                f"deadlocks={report.deadlocks_detected}]"
            )
            if mismatches:
                problems.extend(f"dynamic:{m}" for m in mismatches)
        if problems:
            failures.append((f"{name}-{n}-{kind}", problems))
            line += "  <-- GATE FAILURE: " + "; ".join(problems)
        rows.append(
            (
                f"{name}-{n}",
                kind,
                "✅" if cert.contention_free else "⚠️",
                cert.deadlock_method if cert.deadlock_free else "❌",
                "❌ " + "; ".join(problems) if problems else "✅ certified",
            )
        )
        print(line, flush=True)
        if problems:
            print(cert.render(), flush=True)

    elapsed = time.perf_counter() - started
    total = sum(1 for _ in corpus_entries(args.benchmarks, args.sizes))
    print(
        f"\ncertified {total - len(failures)}/{total} corpus entries "
        f"in {elapsed:.1f}s",
        flush=True,
    )
    if args.summary is not None:
        write_summary(args.summary, rows, len(failures), total, elapsed)
    if failures:
        for entry, problems in failures:
            print(f"FAILED {entry}: {', '.join(problems)}", file=sys.stderr)
        return 1
    return 0


def write_summary(path: Path, rows, failed: int, total: int, elapsed: float) -> None:
    """Append the corpus outcome to ``path`` as a markdown table."""
    lines = [
        f"### Certification corpus: {total - failed}/{total} certified "
        f"in {elapsed:.1f}s {'❌' if failed else '✅'}",
        "",
        "| network | topology | contention-free | deadlock-free | gate |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines += [
        f"| {entry} | {kind} | {contention} | {deadlock} | {gate} |"
        for entry, kind, contention, deadlock, gate in rows
    ]
    lines.append("")
    with path.open("a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


if __name__ == "__main__":
    sys.exit(main())
