#!/usr/bin/env python
"""Validate observability artifacts produced by ``repro profile``.

Usage:
    PYTHONPATH=src python scripts/validate_trace.py TRACE.json [METRICS.json]

Checks the Chrome-trace export against the schema expected by
``chrome://tracing``/Perfetto (via ``repro.obs.validate_chrome_trace``)
and, when a metrics snapshot is given, that every mandatory counter is
present and positive.  Exits non-zero on any problem; CI runs this on a
tiny cg-8 profile for every push (see ``.github/workflows/ci.yml``).
"""

import json
import sys

from repro.obs import MANDATORY_COUNTERS, validate_chrome_trace


def check_trace(path: str) -> list:
    with open(path, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    problems = [f"{path}: {p}" for p in validate_chrome_trace(trace)]
    if not problems:
        events = trace["traceEvents"]
        spans = sum(1 for e in events if e.get("ph") == "X")
        if spans == 0:
            problems.append(f"{path}: trace contains no complete (X) spans")
        else:
            print(f"{path}: OK ({len(events)} events, {spans} spans)")
    return problems


def check_metrics(path: str) -> list:
    with open(path, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    counters = snapshot.get("counters")
    if not isinstance(counters, dict):
        return [f"{path}: no counters section"]
    problems = []
    for name in MANDATORY_COUNTERS:
        value = counters.get(name)
        # Presence is the contract; zero is a legitimate value (e.g. a
        # pattern that Best_Route never needs to re-route).
        if not isinstance(value, int) or value < 0:
            problems.append(f"{path}: mandatory counter {name} = {value!r}")
    if not problems:
        print(f"{path}: OK ({len(MANDATORY_COUNTERS)} mandatory counters)")
    return problems


def main(argv) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = check_trace(argv[1])
    if len(argv) == 3:
        problems += check_metrics(argv[2])
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
