#!/usr/bin/env python
"""Off-design robustness study: saturation sweeps across topologies.

The paper's generated networks are synthesized for one benchmark's
communication pattern.  This study asks how they hold up when the
traffic is *not* the one they were designed for: every topology
(generated, generated+one-spare-link-per-switch, mesh, torus) is swept
to saturation on the canonical synthetic suite (uniform, tornado,
transpose, bit permutations, hotspot, the routing-aware adversarial
permutation), and the resulting saturation throughputs are printed as
a degradation table relative to the mesh baseline.

Full mode covers every NAS benchmark at 16 and 64 nodes (both valid
for every benchmark: powers of two for CG/FFT/MG, perfect squares for
BT/SP); ``--smoke`` runs one benchmark at its paper small size with
shortened sweep windows — the fast CI gate.  The nightly lane runs
full mode and uploads the ``--json`` artifact.

Usage::

    PYTHONPATH=src python scripts/robustness_study.py --smoke --jobs 0
    PYTHONPATH=src python scripts/robustness_study.py --benchmarks cg,mg \
        --nodes 16 --json study.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Sweep suite of the study — every non-parameterized family plus one
#: representative hotspot (node 0 drawing 60% of the traffic).
STUDY_PATTERNS = (
    "uniform",
    "neighbor",
    "tornado",
    "transpose",
    "bit_complement",
    "bit_reverse",
    "shuffle",
    "hotspot:0:0.6",
    "adversarial",
)

STUDY_TOPOLOGIES = ("generated", "generated-spare", "mesh", "torus")


def _sweep_config(smoke: bool, seed: int):
    from repro.sweeps import SweepConfig

    if smoke:
        return SweepConfig(
            initial_points=4,
            refine_iters=2,
            warmup_cycles=200,
            measure_cycles=600,
            drain_cycles=800,
            seed=seed,
        )
    return SweepConfig(seed=seed)


def run_study(
    benchmark: str,
    nodes: int,
    patterns=STUDY_PATTERNS,
    topologies=STUDY_TOPOLOGIES,
    smoke: bool = False,
    seed: int = 0,
    jobs: int = 1,
    cache=None,
    progress=None,
):
    """One benchmark/scale cell of the study, as a ``SweepResult``."""
    from repro.sweeps import run_sweep_suite, study_topology

    rows = [
        study_topology(kind, nodes, benchmark=benchmark, seed=seed)
        for kind in topologies
    ]
    return run_sweep_suite(
        rows,
        patterns,
        sweep=_sweep_config(smoke, seed),
        jobs=jobs,
        cache=cache,
        progress=progress,
        label=f"robustness-{benchmark}-{nodes}",
    )


def main() -> int:
    from repro.eval.parallel import DEFAULT_CACHE_DIR, ResultCache, print_progress
    from repro.sweeps import degradation_table
    from repro.workloads import BENCHMARK_NAMES, PAPER_LARGE_SIZE, PAPER_SMALL_SIZES

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one benchmark at small scale with short sweep windows",
    )
    parser.add_argument(
        "--benchmarks", default=None, metavar="LIST",
        help="comma-separated NAS benchmarks (default: all; smoke: cg)",
    )
    parser.add_argument(
        "--nodes", default=None, metavar="LIST",
        help="comma-separated node counts (default 16,64; smoke: the "
        "benchmark's paper small size)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per sweep (1 = serial, 0 = all cores)",
    )
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--cache-dir", default=None, metavar="DIR")
    parser.add_argument("--progress", action="store_true")
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write every SweepResult as one canonical-JSON artifact",
    )
    args = parser.parse_args()

    benchmarks = tuple(
        b.strip() for b in args.benchmarks.split(",") if b.strip()
    ) if args.benchmarks else (("cg",) if args.smoke else BENCHMARK_NAMES)
    unknown = [b for b in benchmarks if b not in BENCHMARK_NAMES]
    if unknown:
        parser.error(f"unknown benchmarks {unknown}; choose from {BENCHMARK_NAMES}")
    if args.nodes:
        try:
            node_counts = tuple(
                int(n.strip()) for n in args.nodes.split(",") if n.strip()
            )
        except ValueError:
            parser.error(f"--nodes must be a comma-separated int list, got {args.nodes!r}")
        if not node_counts or any(n < 2 for n in node_counts):
            parser.error(f"--nodes needs counts >= 2, got {args.nodes!r}")
    else:
        node_counts = None  # smoke: per-benchmark small size; full: 16,64

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    progress = print_progress if args.progress else None

    artifacts = []
    first = True
    for bench in benchmarks:
        if node_counts is not None:
            scales = node_counts
        elif args.smoke:
            scales = (PAPER_SMALL_SIZES[bench],)
        else:
            scales = (PAPER_LARGE_SIZE, 4 * PAPER_LARGE_SIZE)
        for nodes in scales:
            result = run_study(
                bench,
                nodes,
                smoke=args.smoke,
                seed=args.seed,
                jobs=args.jobs,
                cache=cache,
                progress=progress,
            )
            artifacts.append(result)
            if not first:
                print()
            first = False
            print(
                degradation_table(
                    result,
                    baseline="mesh",
                    title=(
                        f"{bench}-{nodes}: saturation throughput "
                        f"(flits/node/cycle), ratio vs mesh"
                    ),
                )
            )

    if args.json_out:
        payload = {
            "kind": "robustness-study",
            "schema": 1,
            "seed": args.seed,
            "smoke": args.smoke,
            "results": [r.to_dict() for r in artifacts],
        }
        with open(args.json_out, "w") as fh:
            fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        print(f"study written to {args.json_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
