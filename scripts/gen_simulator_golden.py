#!/usr/bin/env python
"""Regenerate the simulator byte-identity goldens.

Runs the differential corpus (``tests/simulator/diff_corpus.py``)
through the *current* engine and writes the payloads as sorted JSON
under ``tests/simulator/golden/``.  The committed goldens were frozen
from the pre-event-queue engine; regenerating them is only legitimate
when an intentional behavior change lands, and the diff must be
reviewed case by case — the whole point of the fixtures is that the
engine rewrite cannot silently redefine its own oracle.

Usage::

    PYTHONPATH=src python scripts/gen_simulator_golden.py [--out-dir DIR]
    PYTHONPATH=src python scripts/gen_simulator_golden.py --lanes fast
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from tests.simulator import diff_corpus


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", type=Path, default=ROOT / "tests" / "simulator" / "golden",
    )
    parser.add_argument(
        "--lanes", nargs="+", default=[diff_corpus.FAST, diff_corpus.SLOW],
        choices=(diff_corpus.FAST, diff_corpus.SLOW),
    )
    args = parser.parse_args()
    args.out_dir.mkdir(parents=True, exist_ok=True)

    from repro.simulator.openloop import run_open_loop
    from repro.simulator.simulation import simulate
    from repro.verify.dynamic import replay_pattern

    started = time.perf_counter()

    def progress(msg: str) -> None:
        print(f"[{time.perf_counter() - started:7.1f}s] {msg}", flush=True)

    corpus = diff_corpus.build_corpus(
        simulate, replay_pattern, run_open_loop,
        lanes=tuple(args.lanes), progress=progress,
    )
    for filename, payloads in corpus.items():
        path = args.out_dir / filename
        path.write_text(json.dumps(payloads, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} ({len(payloads)} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
