#!/usr/bin/env python
"""Golden-grid determinism check: serial vs parallel, byte for byte.

Runs the small-size Figure 8 grid twice in fresh caches — once with
``--jobs 1`` and once with ``--jobs 2`` — and diffs the canonical JSON
of every row.  Exits nonzero on any mismatch.  CI runs this on a
schedule so a nondeterminism regression (e.g. an unseeded RNG or an
iteration-order dependence sneaking into the simulator) is caught even
when no PR touched the evaluation code.

Usage::

    PYTHONPATH=src python scripts/check_determinism.py [--size small] [--jobs N]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.experiments import figure8_rows
from repro.eval.parallel import ResultCache
from repro.eval.serialize import canonical_json


def _rows_as_json(rows):
    return [canonical_json(dataclasses.asdict(r)) for r in rows]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="small", choices=("small", "large"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker count for the parallel leg (default 2)",
    )
    args = parser.parse_args()

    timings = {}
    results = {}
    for label, jobs in (("serial", 1), (f"parallel(jobs={args.jobs})", args.jobs)):
        with tempfile.TemporaryDirectory(prefix="repro-determinism-") as cache_dir:
            started = time.perf_counter()
            rows = figure8_rows(
                args.size, seed=args.seed, jobs=jobs, cache=ResultCache(cache_dir)
            )
            timings[label] = time.perf_counter() - started
            results[label] = _rows_as_json(rows)
        print(f"{label}: {len(rows)} rows in {timings[label]:.1f}s", flush=True)

    (serial_label, parallel_label) = results
    serial, parallel = results[serial_label], results[parallel_label]
    if len(serial) != len(parallel):
        print(
            f"FAIL: row count differs — {len(serial)} serial vs "
            f"{len(parallel)} parallel",
            file=sys.stderr,
        )
        return 1
    mismatches = [
        (i, s, p) for i, (s, p) in enumerate(zip(serial, parallel)) if s != p
    ]
    for i, s, p in mismatches:
        print(f"FAIL: row {i} differs\n  serial:   {s}\n  parallel: {p}", file=sys.stderr)
    if mismatches:
        print(f"{len(mismatches)} mismatching rows", file=sys.stderr)
        return 1
    print(f"OK: {len(serial)} rows byte-identical across serial and parallel runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
