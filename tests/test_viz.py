"""Tests for the ASCII visualization helpers."""

from repro.model import CommunicationPattern
from repro.simulator import SimConfig, simulate
from repro.topology import mesh
from repro.viz import (
    render_adjacency_matrix,
    render_comm_matrix,
    render_link_utilization,
    render_pattern_timeline,
)
from repro.workloads import PhaseProgramBuilder, extract_pattern

from tests.fixtures import figure1_pattern, pattern_from_phases


class TestPatternTimeline:
    def test_empty_pattern(self):
        p = CommunicationPattern(messages=(), num_processes=2)
        assert "empty" in render_pattern_timeline(p)

    def test_mentions_every_early_message(self):
        p = pattern_from_phases([[(0, 1), (2, 3)]], num_processes=4)
        text = render_pattern_timeline(p)
        assert "(0,1)" in text and "(2,3)" in text
        assert "1 contention periods" in text

    def test_truncates_long_patterns(self):
        text = render_pattern_timeline(figure1_pattern(), max_rows=5)
        assert "more messages" in text

    def test_bars_reflect_phases(self):
        p = pattern_from_phases([[(0, 1)], [(1, 0)]], num_processes=2)
        text = render_pattern_timeline(p, width=20)
        lines = [l for l in text.splitlines() if "|" in l]
        first, second = lines[0], lines[1]
        # Phase-0 bar starts earlier than phase-1 bar.
        assert first.index("#") < second.index("#")


class TestAdjacencyMatrix:
    def test_mesh_matrix_shape(self):
        top = mesh(2, 2)
        text = render_adjacency_matrix(top.network)
        assert text.count("\n") == 4  # header + 4 switch rows
        assert "S0" in text and "S3" in text

    def test_parallel_links_counted(self):
        from repro.topology import Network

        net = Network(2)
        a, b = net.add_switch(), net.add_switch()
        net.attach_processor(0, a)
        net.attach_processor(1, b)
        net.add_link(a, b)
        net.add_link(a, b)
        assert "  2 " in render_adjacency_matrix(net)


class TestCommMatrix:
    def test_counts(self):
        p = pattern_from_phases([[(0, 1)], [(0, 1)]], num_processes=2)
        text = render_comm_matrix(p)
        assert "2" in text

    def test_zero_rendered_as_dot(self):
        p = pattern_from_phases([[(0, 1)]], num_processes=2)
        assert "." in render_comm_matrix(p)


class TestUtilization:
    def test_renders_hot_channels(self):
        b = PhaseProgramBuilder(4, "u")
        b.phase([(0, 3, 512)])
        result = simulate(b.build(), mesh(4, 1), SimConfig())
        text = render_link_utilization(result, top=3)
        assert "%" in text
        assert "hottest channels" in text

    def test_empty_result(self):
        b = PhaseProgramBuilder(2, "quiet")
        b.compute(10)
        result = simulate(b.build(), mesh(2, 1), SimConfig())
        assert "(no traffic)" in render_link_utilization(result)


class TestCliInspect:
    def test_inspect_command(self, capsys):
        from repro.cli import main

        rc = main(["inspect", "--benchmark", "cg", "--nodes", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "contention periods" in out
        assert "traffic matrix" in out
