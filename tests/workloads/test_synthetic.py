"""Tests for synthetic pattern generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.model import CliqueAnalysis, potential_contention_set
from repro.workloads import (
    hotspot_pattern,
    neighbor_ring_pattern,
    random_permutation_pattern,
)


class TestRandomPermutation:
    def test_each_phase_is_full_permutation(self):
        p = random_permutation_pattern(8, 3, seed=1)
        analysis = CliqueAnalysis.of(p)
        assert all(len(c) == 8 for c in analysis.max_cliques)

    def test_no_fixed_points(self):
        p = random_permutation_pattern(9, 5, seed=2)
        assert all(m.source != m.dest for m in p)

    def test_deterministic_by_seed(self):
        a = random_permutation_pattern(8, 2, seed=7)
        b = random_permutation_pattern(8, 2, seed=7)
        assert a.messages == b.messages

    def test_rejects_tiny_system(self):
        with pytest.raises(WorkloadError):
            random_permutation_pattern(1, 1)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        phases=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_permutation_property(self, n, phases, seed):
        p = random_permutation_pattern(n, phases, seed=seed)
        by_tag = {}
        for m in p:
            by_tag.setdefault(m.tag, []).append(m)
        for msgs in by_tag.values():
            assert sorted(m.source for m in msgs) == list(range(n))
            assert sorted(m.dest for m in msgs) == list(range(n))


class TestHotspot:
    def test_messages_are_sequential(self):
        p = hotspot_pattern(6, hotspot=2)
        assert potential_contention_set(p) == frozenset()

    def test_all_sources_covered(self):
        p = hotspot_pattern(5, hotspot=0)
        assert {m.source for m in p} == {1, 2, 3, 4}
        assert all(m.dest == 0 for m in p)

    def test_bad_hotspot_rejected(self):
        with pytest.raises(WorkloadError):
            hotspot_pattern(4, hotspot=9)


class TestNeighborRing:
    def test_alternating_directions(self):
        p = neighbor_ring_pattern(5, num_phases=2)
        tags = {m.tag for m in p}
        assert tags == {"ring0", "ring1"}
        fwd = [m for m in p if m.tag == "ring0"]
        assert all((m.source + 1) % 5 == m.dest for m in fwd)

    def test_rejects_tiny_ring(self):
        with pytest.raises(WorkloadError):
            neighbor_ring_pattern(2)
