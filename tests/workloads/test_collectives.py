"""Tests for collective-to-phase expansion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    binomial_broadcast,
    diagonal_shift,
    grid_neighbor_shift,
    pairwise_exchange,
    recursive_doubling,
    recursive_halving_reduce,
    shifted_all_to_all,
    transpose_exchange,
)


class TestPairwiseExchange:
    def test_distance_one_pairs_adjacent(self):
        phase = pairwise_exchange([10, 11, 12, 13], 1)
        assert (10, 11) in phase and (11, 10) in phase
        assert (12, 13) in phase and (13, 12) in phase
        assert len(phase) == 4

    def test_duplicate_members_rejected(self):
        with pytest.raises(WorkloadError):
            pairwise_exchange([1, 1], 1)

    def test_each_phase_is_partial_permutation(self):
        phase = pairwise_exchange(list(range(8)), 2)
        sources = [s for s, _ in phase]
        dests = [d for _, d in phase]
        assert len(set(sources)) == len(sources)
        assert len(set(dests)) == len(dests)


class TestRecursiveDoubling:
    def test_phase_count_is_log2(self):
        assert len(recursive_doubling(list(range(16)))) == 4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(WorkloadError):
            recursive_doubling(list(range(6)))

    def test_every_pair_communicates_over_all_phases(self):
        # After log2(n) rounds every member has (transitively) heard
        # from every other; directly, each phase is a perfect matching.
        for phase in recursive_doubling(list(range(8))):
            assert len(phase) == 8  # both directions of 4 pairs


class TestRecursiveHalvingReduce:
    def test_message_counts_halve(self):
        phases = recursive_halving_reduce(list(range(16)))
        assert [len(p) for p in phases] == [8, 4, 2, 1]

    def test_everything_flows_to_root(self):
        phases = recursive_halving_reduce(list(range(8)))
        assert phases[-1] == [(1, 0)]


class TestBinomialBroadcast:
    def test_message_counts_double(self):
        phases = binomial_broadcast(list(range(16)))
        assert [len(p) for p in phases] == [1, 2, 4, 8]

    def test_all_members_covered(self):
        phases = binomial_broadcast(list(range(8)))
        covered = {0}
        for phase in phases:
            for s, d in phase:
                assert s in covered
                covered.add(d)
        assert covered == set(range(8))

    def test_nonzero_root(self):
        phases = binomial_broadcast(list(range(4)), root_index=2)
        assert phases[0][0][0] == 2

    def test_bad_root_rejected(self):
        with pytest.raises(WorkloadError):
            binomial_broadcast(list(range(4)), root_index=9)


class TestShiftedAllToAll:
    def test_phase_count(self):
        assert len(shifted_all_to_all(list(range(5)))) == 4

    def test_each_phase_is_full_permutation(self):
        for phase in shifted_all_to_all(list(range(6))):
            assert len(phase) == 6
            assert len({s for s, _ in phase}) == 6
            assert len({d for _, d in phase}) == 6

    def test_all_pairs_covered_exactly_once(self):
        group = [3, 5, 7, 9]
        seen = set()
        for phase in shifted_all_to_all(group):
            for pair in phase:
                assert pair not in seen
                seen.add(pair)
        assert seen == {(a, b) for a in group for b in group if a != b}


class TestTransposeExchange:
    def test_square_matches_figure1(self):
        from tests.fixtures import paper_period3_clique

        phase = transpose_exchange(4, 4)
        assert {(s, d) for s, d in phase} == {
            (c.source, c.dest) for c in paper_period3_clique()
        }

    def test_rectangular_is_permutation(self):
        phase = transpose_exchange(2, 4)
        sources = {s for s, _ in phase}
        dests = {d for _, d in phase}
        assert sources == dests  # same participants both ways

    @given(
        rows=st.integers(min_value=1, max_value=5),
        cols=st.integers(min_value=1, max_value=5),
    )
    def test_transpose_mapping_is_bijective(self, rows, cols):
        n = rows * cols
        mapping = {me: (me % rows) * cols + me // rows for me in range(n)}
        assert sorted(mapping.values()) == list(range(n))


class TestGridShifts:
    def test_wrap_shift_is_full_permutation(self):
        phase = grid_neighbor_shift(3, 3, "x", 1, wrap=True)
        assert len(phase) == 9

    def test_nonwrap_drops_border(self):
        phase = grid_neighbor_shift(3, 3, "x", 1, wrap=False)
        assert len(phase) == 6  # last column has no +x neighbour

    def test_bad_axis_rejected(self):
        with pytest.raises(WorkloadError):
            grid_neighbor_shift(3, 3, "z", 1)

    def test_diagonal_shift_wraps(self):
        phase = diagonal_shift(3, 3, 1)
        assert len(phase) == 9
        assert (0, 4) in phase  # (0,0) -> (1,1)
        assert (8, 0) in phase  # (2,2) -> (0,0)
