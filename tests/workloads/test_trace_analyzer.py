"""Tests for the trace format and the pattern analyzer pipeline."""

import pytest

from repro.errors import WorkloadError
from repro.model import CliqueAnalysis
from repro.workloads import (
    PhaseProgramBuilder,
    Trace,
    TraceRecord,
    check_trace_consistent,
    contention_periods_of,
    extract_pattern,
    read_trace,
    trace_program,
    write_trace,
)


def _exchange_program():
    b = PhaseProgramBuilder(4, "exch")
    b.compute(100)
    b.phase([(0, 1, 64), (1, 0, 64)], tag="a")
    b.compute(100)
    b.phase([(2, 3, 64), (3, 2, 64)], tag="b")
    return b.build()


class TestTraceProgram:
    def test_records_sends_and_recvs(self):
        trace = trace_program(_exchange_program())
        assert len(trace.sends()) == 4
        assert len(trace.recvs()) == 4

    def test_compute_leaves_no_records(self):
        trace = trace_program(_exchange_program())
        assert all(r.op in ("send", "recv") for r in trace.records)

    def test_tags_in_order(self):
        trace = trace_program(_exchange_program())
        assert trace.tags_in_order() == ("a", "b")

    def test_bad_op_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRecord(process=0, op="exec", peer=1, size_bytes=0, tag="x")


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = trace_program(_exchange_program())
        path = tmp_path / "trace.jsonl"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded == trace

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(WorkloadError):
            read_trace(path)


class TestAnalyzer:
    def test_consistency_check_passes_matched_trace(self):
        check_trace_consistent(trace_program(_exchange_program()))

    def test_consistency_check_catches_missing_recv(self):
        trace = Trace(
            name="bad",
            num_processes=2,
            records=(
                TraceRecord(process=0, op="send", peer=1, size_bytes=8, tag="t"),
            ),
        )
        with pytest.raises(WorkloadError):
            check_trace_consistent(trace)

    def test_periods_group_by_call_tag(self):
        trace = trace_program(_exchange_program())
        periods = contention_periods_of(trace)
        assert [tag for tag, _ in periods] == ["a", "b"]
        assert sorted(periods[0][1]) == [(0, 1, 64), (1, 0, 64)]

    def test_duplicate_pair_in_one_call_rejected(self):
        trace = Trace(
            name="dup",
            num_processes=2,
            records=(
                TraceRecord(process=0, op="send", peer=1, size_bytes=8, tag="t"),
                TraceRecord(process=0, op="send", peer=1, size_bytes=8, tag="t"),
            ),
        )
        with pytest.raises(WorkloadError):
            contention_periods_of(trace)

    def test_extract_pattern_one_clique_per_period(self):
        pattern = extract_pattern(_exchange_program())
        analysis = CliqueAnalysis.of(pattern)
        assert len(analysis.periods) == 2
        assert all(len(c) == 2 for c in analysis.max_cliques)

    def test_extract_pattern_periods_never_overlap(self):
        pattern = extract_pattern(_exchange_program())
        phases = sorted(
            {(m.t_start, m.t_finish) for m in pattern.messages}
        )
        for (s1, f1), (s2, f2) in zip(phases, phases[1:]):
            assert f1 < s2  # strict gap between periods

    def test_extract_from_program_equals_extract_from_trace(self):
        program = _exchange_program()
        assert extract_pattern(program) == extract_pattern(trace_program(program))
