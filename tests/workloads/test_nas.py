"""Tests for the NAS-like benchmark generators."""

import pytest

from repro.errors import WorkloadError
from repro.model import CliqueAnalysis, Communication
from repro.workloads import (
    BENCHMARK_NAMES,
    PAPER_SMALL_SIZES,
    benchmark,
    bt,
    cg,
    fft,
    mg,
    paper_suite,
    sp,
)

from tests.fixtures import paper_period3_clique


class TestCG:
    def test_cg16_transpose_period_matches_figure1(self):
        """The synthesized CG-16 pattern reproduces the paper's Figure 1
        transpose clique."""
        b = cg(16)
        analysis = CliqueAnalysis.of(b.pattern)
        assert paper_period3_clique() in set(analysis.max_cliques)

    def test_cg16_has_three_distinct_periods(self):
        b = cg(16)
        analysis = CliqueAnalysis.of(b.pattern)
        # distance-1 reduce, distance-2 reduce, transpose (iterations
        # repeat the same cliques).
        assert len(analysis.max_cliques) == 3

    def test_cg8_uses_2x4_grid(self):
        assert cg(8).grid == (2, 4)

    def test_cg_rejects_odd_sizes(self):
        with pytest.raises(WorkloadError):
            cg(9)

    def test_program_is_balanced(self):
        assert cg(16).program.sends_balanced()


class TestBTSP:
    def test_bt_requires_square(self):
        with pytest.raises(WorkloadError):
            bt(8)

    def test_bt9_grid(self):
        assert bt(9).grid == (3, 3)

    def test_copy_faces_are_full_permutations(self):
        b = bt(9)
        analysis = CliqueAnalysis.of(b.pattern)
        assert analysis.largest_clique_size == 9

    def test_sweep_stages_are_small_cliques(self):
        b = bt(9)
        analysis = CliqueAnalysis.of(b.pattern)
        sizes = sorted(len(c) for c in analysis.max_cliques)
        assert sizes[0] == 3  # a wavefront stage: one message per row

    def test_sp_same_structure_smaller_messages(self):
        b_bt, b_sp = bt(9), sp(9)
        assert b_sp.pattern.communications == b_bt.pattern.communications
        bt_size = max(m.size_bytes for m in b_bt.pattern)
        sp_size = max(m.size_bytes for m in b_sp.pattern)
        assert sp_size < bt_size

    def test_programs_balanced(self):
        assert bt(16).program.sends_balanced()
        assert sp(9).program.sends_balanced()


class TestFFT:
    def test_first_steps_are_global_periods(self):
        b = fft(16)
        analysis = CliqueAnalysis.of(b.pattern)
        assert analysis.largest_clique_size == 16

    def test_every_row_pair_communicates(self):
        b = fft(16)
        comms = b.pattern.communications
        # All-to-all within row 0 (processes 0..3).
        for a in range(4):
            for c in range(4):
                if a != c:
                    assert Communication(a, c) in comms

    def test_balanced(self):
        assert fft(8).program.sends_balanced()


class TestMG:
    def test_small_messages_for_collectives(self):
        b = mg(16)
        sizes = {m.size_bytes for m in b.pattern}
        assert min(sizes) <= 64

    def test_coarser_levels_have_fewer_participants(self):
        b = mg(16)
        by_tag = {}
        for m in b.pattern:
            by_tag.setdefault(m.tag, set()).update((m.source, m.dest))
        l0 = [v for k, v in by_tag.items() if "-L0-" in k]
        l1 = [v for k, v in by_tag.items() if "-L1-" in k]
        assert l1, "expected level-1 phases"
        assert max(len(v) for v in l1) < max(len(v) for v in l0)

    def test_balanced(self):
        assert mg(16).program.sends_balanced()


class TestSuite:
    def test_benchmark_dispatcher(self):
        b = benchmark("CG", 16)
        assert b.name == "cg-16"

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            benchmark("lu", 16)

    def test_paper_small_sizes(self):
        suite = paper_suite("small")
        assert set(suite) == set(BENCHMARK_NAMES)
        for name, b in suite.items():
            assert b.num_processes == PAPER_SMALL_SIZES[name]

    def test_paper_large_all_sixteen(self):
        for b in paper_suite("large").values():
            assert b.num_processes == 16

    def test_bad_suite_size(self):
        with pytest.raises(WorkloadError):
            paper_suite("medium")

    def test_patterns_have_no_self_messages_and_valid_ranges(self):
        for b in paper_suite("large").values():
            for m in b.pattern:
                assert m.source != m.dest
                assert 0 <= m.source < 16 and 0 <= m.dest < 16
