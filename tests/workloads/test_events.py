"""Tests for program events and the phase builder."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ComputeEvent,
    PhaseProgramBuilder,
    Program,
    RecvEvent,
    SendEvent,
)


class TestEvents:
    def test_compute_rejects_negative(self):
        with pytest.raises(WorkloadError):
            ComputeEvent(-1)

    def test_send_rejects_empty_message(self):
        with pytest.raises(WorkloadError):
            SendEvent(dest=1, size_bytes=0)

    def test_events_are_frozen(self):
        e = SendEvent(dest=1, size_bytes=64)
        with pytest.raises(AttributeError):
            e.dest = 2


class TestProgramValidation:
    def test_event_stream_count_must_match(self):
        with pytest.raises(WorkloadError):
            Program(name="x", num_processes=2, events=((),))

    def test_out_of_range_send_rejected(self):
        with pytest.raises(WorkloadError):
            Program(
                name="x",
                num_processes=2,
                events=((SendEvent(dest=5, size_bytes=8),), ()),
            )

    def test_out_of_range_recv_rejected(self):
        with pytest.raises(WorkloadError):
            Program(
                name="x",
                num_processes=2,
                events=((RecvEvent(source=7),), ()),
            )

    def test_totals(self):
        p = Program(
            name="x",
            num_processes=2,
            events=(
                (SendEvent(dest=1, size_bytes=100),),
                (RecvEvent(source=0),),
            ),
        )
        assert p.total_messages == 1
        assert p.total_bytes == 100
        assert p.sends_balanced()

    def test_unbalanced_detected(self):
        p = Program(
            name="x",
            num_processes=2,
            events=((SendEvent(dest=1, size_bytes=100),), ()),
        )
        assert not p.sends_balanced()


class TestPhaseProgramBuilder:
    def test_phase_adds_sends_then_recvs(self):
        b = PhaseProgramBuilder(2, "t")
        b.phase([(0, 1, 64)])
        p = b.build()
        assert isinstance(p.events[0][0], SendEvent)
        assert isinstance(p.events[1][0], RecvEvent)
        assert p.phase_tags == ("phase0",)

    def test_exchange_orders_send_before_recv(self):
        # Bidirectional exchange: both processes send first, then recv,
        # so blocking receives cannot deadlock.
        b = PhaseProgramBuilder(2, "t")
        b.phase([(0, 1, 64), (1, 0, 64)])
        p = b.build()
        for proc in (0, 1):
            kinds = [type(e).__name__ for e in p.events[proc]]
            assert kinds == ["SendEvent", "RecvEvent"]

    def test_self_message_rejected(self):
        b = PhaseProgramBuilder(2, "t")
        with pytest.raises(WorkloadError):
            b.phase([(0, 0, 64)])

    def test_compute_jitter_varies_processes_deterministically(self):
        b1 = PhaseProgramBuilder(4, "t", jitter=0.2, seed=42)
        b1.compute(1000)
        p1 = b1.build()
        b2 = PhaseProgramBuilder(4, "t", jitter=0.2, seed=42)
        b2.compute(1000)
        p2 = b2.build()
        cycles1 = [e[0].cycles for e in p1.events]
        cycles2 = [e[0].cycles for e in p2.events]
        assert cycles1 == cycles2  # seeded
        assert len(set(cycles1)) > 1  # but jittered across processes

    def test_zero_jitter_is_exact(self):
        b = PhaseProgramBuilder(3, "t", jitter=0.0)
        b.compute(500)
        p = b.build()
        assert all(e[0].cycles == 500 for e in p.events)

    def test_jitter_bounds_validated(self):
        with pytest.raises(WorkloadError):
            PhaseProgramBuilder(2, "t", jitter=1.5)

    def test_compute_on_subset(self):
        b = PhaseProgramBuilder(3, "t")
        b.compute(100, processes=[1])
        p = b.build()
        assert p.events[0] == ()
        assert p.events[1][0].cycles == 100
