"""Engine-level fault injection: flit loss, stalls, NIC pauses, recovery."""

from repro.faults import FaultScenario, FaultState, LinkFault, SwitchFault
from repro.simulator import Engine, SimConfig
from repro.simulator.simulation import routing_policy_for
from repro.topology import mesh


def _engine(*faults, top=None, **cfg_kw):
    top = top or mesh(2, 1)
    config = SimConfig(**cfg_kw)
    state = FaultState(top.network, FaultScenario.of(*faults)) if faults else None
    return Engine(top, routing_policy_for(top), config, fault_state=state), config


def _run(engine, max_cycles=20_000):
    deliveries = []
    engine.set_delivery_handler(lambda s, d, q, t: deliveries.append((s, d, t)))
    t = 0
    while engine.busy() and t < max_cycles:
        engine.step(t)
        t += 1
    assert not engine.busy(), f"engine still busy after {max_cycles} cycles"
    return deliveries


class TestInFlightLoss:
    def test_flit_killed_on_dead_channel_triggers_retransmit(self):
        # A long wormhole is mid-link when the fault hits: the arriving
        # flit is lost, the packet dies, and retransmission redelivers
        # once the channel heals.
        engine, config = _engine(
            LinkFault(0, start=4, end=200), deadlock_threshold=100
        )
        engine.submit(source=0, dest=1, size_bytes=400, inject_cycle=0, seq=0)
        deliveries = _run(engine)
        assert engine.fault_packet_kills >= 1
        assert engine.retransmissions >= 1
        assert engine.delivered_packets == 1
        assert deliveries[0][:2] == (0, 1)
        # Killed flits drained without leaking credits or VC ownership.
        assert engine.flits_in_network == 0
        for ch in engine.channels.values():
            assert ch.credits == [ch.buffer_depth] * config.num_vcs
            assert all(owner is None for owner in ch.owner)

    def test_permanent_fault_before_injection_stalls_not_hangs(self):
        # The only link is dead from cycle 0: flits queue up behind it,
        # the deadlock timeout kills the packet, and each retransmission
        # meets the same wall.  The engine must keep cycling (bounded
        # here by observation, not delivery).
        engine, _ = _engine(LinkFault(0), deadlock_threshold=50)
        engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=0, seq=0)
        for t in range(2_000):
            engine.step(t)
        assert engine.delivered_packets == 0
        assert engine.deadlocks_detected >= 1
        assert engine.retransmissions >= 1


class TestStallBeforeDeadChannel:
    def test_timeout_recovery_redelivers_after_transient(self):
        # Flits never enter the dead channel (VC allocation filters it);
        # they stall upstream until the deadlock timeout regresses the
        # packet, and the retransmission lands after recovery.
        engine, _ = _engine(
            LinkFault(0, start=0, end=400), deadlock_threshold=100
        )
        engine.submit(source=0, dest=1, size_bytes=40, inject_cycle=0, seq=0)
        deliveries = _run(engine)
        assert engine.delivered_packets == 1
        assert deliveries[0][2] >= 400  # nothing crossed during the outage


class TestNicPause:
    def test_dead_injection_channel_pauses_the_nic(self):
        # A transient switch fault takes the source's injection channel
        # down; injection simply waits it out — no kill, no deadlock.
        engine, _ = _engine(
            SwitchFault(0, start=0, end=60), deadlock_threshold=4000
        )
        engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=0, seq=0)
        deliveries = _run(engine)
        assert engine.delivered_packets == 1
        assert engine.retransmissions == 0
        assert engine.deadlocks_detected == 0
        assert deliveries[0][2] >= 60


class TestTransitions:
    def test_next_fault_transition_exposed(self):
        engine, _ = _engine(LinkFault(0, start=10, end=20))
        assert engine.next_fault_transition(0) == 10
        assert engine.next_fault_transition(10) == 20
        assert engine.next_fault_transition(20) is None

    def test_faultless_engine_has_no_transitions(self):
        engine, _ = _engine()
        assert engine.next_fault_transition(0) is None
