"""Fault spec validation and activation windows."""

import pytest

from repro.errors import FaultError, TopologyError
from repro.faults import FaultScenario, LinkFault, SwitchFault
from repro.topology import mesh


class TestWindows:
    def test_permanent_link_fault_is_always_active_after_start(self):
        f = LinkFault(3, start=100)
        assert not f.active(99)
        assert f.active(100)
        assert f.active(10**9)
        assert f.permanent

    def test_transient_fault_recovers(self):
        f = LinkFault(3, start=100, end=200)
        assert not f.permanent
        assert not f.active(99)
        assert f.active(100)
        assert f.active(199)
        assert not f.active(200)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            LinkFault(0, start=-1)

    def test_empty_window_rejected(self):
        with pytest.raises(FaultError):
            SwitchFault(0, start=100, end=100)

    def test_inverted_window_rejected(self):
        with pytest.raises(FaultError):
            LinkFault(0, start=200, end=100)


class TestValidation:
    def test_unknown_link_rejected(self):
        top = mesh(2, 2)
        with pytest.raises(TopologyError):
            LinkFault(999).validate(top.network)

    def test_unknown_switch_rejected(self):
        top = mesh(2, 2)
        with pytest.raises(FaultError):
            SwitchFault(999).validate(top.network)

    def test_scenario_validates_all_faults(self):
        top = mesh(2, 2)
        good = FaultScenario.of(LinkFault(0), SwitchFault(1))
        good.validate(top.network)
        bad = FaultScenario.of(LinkFault(0), SwitchFault(999))
        with pytest.raises(FaultError):
            bad.validate(top.network)


class TestScenario:
    def test_empty_scenario_rejected(self):
        with pytest.raises(FaultError):
            FaultScenario(name="empty", faults=())

    def test_default_name_describes_faults(self):
        s = FaultScenario.of(LinkFault(3), SwitchFault(1, start=10, end=20))
        assert s.name == "link3+switch1@10-20"

    def test_permanent_resource_sets(self):
        s = FaultScenario.of(
            LinkFault(3),
            LinkFault(4, start=0, end=100),
            SwitchFault(1),
        )
        assert s.permanent_link_ids == frozenset({3})
        assert s.permanent_switch_ids == frozenset({1})
        assert s.has_transient
