"""Campaign generation: enumeration order, doubles, seeded sampling."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    CampaignSpec,
    LinkFault,
    SwitchFault,
    build_campaign,
    single_link_scenarios,
    single_switch_scenarios,
)
from repro.topology import mesh


NET = mesh(2, 2).network  # 4 switches, 4 links


class TestSpecValidation:
    def test_empty_kinds_rejected(self):
        with pytest.raises(FaultError):
            CampaignSpec(kinds=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            CampaignSpec(kinds=("link", "router"))

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(FaultError):
            CampaignSpec(max_scenarios=0)


class TestEnumeration:
    def test_one_scenario_per_link(self):
        scenarios = single_link_scenarios(NET)
        assert len(scenarios) == len(NET.links)
        assert [s.faults for s in scenarios] == [
            (LinkFault(link.link_id),) for link in NET.links
        ]

    def test_one_scenario_per_switch(self):
        scenarios = single_switch_scenarios(NET)
        assert [s.faults for s in scenarios] == [
            (SwitchFault(s),) for s in NET.switches
        ]

    def test_build_campaign_defaults_to_single_link(self):
        assert build_campaign(NET) == single_link_scenarios(NET)

    def test_both_kinds_links_first(self):
        campaign = build_campaign(NET, CampaignSpec(kinds=("link", "switch")))
        assert len(campaign) == len(NET.links) + len(NET.switches)
        assert all(s.permanent_link_ids for s in campaign[: len(NET.links)])
        assert all(s.permanent_switch_ids for s in campaign[len(NET.links) :])

    def test_window_propagates(self):
        campaign = build_campaign(NET, CampaignSpec(start=10, end=20))
        assert all(f == LinkFault(f.link_id, 10, 20) for s in campaign for f in s.faults)
        assert all(s.has_transient for s in campaign)


class TestDoubles:
    def test_double_adds_every_pair(self):
        n = len(NET.links)
        campaign = build_campaign(NET, CampaignSpec(double=True))
        assert len(campaign) == n + n * (n - 1) // 2
        singles, doubles = campaign[:n], campaign[n:]
        assert all(s.num_faults == 1 for s in singles)
        assert all(s.num_faults == 2 for s in doubles)
        # Unordered pairs, no self-pairs.
        pairs = {
            tuple(sorted(f.link_id for f in s.faults)) for s in doubles
        }
        assert len(pairs) == len(doubles)
        assert all(a != b for a, b in pairs)


class TestSampling:
    def test_cap_keeps_enumeration_order(self):
        full = build_campaign(NET, CampaignSpec(double=True))
        capped = build_campaign(NET, CampaignSpec(double=True, max_scenarios=4))
        assert len(capped) == 4
        positions = [full.index(s) for s in capped]
        assert positions == sorted(positions)

    def test_sampling_is_seed_deterministic(self):
        a = build_campaign(NET, CampaignSpec(double=True, max_scenarios=4, seed=7))
        b = build_campaign(NET, CampaignSpec(double=True, max_scenarios=4, seed=7))
        c = build_campaign(NET, CampaignSpec(double=True, max_scenarios=4, seed=8))
        assert a == b
        assert a != c

    def test_cap_above_size_is_noop(self):
        campaign = build_campaign(NET, CampaignSpec(max_scenarios=1000))
        assert campaign == build_campaign(NET)
