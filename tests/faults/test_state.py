"""FaultState: channel outage windows and transition queries."""

from repro.faults import FaultScenario, FaultState, LinkFault, SwitchFault
from repro.topology import mesh


def _state(*faults):
    top = mesh(2, 2)
    return top, FaultState(top.network, FaultScenario.of(*faults))


class TestLinkFaults:
    def test_both_directions_die(self):
        _, state = _state(LinkFault(0))
        assert state.channel_dead(("link", 0, 0), 0)
        assert state.channel_dead(("link", 0, 1), 0)

    def test_other_channels_unaffected(self):
        _, state = _state(LinkFault(0))
        assert not state.channel_dead(("link", 1, 0), 0)
        assert not state.channel_dead(("inj", 0), 0)

    def test_transient_window(self):
        _, state = _state(LinkFault(0, start=50, end=60))
        assert not state.channel_dead(("link", 0, 0), 49)
        assert state.channel_dead(("link", 0, 0), 50)
        assert state.channel_dead(("link", 0, 0), 59)
        assert not state.channel_dead(("link", 0, 0), 60)


class TestSwitchFaults:
    def test_kills_incident_links_and_endpoints(self):
        top, state = _state(SwitchFault(0))
        # Every link touching switch 0, both directions.
        for link in top.network.links:
            dead = link.u == 0 or link.v == 0
            assert state.channel_dead(("link", link.link_id, 0), 0) == dead
            assert state.channel_dead(("link", link.link_id, 1), 0) == dead
        # The attached processor loses injection and ejection.
        (p,) = top.network.processors_of(0)
        assert state.channel_dead(("inj", p), 0)
        assert state.channel_dead(("ej", p), 0)

    def test_other_processors_keep_their_nics(self):
        top, state = _state(SwitchFault(0))
        (p,) = top.network.processors_of(3)
        assert not state.channel_dead(("inj", p), 0)


class TestTransitions:
    def test_transition_cycles_sorted_unique(self):
        _, state = _state(LinkFault(0, start=50, end=60), LinkFault(1, start=50))
        assert state.transitions == (50, 60)

    def test_next_transition_is_strictly_after(self):
        _, state = _state(LinkFault(0, start=50, end=60))
        assert state.next_transition(0) == 50
        assert state.next_transition(50) == 60
        assert state.next_transition(60) is None

    def test_dead_links_at_cycle(self):
        _, state = _state(LinkFault(0, start=50, end=60), LinkFault(2))
        assert state.dead_links(0) == frozenset({2})
        assert state.dead_links(55) == frozenset({0, 2})

    def test_faulted_channels_cover_all_windows(self):
        _, state = _state(LinkFault(0, start=50, end=60))
        assert ("link", 0, 0) in state.faulted_channels
        assert ("link", 0, 1) in state.faulted_channels
