"""Route repair: minimal rerouting, parallel-link pinning, disconnection."""

from repro.faults import (
    FaultScenario,
    LinkFault,
    SwitchFault,
    all_pairs,
    dead_resources,
    repair_routes,
)
from repro.model import Communication
from repro.topology import (
    Network,
    ShortestPathRouting,
    Topology,
    check_routes_valid,
    mesh,
)


def _line_topology(n_switches=3, parallel=False):
    """Switch chain S0-S1-...; processor i on switch i."""
    net = Network(n_switches)
    switches = [net.add_switch() for _ in range(n_switches)]
    for p, s in enumerate(switches):
        net.attach_processor(p, s)
    for u, v in zip(switches, switches[1:]):
        net.add_link(u, v)
        if parallel:
            net.add_link(u, v)
    return Topology(name="line", network=net, routing=ShortestPathRouting(net))


class TestMeshRepair:
    def test_single_link_fault_keeps_mesh_connected(self):
        top = mesh(2, 2)
        for link in top.network.links:
            result = repair_routes(top, FaultScenario.of(LinkFault(link.link_id)))
            assert result.connected
            assert result.rerouted  # some pair used every mesh link
            for comm in result.rerouted + result.unchanged:
                route = result.routing.route(comm)
                assert link.link_id not in route.link_ids

    def test_untouched_routes_are_preserved(self):
        top = mesh(2, 2)
        link = top.network.links[0]
        result = repair_routes(top, FaultScenario.of(LinkFault(link.link_id)))
        for comm in result.unchanged:
            assert result.routing.route(comm) == top.routing.route(comm)

    def test_repaired_routes_are_valid(self):
        top = mesh(2, 2)
        result = repair_routes(top, FaultScenario.of(LinkFault(0)))
        pairs = result.unchanged + result.rerouted
        check_routes_valid(top.network, result.routing, pairs)


class TestDisconnection:
    def test_cut_bridge_reports_disconnection(self):
        top = _line_topology(3)
        middle = top.network.links_between(0, 1)[0]
        result = repair_routes(top, FaultScenario.of(LinkFault(middle)))
        assert not result.connected
        assert Communication(0, 1) in result.disconnected
        assert Communication(1, 0) in result.disconnected
        # The far side of the chain still talks to itself.
        assert Communication(1, 2) in result.unchanged

    def test_pairs_argument_narrows_the_domain(self):
        top = _line_topology(3)
        middle = top.network.links_between(0, 1)[0]
        result = repair_routes(
            top,
            FaultScenario.of(LinkFault(middle)),
            pairs=[Communication(1, 2)],
        )
        assert result.connected
        assert result.unchanged == (Communication(1, 2),)


class TestParallelLinks:
    def test_repair_pins_the_surviving_parallel_link(self):
        top = _line_topology(2, parallel=True)
        dead, alive = top.network.links_between(0, 1)
        result = repair_routes(top, FaultScenario.of(LinkFault(dead)))
        assert result.connected
        for comm in (Communication(0, 1), Communication(1, 0)):
            assert result.routing.route(comm).link_ids == (alive,)


class TestSwitchFaultRepair:
    def test_dead_switch_strands_its_processor(self):
        top = mesh(2, 2)
        result = repair_routes(top, FaultScenario.of(SwitchFault(0)))
        (p,) = top.network.processors_of(0)
        stranded = {c for c in all_pairs(4) if p in (c.source, c.dest)}
        assert set(result.disconnected) == stranded
        # Survivors route around the dead switch and its links.
        for comm in result.unchanged + result.rerouted:
            route = result.routing.route(comm)
            assert 0 not in route.switch_path

    def test_transient_faults_skipped_by_default(self):
        top = mesh(2, 2)
        scenario = FaultScenario.of(LinkFault(0, start=10, end=20))
        links, switches = dead_resources(scenario)
        assert not links and not switches
        result = repair_routes(top, scenario)
        assert not result.rerouted and not result.disconnected
        links, _ = dead_resources(scenario, include_transient=True)
        assert links == frozenset({0})
