"""Spec canonicalization, job keys, and the bundle determinism contract."""

import pytest

from repro.errors import ServiceError
from repro.eval.parallel import ResultCache
from repro.eval.serialize import canonical_json
from repro.service import JOB_KINDS, SERVICE_SCHEMA, canonicalize_spec, execute_spec, job_key


class TestCanonicalize:
    def test_synthesize_fills_every_default(self):
        spec = canonicalize_spec({"kind": "synthesize", "benchmark": "cg"})
        assert spec == {
            "kind": "synthesize",
            "benchmark": "cg",
            "nodes": 16,
            "seed": 0,
            "restarts": 8,
            "max_degree": 5,
            "portfolio": None,
            "curves": None,
        }

    def test_shorthand_and_explicit_defaults_share_a_key(self):
        short = canonicalize_spec({"kind": "synthesize", "benchmark": "cg"})
        long = canonicalize_spec(
            {
                "kind": "synthesize", "benchmark": "cg", "nodes": 16,
                "seed": 0, "restarts": 8, "max_degree": 5,
                "portfolio": None, "curves": None,
            }
        )
        assert short == long
        assert job_key(short) == job_key(long)

    def test_simulate_topology_order_is_canonicalized(self):
        a = canonicalize_spec(
            {"kind": "simulate", "benchmark": "cg", "topologies": ["mesh", "generated"]}
        )
        b = canonicalize_spec(
            {"kind": "simulate", "benchmark": "cg", "topologies": ["generated", "mesh"]}
        )
        assert a["topologies"] == ["generated", "mesh"]
        assert job_key(a) == job_key(b)

    def test_simulate_duplicate_topologies_rejected(self):
        with pytest.raises(ServiceError, match="duplicates"):
            canonicalize_spec(
                {"kind": "simulate", "benchmark": "cg", "topologies": ["mesh", "mesh"]}
            )

    def test_sweep_defaults_and_pattern_canonicalization(self):
        spec = canonicalize_spec({"kind": "sweep", "pattern": "hotspot:1:0.8"})
        assert spec["topology"] == "mesh"
        assert spec["pattern"] == "hotspot:1:0.8"
        assert spec["points"] == 6 and spec["refine"] == 4
        assert spec["criterion"] == "mean-knee"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="'kind'"):
            canonicalize_spec({"kind": "destroy", "benchmark": "cg"})

    def test_unknown_field_rejected_not_defaulted(self):
        with pytest.raises(ServiceError, match="unknown field"):
            canonicalize_spec(
                {"kind": "synthesize", "benchmark": "cg", "restart": 4}
            )

    def test_non_object_spec_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            canonicalize_spec(["synthesize"])

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ServiceError, match="'seed'"):
            canonicalize_spec(
                {"kind": "synthesize", "benchmark": "cg", "seed": True}
            )

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ServiceError, match="'nodes'"):
            canonicalize_spec({"kind": "synthesize", "benchmark": "cg", "nodes": 1})
        with pytest.raises(ServiceError, match="'restarts'"):
            canonicalize_spec(
                {"kind": "synthesize", "benchmark": "cg", "restarts": 0}
            )

    def test_objective_requires_portfolio(self):
        with pytest.raises(ServiceError, match="'objective'"):
            canonicalize_spec(
                {"kind": "synthesize", "benchmark": "cg", "objective": "links"}
            )

    def test_portfolio_spec_carries_objective(self):
        spec = canonicalize_spec(
            {"kind": "synthesize", "benchmark": "cg", "portfolio": 3}
        )
        assert spec["portfolio"] == 3
        assert spec["objective"] == "links"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ServiceError, match="'benchmark'"):
            canonicalize_spec({"kind": "synthesize", "benchmark": "linpack"})

    def test_curves_request_canonicalized(self):
        spec = canonicalize_spec(
            {"kind": "synthesize", "benchmark": "cg",
             "curves": {"patterns": ["uniform"]}}
        )
        assert spec["curves"] == {
            "patterns": ["uniform"], "points": 4, "refine": 2,
            "min_rate": 0.05, "max_rate": 1.0,
        }


class TestJobKey:
    def test_key_is_sha256_hex(self):
        key = job_key(canonicalize_spec({"kind": "synthesize", "benchmark": "cg"}))
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_different_specs_different_keys(self):
        base = {"kind": "synthesize", "benchmark": "cg", "nodes": 8}
        keys = {
            job_key(canonicalize_spec(dict(base, seed=s))) for s in range(4)
        }
        assert len(keys) == 4

    def test_kinds_never_collide(self):
        keys = {
            job_key(canonicalize_spec({"kind": k, "benchmark": "cg"}))
            for k in JOB_KINDS
        }
        assert len(keys) == len(JOB_KINDS)


class TestExecute:
    SPEC = {"kind": "synthesize", "benchmark": "cg", "nodes": 8, "restarts": 2}

    def test_synthesize_bundle_shape(self, tmp_path):
        spec = canonicalize_spec(self.SPEC)
        bundle = execute_spec(spec, cache=ResultCache(str(tmp_path / "c")))
        assert bundle["schema"] == SERVICE_SCHEMA
        assert bundle["kind"] == "synthesize"
        assert bundle["spec"] == spec
        assert bundle["design"]["num_processors"] == 8
        cert = bundle["network_certificate"]
        assert cert["pattern_name"] == "cg-8"
        assert all(f["status"] == "pass" for f in cert["findings"])
        assert bundle["portfolio"] is None
        assert bundle["curves"] == []

    def test_bundle_byte_identical_cold_vs_warm(self, tmp_path):
        spec = canonicalize_spec(self.SPEC)
        cache = ResultCache(str(tmp_path / "c"))
        cold = canonical_json(execute_spec(spec, cache=cache))
        warm = canonical_json(execute_spec(spec, cache=cache))
        uncached = canonical_json(execute_spec(spec, cache=None))
        assert cold == warm == uncached

    def test_infeasible_synthesis_is_a_service_error(self):
        spec = canonicalize_spec(dict(self.SPEC, max_degree=2))
        with pytest.raises(ServiceError, match="infeasible"):
            execute_spec(spec)

    def test_simulate_bundle_has_one_result_per_topology(self, tmp_path):
        spec = canonicalize_spec(
            {"kind": "simulate", "benchmark": "cg", "nodes": 8,
             "topologies": ["mesh"]}
        )
        bundle = execute_spec(spec, cache=ResultCache(str(tmp_path / "c")))
        assert set(bundle["results"]) == {"mesh"}
        assert bundle["results"]["mesh"]["delivered_packets"] > 0
