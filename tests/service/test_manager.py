"""Single-flight deduplication and job lifecycle, with a controllable
executor.

These tests monkeypatch ``repro.service.manager.execute_spec`` so dedupe
timing is deterministic (a job can be held mid-flight on an event) and
fast; the real execution path is covered by ``test_spec.py`` and the
end-to-end acceptance test in ``test_server.py``.
"""

import threading
import time

import pytest

import repro.service.manager as manager_mod
from repro.errors import ReproError, ServiceError
from repro.eval.parallel import ResultCache
from repro.service import (
    DEDUPE_BUNDLE_CACHE,
    DEDUPE_COMPLETED,
    DEDUPE_INFLIGHT,
    DEDUPE_MISS,
    DONE,
    FAILED,
    JobManager,
    canonicalize_spec,
    job_key,
)

SPEC = {"kind": "simulate", "benchmark": "cg", "nodes": 8, "topologies": ["mesh"]}


def _wait_done(record, timeout=10.0):
    deadline = time.monotonic() + timeout
    while record.state not in (DONE, FAILED):
        assert time.monotonic() < deadline, f"job stuck in {record.state}"
        time.sleep(0.005)


def _fake_bundle(spec):
    return {"schema": 1, "kind": spec["kind"], "spec": dict(spec), "results": {}}


@pytest.fixture
def instant_executor(monkeypatch):
    def fake(spec, cache=None, jobs=None, progress=None, obs=None):
        return _fake_bundle(spec)

    monkeypatch.setattr(manager_mod, "execute_spec", fake)
    return fake


class TestSingleFlight:
    def test_inflight_then_completed_dedupe(self, monkeypatch):
        started, release = threading.Event(), threading.Event()

        def blocking(spec, cache=None, jobs=None, progress=None, obs=None):
            started.set()
            assert release.wait(10)
            return _fake_bundle(spec)

        monkeypatch.setattr(manager_mod, "execute_spec", blocking)
        manager = JobManager(workers=2)
        try:
            first, d1 = manager.submit(SPEC)
            assert d1 == DEDUPE_MISS
            assert started.wait(10)
            second, d2 = manager.submit(dict(SPEC))
            assert second is first
            assert d2 == DEDUPE_INFLIGHT
            release.set()
            _wait_done(first)
            third, d3 = manager.submit(SPEC)
            assert third is first
            assert d3 == DEDUPE_COMPLETED
            assert first.submissions == 3
            counters = manager.stats()["jobs"]
            assert counters["submitted"] == 3
            assert counters["scheduled"] == 1
            assert counters["deduped_inflight"] == 1
            assert counters["deduped_completed"] == 1
        finally:
            release.set()
            manager.shutdown()

    def test_bundle_cache_survives_manager_restart(
        self, tmp_path, instant_executor
    ):
        cache = ResultCache(str(tmp_path / "c"))
        first_mgr = JobManager(cache=cache, workers=1)
        record, _ = first_mgr.submit(SPEC)
        _wait_done(record)
        first_mgr.shutdown()

        second_mgr = JobManager(cache=cache, workers=1)
        try:
            rehydrated, dedupe = second_mgr.submit(SPEC)
            assert dedupe == DEDUPE_BUNDLE_CACHE
            assert rehydrated.state == DONE
            assert rehydrated.bundle_bytes == record.bundle_bytes
            assert second_mgr.stats()["jobs"]["bundle_hits"] == 1
        finally:
            second_mgr.shutdown()

    def test_job_id_is_the_content_address(self, instant_executor):
        manager = JobManager(workers=1)
        try:
            record, _ = manager.submit(SPEC)
            assert record.job_id == job_key(canonicalize_spec(SPEC))
            assert manager.get(record.job_id) is record
            assert manager.get("0" * 64) is None
        finally:
            manager.shutdown()


class TestLifecycle:
    def test_failed_job_records_error(self, monkeypatch):
        def exploding(spec, cache=None, jobs=None, progress=None, obs=None):
            raise ReproError("boom")

        monkeypatch.setattr(manager_mod, "execute_spec", exploding)
        manager = JobManager(workers=1)
        try:
            record, _ = manager.submit(SPEC)
            _wait_done(record)
            assert record.state == FAILED
            assert "boom" in record.error
            assert record.bundle_bytes is None
            stats = manager.stats()
            assert stats["jobs"]["failed"] == 1
            assert stats["jobs"]["states"][FAILED] == 1
        finally:
            manager.shutdown()

    def test_state_events_are_streamed_in_order(self, instant_executor):
        manager = JobManager(workers=1)
        try:
            record, _ = manager.submit(SPEC)
            _wait_done(record)
            events = record.events()
            states = [e["state"] for e in events if e["type"] == "state"]
            assert states == ["running", "done"]
            assert [e["seq"] for e in events] == list(range(len(events)))
        finally:
            manager.shutdown()

    def test_submit_after_shutdown_is_rejected(self, instant_executor):
        manager = JobManager(workers=1)
        manager.shutdown()
        with pytest.raises(ServiceError, match="shutting down"):
            manager.submit(SPEC)

    def test_malformed_spec_rejected_before_scheduling(self):
        manager = JobManager(workers=1)
        try:
            with pytest.raises(ServiceError, match="'kind'"):
                manager.submit({"kind": "nope"})
            assert manager.stats()["jobs"].get("scheduled", 0) == 0
        finally:
            manager.shutdown()

    def test_workers_must_be_positive(self):
        with pytest.raises(ServiceError, match="workers"):
            JobManager(workers=0)

    def test_stats_shape(self, instant_executor):
        manager = JobManager(workers=2)
        try:
            record, _ = manager.submit(SPEC)
            _wait_done(record)
            stats = manager.stats()
            assert set(stats) >= {"jobs", "cells", "queue_depth", "workers"}
            assert stats["workers"]["max"] == 2
            assert 0.0 <= stats["workers"]["utilization"] <= 1.0
            assert stats["cells"] == {
                "lookups": 0, "hits": 0, "misses": 0, "hit_ratio": None,
            }
        finally:
            manager.shutdown()


class TestRealExecution:
    def test_cell_counters_fold_into_service_totals(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        manager = JobManager(cache=cache, workers=1)
        try:
            record, _ = manager.submit(SPEC)
            _wait_done(record)
            assert record.state == DONE
            cells = manager.stats()["cells"]
            assert cells["lookups"] == 1
            assert cells["misses"] == 1
            assert cells["hit_ratio"] == 0.0
            cell_events = [
                e for e in record.events() if e["type"] == "cell"
            ]
            assert len(cell_events) == 1
            assert cell_events[0]["label"].startswith("perf:cg-8:")
            assert cell_events[0]["cache_hit"] is False
        finally:
            manager.shutdown()
