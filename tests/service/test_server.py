"""The HTTP surface: routing, error statuses, and the end-to-end
single-flight acceptance contract over real sockets."""

import threading
import time

import pytest

import repro.service.manager as manager_mod
from repro.errors import ReproError, ServiceError
from repro.eval.parallel import ResultCache
from repro.eval.serialize import canonical_json
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    canonicalize_spec,
    execute_spec,
)
from repro.service.http import split_job_path

SPEC = {"kind": "simulate", "benchmark": "cg", "nodes": 8, "topologies": ["mesh"]}


class TestHttpHelpers:
    def test_split_job_path(self):
        assert split_job_path("/jobs/abc") == ("abc", None)
        assert split_job_path("/jobs/abc/result") == ("abc", "result")
        assert split_job_path("/jobs/") is None
        assert split_job_path("/stats") is None


@pytest.fixture
def instant_service(monkeypatch):
    """A running service whose executor returns instantly."""

    def fake(spec, cache=None, jobs=None, progress=None, obs=None):
        return {"schema": 1, "kind": spec["kind"], "spec": dict(spec), "results": {}}

    monkeypatch.setattr(manager_mod, "execute_spec", fake)
    with ServiceThread(ServiceConfig(port=0, cache_dir=None)) as svc:
        yield ServiceClient(svc.base_url)


class TestRoutes:
    def test_healthz(self, instant_service):
        assert instant_service.healthz() == {"status": "ok"}

    def test_unknown_route_is_404(self, instant_service):
        with pytest.raises(ServiceError, match="404"):
            instant_service._json("GET", "/nope")

    def test_submit_then_status_then_result(self, instant_service):
        receipt = instant_service.submit(SPEC)
        assert receipt["dedupe"] == "miss"
        status = instant_service.wait(receipt["job_id"], timeout=10)
        assert status["state"] == "done"
        assert status["spec"] == canonicalize_spec(SPEC)
        bundle = instant_service.result(receipt["job_id"])
        assert bundle["kind"] == "simulate"

    def test_malformed_spec_is_400(self, instant_service):
        with pytest.raises(ServiceError, match="400"):
            instant_service.submit({"kind": "simulate", "benchmark": "nope"})

    def test_malformed_job_id_is_400(self, instant_service):
        with pytest.raises(ServiceError, match="400"):
            instant_service.status("not-hex")

    def test_unknown_job_is_404(self, instant_service):
        with pytest.raises(ServiceError, match="404"):
            instant_service.status("0" * 64)

    def test_unknown_job_resource_is_404(self, instant_service):
        receipt = instant_service.submit(SPEC)
        with pytest.raises(ServiceError, match="404"):
            instant_service._json("GET", f"/jobs/{receipt['job_id']}/bogus")

    def test_post_on_job_path_is_405(self, instant_service):
        receipt = instant_service.submit(SPEC)
        with pytest.raises(ServiceError, match="405"):
            instant_service._json("POST", f"/jobs/{receipt['job_id']}", {})

    def test_invalid_json_body_is_400(self, instant_service):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{instant_service.base_url}/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_stats_document(self, instant_service):
        receipt = instant_service.submit(SPEC)
        instant_service.wait(receipt["job_id"], timeout=10)
        stats = instant_service.stats()
        assert stats["jobs"]["submitted"] >= 1
        assert stats["workers"]["max"] == 2
        assert "cache" not in stats  # cache_dir=None run


class TestResultStatuses:
    def test_result_conflict_while_running(self, monkeypatch):
        release = threading.Event()

        def blocking(spec, cache=None, jobs=None, progress=None, obs=None):
            assert release.wait(10)
            return {"schema": 1, "kind": spec["kind"], "spec": dict(spec)}

        monkeypatch.setattr(manager_mod, "execute_spec", blocking)
        with ServiceThread(ServiceConfig(port=0, cache_dir=None)) as svc:
            client = ServiceClient(svc.base_url)
            receipt = client.submit(SPEC)
            try:
                with pytest.raises(ServiceError, match="409"):
                    client.result_bytes(receipt["job_id"])
            finally:
                release.set()
            client.wait(receipt["job_id"], timeout=10)

    def test_failed_job_result_is_500(self, monkeypatch):
        def exploding(spec, cache=None, jobs=None, progress=None, obs=None):
            raise ReproError("no such design")

        monkeypatch.setattr(manager_mod, "execute_spec", exploding)
        with ServiceThread(ServiceConfig(port=0, cache_dir=None)) as svc:
            client = ServiceClient(svc.base_url)
            receipt = client.submit(SPEC)
            status = client.wait(receipt["job_id"], timeout=10)
            assert status["state"] == "failed"
            with pytest.raises(ServiceError, match="no such design"):
                client.result_bytes(receipt["job_id"])


class TestAcceptance:
    """The PR's headline contract, over real sockets and real synthesis:
    N concurrent identical submissions cost exactly one synthesis and
    every requester reads byte-identical bundles, equal to direct
    (no-HTTP) execution."""

    SPEC = {
        "kind": "synthesize", "benchmark": "cg", "nodes": 8,
        "seed": 0, "restarts": 2,
    }
    CLIENTS = 8

    def test_concurrent_submissions_single_flight(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        config = ServiceConfig(port=0, cache_dir=str(tmp_path / "cache"))
        receipts = [None] * self.CLIENTS
        bundles = [None] * self.CLIENTS

        with ServiceThread(config) as svc:
            client = ServiceClient(svc.base_url)

            def submit_and_fetch(i):
                receipts[i] = client.submit(self.SPEC)
                status = client.wait(receipts[i]["job_id"], timeout=120)
                assert status["state"] == "done"
                bundles[i] = client.result_bytes(receipts[i]["job_id"])

            threads = [
                threading.Thread(target=submit_and_fetch, args=(i,))
                for i in range(self.CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)

            # Single flight: one content address, one scheduled
            # execution, one cache miss across all eight submissions.
            assert len({r["job_id"] for r in receipts}) == 1
            stats = client.stats()
            assert stats["jobs"]["submitted"] == self.CLIENTS
            assert stats["jobs"]["scheduled"] == 1
            assert stats["jobs"]["executed"] == 1
            assert stats["cells"]["lookups"] == 1
            assert stats["cells"]["misses"] == 1

        # Byte identity: all requesters, and direct execution.
        assert len(set(bundles)) == 1
        direct = canonical_json(
            execute_spec(canonicalize_spec(self.SPEC), cache=cache)
        ).encode("utf-8")
        assert bundles[0] == direct

    def test_direct_execution_matches_generate_network(self, tmp_path):
        """The served design is exactly what the library API produces."""
        from repro.eval.serialize import design_to_dict
        from repro.synthesis import DesignConstraints, generate_network
        from repro.workloads import benchmark

        spec = canonicalize_spec(self.SPEC)
        bundle = execute_spec(spec, cache=ResultCache(str(tmp_path / "c")))
        design = generate_network(
            benchmark("cg", 8).pattern,
            constraints=DesignConstraints(max_degree=5),
            seed=0,
            restarts=2,
        )
        assert canonical_json(bundle["design"]) == canonical_json(
            design_to_dict(design)
        )


class TestServiceThreadLifecycle:
    def test_stop_is_idempotent_and_clean(self, monkeypatch):
        def fake(spec, cache=None, jobs=None, progress=None, obs=None):
            return {"schema": 1, "kind": spec["kind"], "spec": dict(spec)}

        monkeypatch.setattr(manager_mod, "execute_spec", fake)
        svc = ServiceThread(ServiceConfig(port=0, cache_dir=None)).start()
        client = ServiceClient(svc.base_url)
        assert client.healthz()["status"] == "ok"
        client.shutdown()
        deadline = time.monotonic() + 10
        while svc._thread.is_alive() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not svc._thread.is_alive()
        svc.stop()  # no-op after the server already exited
