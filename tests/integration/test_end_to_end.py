"""End-to-end integration: program -> trace -> pattern -> synthesis ->
floorplan -> simulation, with cross-layer invariants."""

import pytest

from repro.floorplan import place
from repro.model import CliqueAnalysis, check_contention_free
from repro.simulator import SimConfig, simulate
from repro.synthesis import DesignConstraints, generate_network
from repro.topology import check_routes_valid, crossbar, mesh_for
from repro.workloads import (
    PhaseProgramBuilder,
    bt,
    cg,
    extract_pattern,
    trace_program,
)


@pytest.fixture(scope="module")
def cg8_design():
    bench = cg(8)
    return bench, generate_network(bench.pattern, seed=0, restarts=4)


class TestFullPipeline:
    def test_pattern_extraction_matches_program_structure(self):
        bench = cg(8)
        trace = trace_program(bench.program)
        pattern = extract_pattern(trace)
        assert pattern.communications == bench.pattern.communications

    def test_generated_network_is_contention_free(self, cg8_design):
        bench, design = cg8_design
        cert = check_contention_free(bench.pattern, design.topology.routing)
        assert cert.contention_free

    def test_generated_routes_are_walkable(self, cg8_design):
        bench, design = cg8_design
        check_routes_valid(
            design.network, design.topology.routing, bench.pattern.communications
        )

    def test_floorplan_then_simulate(self, cg8_design):
        bench, design = cg8_design
        plan = place(design.network, seed=0)
        result = simulate(
            bench.program,
            design.topology,
            SimConfig(max_cycles=5_000_000),
            link_delays=plan.link_delays(),
        )
        assert result.delivered_packets == bench.program.total_messages
        assert result.deadlocks_detected == 0

    def test_generated_tracks_crossbar(self, cg8_design):
        """The central performance claim at small scale: the generated
        network performs within a few percent of the ideal crossbar."""
        bench, design = cg8_design
        cfg = SimConfig(max_cycles=5_000_000)
        plan = place(design.network, seed=0)
        gen = simulate(bench.program, design.topology, cfg, link_delays=plan.link_delays())
        xbar = simulate(bench.program, crossbar(8), cfg)
        assert gen.execution_cycles <= 1.10 * xbar.execution_cycles

    def test_contention_free_pattern_needs_no_retransmissions(self, cg8_design):
        bench, design = cg8_design
        result = simulate(bench.program, design.topology, SimConfig(max_cycles=5_000_000))
        assert result.retransmissions == 0


class TestBT9Pipeline:
    def test_bt9_full_stack(self):
        bench = bt(9, iterations=1)
        design = generate_network(bench.pattern, seed=0, restarts=4)
        assert design.certificate.contention_free
        assert design.network.max_degree() <= 5
        result = simulate(bench.program, design.topology, SimConfig(max_cycles=5_000_000))
        assert result.delivered_packets == bench.program.total_messages


class TestConstraintPropagation:
    def test_tighter_constraint_reaches_final_network(self):
        builder = PhaseProgramBuilder(6, "tiny", seed=0)
        builder.phase([(0, 1, 64), (2, 3, 64), (4, 5, 64)])
        builder.phase([(1, 2, 64), (3, 4, 64), (5, 0, 64)])
        pattern = extract_pattern(builder.build())
        design = generate_network(
            pattern, constraints=DesignConstraints(max_degree=3), seed=0
        )
        assert design.network.max_degree() <= 3

    def test_mesh_baseline_runs_same_program(self):
        bench = cg(8, iterations=1)
        result = simulate(bench.program, mesh_for(8), SimConfig(max_cycles=5_000_000))
        assert result.delivered_packets == bench.program.total_messages
