"""Integration: the robustness-study script's core loop."""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parent.parent.parent / "scripts" / "robustness_study.py"


@pytest.fixture(scope="module")
def study_module():
    spec = importlib.util.spec_from_file_location("robustness_study", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules["robustness_study"] = module
    spec.loader.exec_module(module)
    yield module
    del sys.modules["robustness_study"]


class TestRunStudy:
    def test_baseline_grid_produces_degradation_table(self, study_module):
        from repro.sweeps import degradation_table

        result = study_module.run_study(
            "cg",
            8,
            patterns=("uniform", "tornado"),
            topologies=("mesh", "torus"),
            smoke=True,
        )
        assert result.topology_labels == ("mesh", "torus")
        assert result.patterns == ("uniform", "tornado")
        table = degradation_table(result, baseline="mesh")
        assert "tornado" in table
        assert "(1.00)" in table  # mesh vs itself

    def test_study_patterns_cover_acceptance_floor(self, study_module):
        # The smoke gate promises >= 6 patterns x >= 3 topologies.
        assert len(study_module.STUDY_PATTERNS) >= 6
        assert len(study_module.STUDY_TOPOLOGIES) >= 3

    @pytest.mark.slow
    def test_full_smoke_topologies_include_generated_variants(self, study_module):
        result = study_module.run_study("cg", 8, smoke=True, jobs=0)
        assert set(result.topology_labels) == {
            "generated", "generated-spare", "mesh", "torus",
        }
        assert len(result.patterns) >= 6
