"""Dynamic cross-validation: certificates vs the flit-level engine."""

import pytest

from repro.eval.runner import prepare
from repro.model import CommunicationPattern, Message
from repro.simulator.config import SimConfig
from repro.topology.builders import mesh
from repro.verify import certify, cross_validate, injection_scale, replay_pattern
from repro.workloads.nas import BENCHMARK_NAMES, PAPER_LARGE_SIZE, PAPER_SMALL_SIZES


def _pattern(messages, name="replay-pattern"):
    return CommunicationPattern.from_messages(messages, name=name)


class TestContentionCounter:
    """The engine's contention_stalls counter feeds cross-validation:
    it must fire on inter-packet contention and stay zero without it."""

    def test_lone_packet_records_no_contention(self):
        report = replay_pattern(mesh(3, 1), _pattern([Message(0, 2, 0.0, 1.0)]))
        assert report.delivered_packets == 1
        assert report.contention_stalls == 0
        assert report.deadlocks_detected == 0

    def test_colliding_packets_record_contention(self):
        # 0->2 and 1->2 both traverse the S1->S2 link at the same time.
        report = replay_pattern(
            mesh(3, 1),
            _pattern([Message(0, 2, 0.0, 1.0), Message(1, 2, 0.0, 1.0)]),
        )
        assert report.delivered_packets == 2
        assert report.contention_stalls > 0

    def test_disjoint_schedule_removes_contention(self):
        # Same colliding pair, but the schedule separates them; the
        # injection scale must spread them far enough apart to drain.
        report = replay_pattern(
            mesh(3, 1),
            _pattern([Message(0, 2, 0.0, 1.0), Message(1, 2, 2.0, 3.0)]),
        )
        assert report.delivered_packets == 2
        assert report.contention_stalls == 0


class TestInjectionScale:
    def test_all_overlapping_needs_no_scaling(self):
        pattern = _pattern([Message(0, 1, 0.0, 1.0), Message(1, 2, 0.5, 1.5)])
        assert injection_scale(pattern, SimConfig(), 4, 1) == 1

    def test_disjoint_messages_scale_past_service_bound(self):
        pattern = _pattern([Message(0, 1, 0.0, 1.0), Message(1, 2, 2.0, 3.0)])
        config = SimConfig()
        scale = injection_scale(pattern, config, 4, 1)
        flits = config.flits_for(1024)
        assert scale * 2.0 >= (flits + 4 + 4) * (2 + 4)


class TestCrossValidation:
    def test_cg8_generated_certificate_validates(self):
        setup = prepare("cg", 8)
        top = setup.topology("generated")
        cert = certify(top, setup.benchmark.pattern)
        assert cert.contention_free and cert.deadlock_free
        report, mismatches = cross_validate(
            cert, top, setup.benchmark.pattern,
            link_delays=setup.link_delays("generated"),
        )
        assert mismatches == []
        assert report.delivered_packets == report.messages
        assert report.contention_stalls == 0
        assert report.deadlocks_detected == 0

    def test_mesh_contention_is_not_a_mismatch(self):
        # The mesh certificate already reports contention, so observed
        # stalls must not be flagged; deadlock recovery still would be.
        setup = prepare("cg", 8)
        top = setup.topology("mesh")
        cert = certify(top, setup.benchmark.pattern)
        assert not cert.contention_free
        report, mismatches = cross_validate(cert, top, setup.benchmark.pattern)
        assert report.contention_stalls > 0
        assert mismatches == []


@pytest.mark.slow
class TestCorpusCrossValidation:
    """Acceptance sweep: every NAS benchmark at both paper scales."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    @pytest.mark.parametrize("size", ["small", "large"])
    def test_certificates_match_engine(self, name, size):
        n = PAPER_SMALL_SIZES[name] if size == "small" else PAPER_LARGE_SIZE
        setup = prepare(name, n)
        for kind in ("generated", "mesh", "torus"):
            top = setup.topology(kind)
            cert = certify(top, setup.benchmark.pattern)
            assert cert.deadlock_free, f"{name}-{n}-{kind} not deadlock-free"
            if kind == "generated":
                assert cert.contention_free, f"{name}-{n} generated contends"
            _, mismatches = cross_validate(
                cert, top, setup.benchmark.pattern,
                link_delays=setup.link_delays(kind),
            )
            assert mismatches == [], f"{name}-{n}-{kind}: {mismatches}"
