"""Tests for the static certification subsystem (repro.verify)."""
