"""Tests for end-to-end certification and certificate serialization."""

import json

import pytest

from repro.errors import PatternError
from repro.eval.runner import prepare
from repro.model import Communication, CommunicationPattern, Message
from repro.synthesis import DesignConstraints
from repro.topology import Route, TableRouting, make_route
from repro.topology.builders import ring
from repro.verify import (
    CERTIFICATE_SCHEMA,
    FINDING_NAMES,
    DatelineClasses,
    certificate_from_dict,
    certify,
    classifier_for,
    schedule_slices,
)


def _cg8():
    return prepare("cg", 8)


def _all_overlapping(messages):
    return CommunicationPattern.from_messages(messages, name="sim-pattern")


class TestCertifyCorpusEntry:
    def test_generated_cg8_fully_certified(self):
        setup = _cg8()
        cert = certify(
            setup.topology("generated"),
            setup.benchmark.pattern,
            max_degree=DesignConstraints().max_degree,
        )
        assert tuple(f.name for f in cert.findings) == FINDING_NAMES
        assert cert.ok(require_contention_free=True)
        assert cert.contention_free
        assert cert.deadlock_free
        assert cert.deadlock_method == "acyclic"

    def test_mesh_cg8_deadlock_free_but_contended(self):
        setup = _cg8()
        cert = certify(setup.topology("mesh"), setup.benchmark.pattern)
        assert cert.deadlock_free
        assert not cert.contention_free
        contention = cert.finding("contention")
        assert contention.status == "fail"
        # The witness names concrete overlapping pairs and channels.
        violation = contention.witness["violations"][0]
        assert violation["shared_channels"]
        assert cert.ok(require_contention_free=False)
        assert not cert.ok(require_contention_free=True)

    def test_torus_cg8_uses_dateline_classes(self):
        setup = _cg8()
        top = setup.topology("torus")
        assert isinstance(classifier_for(top), DatelineClasses)
        cert = certify(top, setup.benchmark.pattern)
        assert cert.deadlock_free
        assert cert.finding("deadlock").details["vc_classes"] == 2

    def test_torus_without_datelines_is_cyclic(self):
        # The same torus certified with a single VC class must fail:
        # the wraparound rings form dependency cycles.  This is the
        # negative control for the dateline discipline.
        setup = _cg8()
        top = setup.topology("torus")
        from repro.verify import SingleClass

        cert = certify(top, setup.benchmark.pattern, classifier=SingleClass())
        deadlock = cert.finding("deadlock")
        assert deadlock.status == "fail"
        assert deadlock.witness["length"] >= 2


class TestCyclicFixture:
    """A deliberately deadlock-prone routing must fail with a witness."""

    def _cyclic_ring(self):
        top = ring(4)
        sw = [top.network.switch_of(p) for p in range(4)]
        comms = [Communication(p, (p + 2) % 4) for p in range(4)]
        routes = [
            make_route(
                top.network,
                c,
                [sw[c.source], sw[(c.source + 1) % 4], sw[c.dest]],
            )
            for c in comms
        ]
        pattern = _all_overlapping(
            [Message(c.source, c.dest, 0.0, 1.0) for c in comms]
        )
        return top, TableRouting(routes), pattern

    def test_clockwise_ring_fails_with_cycle_witness(self, capsys):
        top, routing, pattern = self._cyclic_ring()
        cert = certify(top, pattern, routing=routing)
        deadlock = cert.finding("deadlock")
        assert deadlock.status == "fail"
        assert not cert.deadlock_free
        assert cert.deadlock_method == "none"
        # All four two-hop routes overlap at t=0; the witness names the
        # slice and the live communications trapped in the cycle.
        assert deadlock.witness["slice_time"] == 0.0
        assert deadlock.witness["length"] == 4
        assert len(deadlock.witness["live_communications"]) == 4
        print(cert.render())
        out = capsys.readouterr().out
        assert "dependency cycle" in out
        assert "link:" in out

    def test_schedule_separation_rescues_cyclic_routing(self):
        # The same routing is safe when the schedule never lets the
        # four messages coexist: slicing certifies it with the global
        # cycle recorded as informational witness.
        top, routing, _ = self._cyclic_ring()
        comms = [Communication(p, (p + 2) % 4) for p in range(4)]
        pattern = _all_overlapping(
            [
                Message(c.source, c.dest, float(i), float(i) + 0.5)
                for i, c in enumerate(comms)
            ]
        )
        cert = certify(top, pattern, routing=routing)
        assert cert.deadlock_free
        assert cert.deadlock_method == "schedule"
        assert cert.finding("deadlock").witness["unscheduled_cycle"]["length"] == 4


class TestScheduleSlices:
    def test_slices_are_maximal_live_sets(self):
        pattern = _all_overlapping(
            [
                Message(0, 1, 0.0, 1.0),
                Message(1, 2, 0.5, 1.5),
                Message(2, 3, 2.0, 3.0),
            ]
        )
        slices = schedule_slices(pattern)
        assert [sorted(str(c) for c in live) for _, live in slices] == [
            ["(0,1)"],
            ["(0,1)", "(1,2)"],
            ["(2,3)"],
        ]

    def test_duplicate_live_sets_are_dropped(self):
        pattern = _all_overlapping(
            [Message(0, 1, 0.0, 5.0), Message(0, 1, 1.0, 5.0)]
        )
        assert len(schedule_slices(pattern)) == 1


class TestCertificateSerialization:
    def test_canonical_json_round_trip(self):
        setup = _cg8()
        cert = certify(setup.topology("generated"), setup.benchmark.pattern)
        payload = json.loads(cert.to_json())
        assert payload["schema_version"] == CERTIFICATE_SCHEMA
        restored = certificate_from_dict(payload)
        assert restored == cert
        assert restored.to_json() == cert.to_json()

    def test_certificates_byte_stable_across_builds(self):
        setup = _cg8()
        blobs = {
            certify(setup.topology(kind), setup.benchmark.pattern).to_json()
            for _ in range(2)
            for kind in ("generated", "mesh", "torus")
        }
        # Two fresh builds of three topologies: three distinct blobs.
        assert len(blobs) == 3

    def test_render_lists_every_finding(self):
        setup = _cg8()
        cert = certify(setup.topology("generated"), setup.benchmark.pattern)
        text = cert.render()
        for name in FINDING_NAMES:
            assert name in text


class TestCorruptedRoutes:
    def test_missing_link_becomes_routes_valid_failure(self):
        top = ring(4)
        sw = [top.network.switch_of(p) for p in range(4)]
        comm = Communication(0, 1)
        good = make_route(top.network, comm, [sw[0], sw[1]])
        bad = Route(
            comm=comm,
            switch_path=good.switch_path,
            hops=(("link", 999, 0),),
            resources=good.resources,
        )
        pattern = _all_overlapping([Message(0, 1, 0.0, 1.0)])
        cert = certify(top, pattern, routing=TableRouting([bad]))
        finding = cert.finding("routes_valid")
        assert finding.status == "fail"
        assert "999" in finding.witness["error"]
        assert not cert.ok()


class TestCertificateValidation:
    def test_unknown_finding_status_rejected(self):
        from repro.verify import Finding, VerificationError

        with pytest.raises(VerificationError):
            Finding(name="x", status="maybe", summary="?")

    def test_bad_source_pattern_rejected_upstream(self):
        with pytest.raises(PatternError):
            Message(0, 0, 0.0, 1.0)
