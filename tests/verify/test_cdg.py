"""Tests for channel-dependency graphs and cycle detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import Communication
from repro.topology import Network, TableRouting, make_route
from repro.verify import (
    CycleWitness,
    DependencyGraph,
    SingleClass,
    build_cdg,
    cdg_node_key,
    route_nodes,
)


def _node(i, cls=0):
    return (("link", i, 0), cls)


class TestDependencyGraph:
    def test_empty_graph_is_acyclic(self):
        g = DependencyGraph(key=cdg_node_key)
        assert g.is_acyclic()
        assert g.find_cycle() is None
        assert g.nodes == []

    def test_chain_is_acyclic(self):
        g = DependencyGraph(key=cdg_node_key)
        for i in range(5):
            g.add_edge(_node(i), _node(i + 1))
        assert g.is_acyclic()
        assert g.num_edges == 5

    def test_cycle_found_with_closed_walk(self):
        g = DependencyGraph(key=cdg_node_key)
        g.add_edge(_node(0), _node(1))
        g.add_edge(_node(1), _node(2))
        g.add_edge(_node(2), _node(0))
        cycle = g.find_cycle()
        assert isinstance(cycle, CycleWitness)
        assert cycle.nodes[0] == cycle.nodes[-1]
        assert len(cycle) == 3
        for a, b in zip(cycle.nodes, cycle.nodes[1:]):
            assert g.has_edge(a, b)

    def test_first_edge_contributor_wins(self):
        g = DependencyGraph(key=cdg_node_key)
        first = Communication(0, 1)
        g.add_edge(_node(0), _node(1), comm=first, hop_index=3)
        g.add_edge(_node(0), _node(1), comm=Communication(2, 3), hop_index=9)
        assert g.num_edges == 1
        g.add_edge(_node(1), _node(0))
        cycle = g.find_cycle()
        (edge,) = [e for e in cycle.edges if e.src == _node(0)]
        assert edge.comm == first
        assert edge.hop_index == 3

    def test_witness_is_deterministic(self):
        def build():
            g = DependencyGraph(key=cdg_node_key)
            # Two cycles; the witness must be the same one every time.
            for a, b in [(0, 1), (1, 2), (2, 0), (4, 5), (5, 4), (2, 4)]:
                g.add_edge(_node(a), _node(b))
            return g

        witnesses = [build().find_cycle() for _ in range(3)]
        assert witnesses[0] == witnesses[1] == witnesses[2]

    def test_render_mentions_channels(self):
        g = DependencyGraph(key=cdg_node_key)
        g.add_edge(_node(0), _node(1), comm=Communication(0, 2), hop_index=0)
        g.add_edge(_node(1), _node(0), comm=Communication(2, 0), hop_index=1)
        text = g.find_cycle().render()
        assert "cycle of length 2" in text
        assert "link:0:0@vc0" in text
        assert "(0,2)" in text


class TestRouteNodes:
    def test_brackets_hops_with_inj_and_ej(self):
        net = Network(3)
        sw = [net.add_switch() for _ in range(3)]
        for p, s in enumerate(sw):
            net.attach_processor(p, s)
        net.add_link(sw[0], sw[1])
        net.add_link(sw[1], sw[2])
        route = make_route(net, Communication(0, 2), sw)
        nodes = route_nodes(route, (0, 1))
        assert nodes[0] == (("inj", 0), 0)
        assert nodes[-1] == (("ej", 2), 0)
        assert [cls for _, cls in nodes[1:-1]] == [0, 1]

    def test_build_cdg_line_network(self):
        net = Network(3)
        sw = [net.add_switch() for _ in range(3)]
        for p, s in enumerate(sw):
            net.attach_processor(p, s)
        net.add_link(sw[0], sw[1])
        net.add_link(sw[1], sw[2])
        comms = [Communication(0, 2), Communication(2, 0)]
        table = TableRouting(
            [make_route(net, c, sw if c.source == 0 else sw[::-1]) for c in comms]
        )
        graph = build_cdg(table, comms, SingleClass())
        # Opposite directions of a full-duplex link are distinct
        # channels, so the two routes share no nodes and cannot cycle.
        assert graph.is_acyclic()
        assert graph.num_edges == 6  # 3 per route: inj->l, l->l, l->ej


# -- hypothesis property: back-edges on DAGs --------------------------
#
# Build a DAG whose edges all point forward in a fixed topological
# order (a spine 0->1->...->n-1 plus random forward chords): it must
# certify acyclic.  Then inject any single back-edge (j -> i, i < j):
# the spine guarantees a path i -> j, so the graph must now have a
# cycle, the reported witness must be a valid closed walk over existing
# edges, and — the back-edge being the only edge against the order —
# every cycle must traverse it.


@st.composite
def dag_and_back_edge(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    spine = [(i, i + 1) for i in range(n - 1)]
    chords = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda p: p[0] < p[1]),
            max_size=n * 2,
        )
    )
    j = draw(st.integers(min_value=1, max_value=n - 1))
    i = draw(st.integers(min_value=0, max_value=j - 1))
    return n, sorted(set(spine) | chords), (j, i)


@settings(max_examples=60, deadline=None)
@given(dag_and_back_edge())
def test_random_dag_acyclic_and_back_edge_yields_valid_cycle(case):
    n, forward_edges, (j, i) = case
    g = DependencyGraph(key=cdg_node_key)
    for a, b in forward_edges:
        g.add_edge(_node(a), _node(b))
    assert g.is_acyclic()

    g.add_edge(_node(j), _node(i))
    cycle = g.find_cycle()
    assert cycle is not None
    # The witness is a closed walk over edges that exist in the graph.
    assert cycle.nodes[0] == cycle.nodes[-1]
    assert len(cycle.nodes) == len(cycle.edges) + 1
    for a, b in zip(cycle.nodes, cycle.nodes[1:]):
        assert g.has_edge(a, b)
    # Every cycle must traverse the unique back-edge.
    assert (_node(j), _node(i)) in [(e.src, e.dst) for e in cycle.edges]
