"""Tests for the automated saturation-sweep driver."""

import pytest

from repro.errors import SimulationError
from repro.simulator.openloop import LoadPoint
from repro.sweeps.driver import (
    CRITERIA,
    STUDY_TOPOLOGIES,
    SweepConfig,
    _initial_rates,
    criterion_latency,
    detect_saturation,
    latency_reference,
    point_is_saturated,
    run_sweep,
    run_sweep_suite,
    spare_link_variant,
    study_topology,
)
from repro.topology import crossbar, mesh

FAST = SweepConfig(
    initial_points=3,
    refine_iters=2,
    warmup_cycles=100,
    measure_cycles=400,
    drain_cycles=600,
)


def _pt(offered, accepted, latency, delivered=100, saturated=False, p99=0):
    return LoadPoint(offered, accepted, latency, delivered, saturated, 0, 0, p99)


class TestSweepConfig:
    def test_defaults_valid(self):
        assert SweepConfig().max_rate == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_rate": 0.0},
            {"min_rate": 0.9, "max_rate": 0.5},
            {"initial_points": 0},
            {"refine_iters": -1},
            {"latency_factor": 1.0},
            {"plateau_fraction": 0.0},
            {"plateau_fraction": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(SimulationError):
            SweepConfig(**kwargs)

    def test_params_dict_has_no_seed(self):
        # The seed lives on the curve itself, not in params.
        assert "seed" not in SweepConfig().params_dict()

    def test_initial_rates_are_deduped_and_sorted(self):
        rates = _initial_rates(SweepConfig(min_rate=0.1, max_rate=0.5, initial_points=5))
        assert rates == sorted(set(rates))
        assert rates[0] == 0.1 and rates[-1] == 0.5

    def test_single_initial_point_uses_max_rate(self):
        assert _initial_rates(SweepConfig(initial_points=1)) == [1.0]


class TestDetectSaturation:
    def test_empty_curve(self):
        assert detect_saturation([]) is None

    def test_monotone_curve_never_saturates(self):
        """A healthy crossbar-like curve: accepted tracks offered and
        latency stays flat — no index must be flagged."""
        points = [
            _pt(0.1, 0.1, 10.0),
            _pt(0.4, 0.4, 11.0),
            _pt(0.8, 0.8, 12.5),
            _pt(1.0, 1.0, 13.0),
        ]
        assert detect_saturation(points) is None

    def test_single_point_unsaturated(self):
        assert detect_saturation([_pt(0.3, 0.3, 15.0)]) is None

    def test_single_point_backlog(self):
        assert detect_saturation([_pt(0.9, 0.4, 500.0, saturated=True)]) == 0

    def test_single_point_plateau(self):
        assert detect_saturation([_pt(0.9, 0.4, 50.0)]) == 0

    def test_latency_blowup_detected(self):
        points = [_pt(0.1, 0.1, 10.0), _pt(0.6, 0.58, 45.0)]
        assert detect_saturation(points) == 1

    def test_latency_criterion_skipped_without_deliveries(self):
        points = [_pt(0.1, 0.09, 0.0, delivered=0), _pt(0.6, 0.55, 900.0)]
        assert detect_saturation(points) is None

    def test_non_monotone_noise_below_knee_does_not_flag_early(self):
        """A noisy dip in accepted throughput that stays above the
        plateau threshold must not mark the curve saturated."""
        points = [
            _pt(0.1, 0.1, 10.0),
            _pt(0.3, 0.27, 12.0),   # 0.9 of offered: noisy but fine
            _pt(0.5, 0.5, 14.0),    # recovers
            _pt(0.9, 0.5, 200.0),   # the real knee
        ]
        assert detect_saturation(points) == 3

    def test_payload_fraction_excuses_header_overhead(self):
        """With 16-flit packets the best possible accepted/offered is
        15/16 ~ 0.94; the plateau criterion must not read that as
        saturation once told the payload fraction."""
        # Threshold is 0.85 x 0.8 = 0.68 flits/node/cycle when the
        # payload fraction is unknown, 0.85 x 15/16 x 0.8 ~ 0.6375 when
        # it is known; 0.66 sits between the two.
        points = [_pt(0.8, 0.66, 20.0)]
        assert detect_saturation(points) == 0  # fraction unknown: flagged
        assert detect_saturation(points, payload_fraction=15 / 16) is None

    def test_first_index_returned_not_last(self):
        points = [_pt(0.1, 0.1, 10.0), _pt(0.5, 0.2, 80.0), _pt(0.9, 0.2, 300.0)]
        assert detect_saturation(points) == 1


class TestLatencyReference:
    def test_lowest_unsaturated_point_wins(self):
        points = [_pt(0.1, 0.1, 10.0), _pt(0.5, 0.5, 30.0)]
        assert latency_reference(points) == 10.0

    def test_saturated_lowest_point_is_skipped(self):
        """The satellite bugfix: a backlogged or plateaued lowest grid
        point must not serve as the latency baseline."""
        points = [
            _pt(0.6, 0.2, 400.0, saturated=True),  # backlogged
            _pt(0.15, 0.05, 350.0),  # plateaued (0.05 < 0.85 x 0.15)
            _pt(0.1, 0.1, 12.0),  # the true baseline
        ]
        assert latency_reference(sorted(
            points, key=lambda p: p.offered_flits_per_node_cycle
        )) == 12.0

    def test_zero_delivery_points_are_skipped(self):
        points = [_pt(0.1, 0.1, 0.0, delivered=0), _pt(0.5, 0.5, 25.0)]
        assert latency_reference(points) == 25.0

    def test_no_candidate_gives_none(self):
        assert latency_reference([]) is None
        assert latency_reference([_pt(0.9, 0.1, 500.0, saturated=True)]) is None


class TestPointIsSaturated:
    def test_backlog_flag_wins(self):
        assert point_is_saturated(_pt(0.1, 0.1, 10.0, saturated=True), None)

    def test_plateau(self):
        assert point_is_saturated(_pt(1.0, 0.5, 10.0), None)
        assert not point_is_saturated(_pt(1.0, 0.9, 10.0), None)

    def test_latency_reference(self):
        assert point_is_saturated(_pt(0.5, 0.5, 100.0), base_latency=20.0)
        assert not point_is_saturated(_pt(0.5, 0.5, 60.0), base_latency=20.0)

    def test_zero_base_latency_ignored(self):
        assert not point_is_saturated(_pt(0.5, 0.5, 60.0), base_latency=0.0)


class TestCriterion:
    """The p99-knee saturation criterion (satellite: tail-latency knee)."""

    def test_criterion_latency_selects_series(self):
        point = _pt(0.5, 0.5, 30.0, p99=240)
        assert criterion_latency(point, "mean-knee") == 30.0
        assert criterion_latency(point, "p99-knee") == 240.0

    def test_criteria_names_are_valid_configs(self):
        for criterion in CRITERIA:
            assert SweepConfig(criterion=criterion).criterion == criterion

    def test_config_rejects_unknown_criterion(self):
        with pytest.raises(SimulationError, match="criterion"):
            SweepConfig(criterion="p42-knee")

    def test_params_dict_records_criterion(self):
        assert SweepConfig().params_dict()["criterion"] == "mean-knee"
        assert (
            SweepConfig(criterion="p99-knee").params_dict()["criterion"]
            == "p99-knee"
        )

    def test_p99_knee_flags_tail_blowup_the_mean_hides(self):
        """A curve whose mean stays flat while the tail explodes: the
        default criterion sees nothing, the p99 knee fires."""
        points = [
            _pt(0.1, 0.1, 10.0, p99=14),
            _pt(0.6, 0.58, 18.0, p99=320),  # mean < 4x base, p99 >> 4x
        ]
        assert detect_saturation(points) is None
        assert detect_saturation(points, criterion="p99-knee") == 1

    def test_latency_reference_uses_criterion(self):
        points = [_pt(0.1, 0.1, 10.0, p99=22), _pt(0.5, 0.5, 30.0, p99=90)]
        assert latency_reference(points) == 10.0
        assert latency_reference(points, criterion="p99-knee") == 22.0

    def test_point_is_saturated_uses_criterion(self):
        point = _pt(0.5, 0.5, 60.0, p99=300)
        assert not point_is_saturated(point, base_latency=20.0)
        assert point_is_saturated(point, base_latency=20.0, criterion="p99-knee")

    def test_sweep_records_criterion_in_artifact(self):
        fast_p99 = SweepConfig(
            criterion="p99-knee",
            initial_points=3,
            refine_iters=1,
            warmup_cycles=100,
            measure_cycles=400,
            drain_cycles=600,
        )
        curve = run_sweep(mesh(2, 2), "uniform", sweep=fast_p99)
        assert curve.params["criterion"] == "p99-knee"


class TestRunSweep:
    def test_mesh_tornado_saturates(self):
        curve = run_sweep(mesh(4, 4), "tornado", sweep=FAST)
        offered = [p.offered_flits_per_node_cycle for p in curve.points]
        assert offered == sorted(offered)
        assert len(offered) == len(set(offered))
        assert curve.saturated
        assert 0 < curve.saturation_rate < 1.0
        assert curve.saturation_throughput > 0
        assert curve.pattern == "tornado"
        assert curve.params["initial_points"] == 3

    def test_refinement_adds_points_inside_bracket(self):
        coarse = run_sweep(
            mesh(4, 4), "tornado",
            sweep=SweepConfig(
                initial_points=3, refine_iters=0,
                warmup_cycles=100, measure_cycles=400, drain_cycles=600,
            ),
        )
        fine = run_sweep(mesh(4, 4), "tornado", sweep=FAST)
        assert len(fine.points) > len(coarse.points)

    def test_crossbar_low_load_never_saturates(self):
        curve = run_sweep(
            crossbar(8), "uniform",
            sweep=SweepConfig(
                min_rate=0.05, max_rate=0.3, initial_points=3, refine_iters=2,
                warmup_cycles=100, measure_cycles=400, drain_cycles=600,
            ),
        )
        assert not curve.saturated
        assert curve.saturation_rate is None
        assert curve.saturation_throughput == max(
            p.accepted_flits_per_node_cycle for p in curve.points
        )

    def test_hotspot_spec_is_canonicalized_in_artifact(self):
        curve = run_sweep(mesh(2, 2), "hotspot:01:0.50", sweep=FAST)
        assert curve.pattern == "hotspot:1:0.5"

    def test_strict_pattern_violation_fails_before_any_cell(self):
        with pytest.raises(SimulationError, match="requires"):
            run_sweep(mesh(4, 2), "transpose", sweep=FAST, strict_patterns=True)

    def test_unknown_pattern_fails_fast(self):
        with pytest.raises(SimulationError, match="unknown pattern"):
            run_sweep(mesh(2, 2), "nope", sweep=FAST)

    def test_saturation_at_lowest_initial_rate_keeps_bracket_consistent(self):
        """Regression for the stale latency baseline: when the lowest
        grid point itself saturates (``first == 0``), down-bisection
        probes below it, and the refinement loop used to classify those
        probes against the saturated point's inflated latency — landing
        the final bracket on rates the final ``detect_saturation`` pass
        (whose baseline is the new lowest point) contradicts.  On
        mesh-4x4 adversarial traffic with the grid starting at 0.7
        (above the ~0.62 knee) the old code reported a saturation rate
        *above* a point it simultaneously classified as saturated."""
        sweep = SweepConfig(
            min_rate=0.7, max_rate=1.0, initial_points=3, refine_iters=4,
            warmup_cycles=200, measure_cycles=600, drain_cycles=800,
        )
        curve = run_sweep(mesh(4, 4), "adversarial", sweep=sweep)
        assert curve.saturated
        # Refinement probed below the saturated lowest grid point.
        assert curve.saturation_rate < sweep.min_rate
        flits = 32 // 8 + 1  # SimConfig default: 8-byte flits + header
        payload_fraction = (flits - 1) / flits
        first = detect_saturation(
            curve.points, sweep.latency_factor, sweep.plateau_fraction,
            payload_fraction,
        )
        assert first is not None
        # The final pass and the bisection bracket must agree: the
        # saturation estimate sits between the last unsaturated and the
        # first saturated measured rate.
        assert curve.points[first].offered_flits_per_node_cycle >= curve.saturation_rate
        assert (
            first == 0
            or curve.points[first - 1].offered_flits_per_node_cycle
            <= curve.saturation_rate
        )

    def test_suite_grid_and_lookup(self):
        tops = [("mesh", mesh(2, 2), None), ("xbar", crossbar(4), None)]
        result = run_sweep_suite(tops, ["uniform", "neighbor"], sweep=FAST)
        assert result.topology_labels == ("mesh", "xbar")
        assert result.patterns == ("uniform", "neighbor")
        assert len(result.curves) == 4
        assert result.curve("xbar", "neighbor").topology_name == "xbar"

    def test_batched_suite_matches_per_pair_sweeps_byte_identically(self):
        """The suite fans the whole grid's initial rates through one
        run_cells call; the curves must still be byte-identical to
        sweeping each (topology, pattern) pair on its own."""
        tops = [("mesh", mesh(2, 2), None), ("xbar", crossbar(4), None)]
        patterns = ["uniform", "tornado"]
        suite = run_sweep_suite(tops, patterns, sweep=FAST)
        for top_label, topology, link_delays in tops:
            for pattern in patterns:
                solo = run_sweep(
                    topology, pattern, sweep=FAST,
                    link_delays=link_delays, label=top_label,
                )
                batched = suite.curve(top_label, pattern)
                assert batched.to_json() == solo.to_json()

    def test_suite_validates_every_pair_before_any_cell(self):
        tops = [("mesh", mesh(2, 2), None)]
        with pytest.raises(SimulationError, match="unknown pattern"):
            run_sweep_suite(tops, ["uniform", "nope"], sweep=FAST)

    def test_premeasured_initial_grid_reproduces_the_solo_sweep(self):
        """A sweep seeded with the initial grid's points skips their
        cells and still refines to a byte-identical curve."""
        solo = run_sweep(mesh(2, 2), "uniform", sweep=FAST)
        initial = set(_initial_rates(FAST))
        premeasured = {
            p.offered_flits_per_node_cycle: p
            for p in solo.points
            if p.offered_flits_per_node_cycle in initial
        }
        assert len(premeasured) == len(initial)
        seeded = run_sweep(
            mesh(2, 2), "uniform", sweep=FAST, premeasured=premeasured
        )
        assert seeded.to_json() == solo.to_json()


class TestSpareLinkVariant:
    def test_adds_links_and_renames(self):
        base = mesh(4, 4)
        spare = spare_link_variant(base)
        assert spare.name == f"{base.name}+spare"
        assert spare.kind == "mesh-spare"
        assert len(spare.network.links) > len(base.network.links)
        # Base topology is untouched.
        assert base.kind == "mesh"

    def test_each_switch_gains_at_most_one_spare(self):
        base = mesh(4, 4)
        spare = spare_link_variant(base)
        extra = len(spare.network.links) - len(base.network.links)
        assert 0 < extra <= len(base.network.switches)

    def test_spare_routes_every_pair(self):
        from repro.model.message import Communication

        spare = spare_link_variant(mesh(3, 3))
        n = spare.network.num_processors
        for src in range(n):
            for dest in range(n):
                if src != dest:
                    assert spare.routing.route(Communication(src, dest)).hops

    def test_fully_connected_network_is_unchanged(self):
        base = crossbar(4)
        spare = spare_link_variant(base)
        assert len(spare.network.links) == len(base.network.links)


class TestStudyTopology:
    def test_baselines(self):
        label, top, delays = study_topology("mesh", 8)
        assert label == "mesh" and delays is None
        assert top.network.num_processors == 8

    def test_torus_wrap_delays(self):
        _, top, delays = study_topology("torus", 16)
        assert set(delays.values()) == {1, 2}

    def test_unknown_kind(self):
        with pytest.raises(SimulationError, match="unknown study topology"):
            study_topology("hypercube", 8)

    def test_names_cover_study(self):
        assert set(STUDY_TOPOLOGIES) >= {"generated", "generated-spare", "mesh", "torus"}
