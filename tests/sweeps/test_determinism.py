"""Sweep determinism: serial == parallel == cache-hit, byte for byte.

Extends the PR-2 golden harness (``tests/eval/test_determinism.py``) to
the sweep subsystem: the golden fixture pins the canonical JSON of a
small tornado sweep on the 4x4 mesh.  Regenerate after an *intentional*
change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sweeps/test_determinism.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval.parallel import OpenLoopCell, ResultCache, run_cells
from repro.eval.serialize import canonical_json
from repro.simulator import SimConfig
from repro.sweeps.driver import SweepConfig, run_sweep
from repro.topology import mesh, torus

GOLDEN_PATH = Path(__file__).parent / "golden" / "mesh4x4_tornado_sweep.json"

SWEEP = SweepConfig(
    initial_points=3,
    refine_iters=2,
    warmup_cycles=100,
    measure_cycles=400,
    drain_cycles=600,
)


def _sweep(**kwargs):
    return run_sweep(mesh(4, 4), "tornado", sweep=SWEEP, **kwargs)


class TestGoldenSweep:
    def test_serial_run_matches_golden(self):
        got = _sweep().to_json()
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(got + "\n", encoding="utf-8")
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert got == GOLDEN_PATH.read_text(encoding="utf-8").rstrip("\n")

    def test_cache_hit_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = _sweep(cache=cache)
        warm = _sweep(cache=cache)
        assert warm.to_json() == cold.to_json()

    @pytest.mark.slow
    def test_parallel_run_is_byte_identical(self):
        serial = _sweep(jobs=1)
        parallel = _sweep(jobs=2)
        assert parallel.to_json() == serial.to_json()

    def test_cache_survives_serial_parallel_mix(self, tmp_path):
        """A cache warmed serially must satisfy a parallel run (and vice
        versa) — the cache key may not depend on the execution mode."""
        cache = ResultCache(tmp_path / "cache")
        serial = _sweep(cache=cache)
        parallel = _sweep(cache=cache, jobs=2)
        assert parallel.to_json() == serial.to_json()


def _cell(**over):
    fields = dict(
        label="c",
        topology=mesh(4, 4),
        pattern="tornado",
        injection_rate=0.25,
        config=SimConfig(),
        seed=0,
    )
    fields.update(over)
    return OpenLoopCell(**fields)


class TestOpenLoopCellKeys:
    def test_key_is_stable(self):
        assert _cell().key() == _cell().key()

    def test_key_ignores_label(self):
        assert _cell().key() == _cell(label="other").key()

    @pytest.mark.parametrize(
        "over",
        [
            {"pattern": "uniform"},
            {"injection_rate": 0.5},
            {"seed": 1},
            {"packet_bytes": 64},
            {"measure_cycles": 999},
            {"config": SimConfig(num_vcs=2)},
            {"topology": torus(4, 4)},
            {"link_delays": {0: 2}},
        ],
    )
    def test_key_distinguishes(self, over):
        assert _cell().key() != _cell(**over).key()

    def test_outcome_payload_is_canonical(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_cells([_cell()], cache=cache)
        warm = run_cells([_cell()], cache=cache)
        assert not cold[0].cache_hit and warm[0].cache_hit
        assert canonical_json(cold[0].payload) == canonical_json(warm[0].payload)
