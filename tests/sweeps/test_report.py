"""Tests for schema-versioned sweep artifacts and renderings."""

import json

import pytest

from repro.errors import SimulationError
from repro.simulator.openloop import LoadPoint
from repro.sweeps.report import (
    SWEEP_SCHEMA,
    SaturationCurve,
    SweepResult,
    curve_csv,
    curve_plot,
    curve_table,
    degradation_table,
)


def _curve(topology="mesh", pattern="tornado", sat=0.42, **over):
    fields = dict(
        topology_name=topology,
        pattern=pattern,
        num_nodes=16,
        seed=0,
        points=(
            LoadPoint(0.1, 0.09333333333333334, 20.0, 128, False, 18, 31, 36),
            LoadPoint(0.55, 0.42, 180.5, 700, False, 150, 420, 510),
            LoadPoint(1.0, 0.43, 900.0, 720, True, 700, 2100, 2600),
        ),
        saturation_rate=0.55,
        saturation_throughput=sat,
        saturated=True,
        params={"min_rate": 0.1, "max_rate": 1.0},
    )
    fields.update(over)
    return SaturationCurve(**fields)


class TestSaturationCurve:
    def test_round_trip_is_byte_identical(self):
        curve = _curve()
        text = curve.to_json()
        again = SaturationCurve.from_dict(json.loads(text))
        assert again == curve
        assert again.to_json() == text

    def test_canonical_json_has_no_whitespace(self):
        text = _curve().to_json()
        assert ": " not in text and ", " not in text

    def test_schema_stamped(self):
        assert _curve().to_dict()["schema"] == SWEEP_SCHEMA
        assert _curve().to_dict()["kind"] == "saturation-curve"

    def test_schema_mismatch_rejected(self):
        raw = _curve().to_dict()
        raw["schema"] = SWEEP_SCHEMA + 1
        with pytest.raises(SimulationError, match="schema"):
            SaturationCurve.from_dict(raw)
        with pytest.raises(SimulationError, match="schema"):
            SaturationCurve.from_dict({})

    def test_table_mentions_knee(self):
        text = curve_table(_curve())
        assert "tornado on mesh" in text
        assert "saturation: offered ~0.5500" in text

    def test_table_reports_no_saturation(self):
        curve = _curve(saturation_rate=None, saturated=False)
        assert "no saturation below 1.0000" in curve_table(curve)

    def test_render_matches_table(self):
        assert _curve().render() == curve_table(_curve())

    def test_csv_round_trips_floats_exactly(self):
        curve = _curve()
        lines = curve_csv(curve).strip().splitlines()
        assert lines[0] == (
            "offered,accepted,avg_latency,p50_latency,p95_latency,p99_latency,"
            "delivered,saturated"
        )
        assert len(lines) == 1 + len(curve.points)
        first = lines[1].split(",")
        assert float(first[1]) == curve.points[0].accepted_flits_per_node_cycle


class TestCurvePlot:
    """The dependency-free p50/p95/p99 chart (satellite: --plot)."""

    def test_ascii_has_legend_axes_and_markers(self):
        text = curve_plot(_curve())
        assert "tornado on mesh" in text
        assert "5 = p50" in text and "9 = p95" in text and "! = p99" in text
        for marker in ("5", "9", "!"):
            assert marker in text
        assert "flits/node/cycle" in text

    def test_ascii_marks_saturation_rate(self):
        text = curve_plot(_curve())
        assert "^" in text
        assert "saturation at offered ~0.5500" in text

    def test_ascii_unsaturated_curve_has_no_marker_line(self):
        text = curve_plot(_curve(saturation_rate=None, saturated=False))
        assert "saturation at" not in text

    def test_ascii_is_deterministic(self):
        assert curve_plot(_curve()) == curve_plot(_curve())

    def test_ascii_respects_dimensions(self):
        text = curve_plot(_curve(), width=32, height=8)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 8
        assert all(len(line.split("|", 1)[1]) == 32 for line in rows)

    def test_svg_is_wellformed_with_three_series(self):
        import xml.etree.ElementTree as ET

        text = curve_plot(_curve(), fmt="svg")
        root = ET.fromstring(text)
        ns = "{http://www.w3.org/2000/svg}"
        assert root.tag == f"{ns}svg"
        polylines = root.findall(f"{ns}polyline")
        assert len(polylines) == 3
        strokes = {p.get("stroke") for p in polylines}
        assert strokes == {"#0072B2", "#E69F00", "#D55E00"}
        # One circle per (series, point) plus the dashed saturation line.
        assert len(root.findall(f"{ns}circle")) == 3 * len(_curve().points)
        assert any(
            line.get("stroke-dasharray") for line in root.findall(f"{ns}line")
        )

    def test_svg_omits_saturation_line_when_unsaturated(self):
        import xml.etree.ElementTree as ET

        text = curve_plot(_curve(saturation_rate=None, saturated=False), fmt="svg")
        root = ET.fromstring(text)
        ns = "{http://www.w3.org/2000/svg}"
        assert not any(
            line.get("stroke-dasharray") for line in root.findall(f"{ns}line")
        )

    def test_unknown_format_rejected(self):
        with pytest.raises(SimulationError, match="plot format"):
            curve_plot(_curve(), fmt="png")

    def test_empty_curve_rejected(self):
        empty = _curve(
            points=(), saturation_rate=None, saturated=False,
            saturation_throughput=0.0,
        )
        with pytest.raises(SimulationError, match="no measured points"):
            curve_plot(empty)


class TestSweepResult:
    def _result(self):
        return SweepResult(
            label="study",
            curves=(
                ("mesh", "tornado", _curve("mesh", "tornado", sat=0.5)),
                ("mesh", "uniform", _curve("mesh", "uniform", sat=0.6)),
                ("generated", "tornado", _curve("generated", "tornado", sat=0.25)),
                ("generated", "uniform", _curve("generated", "uniform", sat=0.6)),
            ),
        )

    def test_round_trip_is_byte_identical(self):
        result = self._result()
        text = result.to_json()
        again = SweepResult.from_dict(json.loads(text))
        assert again == result
        assert again.to_json() == text

    def test_schema_mismatch_rejected(self):
        raw = self._result().to_dict()
        raw["schema"] = 99
        with pytest.raises(SimulationError, match="schema"):
            SweepResult.from_dict(raw)

    def test_lookup_and_orders(self):
        result = self._result()
        assert result.topology_labels == ("mesh", "generated")
        assert result.patterns == ("tornado", "uniform")
        assert result.curve("generated", "tornado").saturation_throughput == 0.25

    def test_missing_curve_raises(self):
        with pytest.raises(SimulationError, match="no curve"):
            self._result().curve("torus", "tornado")

    def test_degradation_table_ratios(self):
        table = degradation_table(self._result(), baseline="mesh")
        assert "tornado" in table and "uniform" in table
        # generated/tornado degrades to half the mesh baseline.
        assert "(0.50)" in table
        # on-design parity shows up as 1.00.
        assert "(1.00)" in table

    def test_degradation_table_needs_baseline(self):
        with pytest.raises(SimulationError, match="baseline"):
            degradation_table(self._result(), baseline="torus")

    def test_degradation_table_custom_title(self):
        table = degradation_table(self._result(), title="smoke study")
        assert table.splitlines()[0] == "smoke study"

    def test_degradation_table_ragged_grid_renders_dash(self):
        """A topology missing one pattern's curve must render ``-``
        instead of raising (regression: SimulationError on ragged
        grids)."""
        result = SweepResult(
            label="ragged",
            curves=(
                ("mesh", "tornado", _curve("mesh", "tornado", sat=0.5)),
                ("mesh", "uniform", _curve("mesh", "uniform", sat=0.6)),
                ("generated", "tornado", _curve("generated", "tornado", sat=0.25)),
                # generated/uniform was never swept.
            ),
        )
        table = degradation_table(result, baseline="mesh")
        row = next(
            line for line in table.splitlines() if line.startswith("uniform")
        )
        assert row.rstrip().endswith("-")
        assert "inf" not in table

    def test_degradation_table_zero_baseline_renders_na(self):
        """A baseline with zero saturation throughput must render the
        ratio as ``n/a`` instead of ``inf``."""
        result = SweepResult(
            label="zero-base",
            curves=(
                ("mesh", "tornado", _curve("mesh", "tornado", sat=0.0)),
                ("generated", "tornado", _curve("generated", "tornado", sat=0.25)),
            ),
        )
        table = degradation_table(result, baseline="mesh")
        assert "n/a" in table
        assert "inf" not in table

    def test_find_curve_returns_none_on_missing_pair(self):
        assert self._result().find_curve("torus", "tornado") is None
        assert self._result().find_curve("mesh", "tornado") is not None

    def test_schema1_rejection_names_the_percentile_migration(self):
        raw = self._result().to_dict()
        raw["schema"] = 1
        with pytest.raises(SimulationError, match="p50/p95/p99"):
            SweepResult.from_dict(raw)
        curve_raw = _curve().to_dict()
        curve_raw["schema"] = 1
        with pytest.raises(SimulationError, match="re-run the sweep"):
            SaturationCurve.from_dict(curve_raw)
