"""Tests for the synthetic traffic suite and its registry."""

import random
import warnings

import pytest

from repro.errors import SimulationError
from repro.sweeps.patterns import (
    PATTERNS,
    adversarial_pattern,
    adversarial_permutation,
    bit_complement_pattern,
    bit_reverse_pattern,
    bit_rotation_pattern,
    canonical_spec,
    hotspot_pattern,
    pattern_catalog,
    pattern_entries,
    pattern_names,
    register_pattern,
    reset_fallback_warnings,
    resolve_pattern,
    shuffle_pattern,
    tornado_pattern,
    transpose_pattern,
)
from repro.topology import mesh, torus


@pytest.fixture(autouse=True)
def _fresh_warnings():
    reset_fallback_warnings()
    yield
    reset_fallback_warnings()


class TestRegistry:
    def test_canonical_families_registered(self):
        names = pattern_names()
        for name in (
            "uniform", "neighbor", "tornado", "transpose", "bit_complement",
            "bit_reverse", "bit_rotation", "shuffle", "hotspot", "adversarial",
        ):
            assert name in names

    def test_hotspot_registered_in_patterns_dict(self):
        """Regression: hotspot was defined but never registered, so the
        legacy ``openloop.PATTERNS`` mapping silently lacked it."""
        assert "hotspot" in PATTERNS
        rng = random.Random(0)
        hits = sum(PATTERNS["hotspot"](5, 8, rng) == 0 for _ in range(400))
        assert 120 <= hits <= 280  # default bias 0.5 toward node 0

    def test_patterns_dict_excludes_routing_aware(self):
        assert "adversarial" not in PATTERNS

    def test_catalog_covers_every_name(self):
        catalog = pattern_catalog()
        assert set(catalog) == set(pattern_names())
        assert all(catalog.values())
        assert [e.name for e in pattern_entries()] == sorted(catalog)

    def test_register_and_resolve_custom_pattern(self):
        register_pattern(
            "everyone-to-zero",
            lambda params, topology: (lambda s, n, rng: 0 if s else 1),
            description="test-only",
        )
        try:
            fn = resolve_pattern("everyone-to-zero")
            assert fn(5, 8, random.Random(0)) == 0
        finally:
            from repro.sweeps.patterns import _REGISTRY

            del _REGISTRY["everyone-to-zero"]

    def test_register_rejects_colon_names(self):
        with pytest.raises(SimulationError):
            register_pattern("a:b", lambda params, topology: None)

    def test_unknown_spec_raises(self):
        with pytest.raises(SimulationError, match="unknown pattern"):
            resolve_pattern("wormhole")


class TestHotspotSpec:
    def test_factory_spec_parses_node_and_bias(self):
        rng = random.Random(0)
        fn = resolve_pattern("hotspot:3:0.8", n=8)
        hits = sum(fn(src, 8, rng) == 3 for src in range(8) for _ in range(50))
        assert hits > 0.6 * 8 * 50  # ~0.8 bias plus uniform spillover

    def test_defaults(self):
        assert canonical_spec("hotspot") == "hotspot:0:0.5"
        assert canonical_spec("hotspot:7") == "hotspot:7:0.5"

    def test_canonicalization_normalizes_formatting(self):
        assert canonical_spec("hotspot:03:0.50") == "hotspot:3:0.5"
        assert canonical_spec("hotspot:3:1") == "hotspot:3:1"

    def test_bad_bias_rejected(self):
        with pytest.raises(SimulationError, match="bias"):
            resolve_pattern("hotspot:0:1.5")

    def test_bad_node_rejected(self):
        with pytest.raises(SimulationError, match="node"):
            resolve_pattern("hotspot:-1:0.5")
        with pytest.raises(SimulationError, match="outside range"):
            resolve_pattern("hotspot:8:0.5", n=8)

    def test_malformed_params_rejected(self):
        with pytest.raises(SimulationError):
            resolve_pattern("hotspot:x:0.5")
        with pytest.raises(SimulationError):
            resolve_pattern("hotspot:0:0.5:9")

    def test_non_parameterized_family_rejects_params(self):
        with pytest.raises(SimulationError, match="takes no parameters"):
            canonical_spec("tornado:3")

    def test_hotspot_never_returns_source(self):
        rng = random.Random(2)
        fn = hotspot_pattern(hotspot=3, bias=1.0)
        assert all(fn(3, 8, rng) != 3 for _ in range(100))


class TestSizeRequirements:
    """Satellite audit: incompatible sizes must either raise (strict)
    or warn exactly once and degrade to uniform (default)."""

    @pytest.mark.parametrize(
        "spec", ["transpose", "bit_complement", "bit_reverse", "bit_rotation", "shuffle"]
    )
    def test_strict_resolve_raises_on_bad_size(self, spec):
        with pytest.raises(SimulationError, match="requires"):
            resolve_pattern(spec, n=12, strict=True)

    @pytest.mark.parametrize(
        "spec", ["transpose", "bit_complement", "bit_reverse", "bit_rotation", "shuffle"]
    )
    def test_strict_resolve_names_the_violating_pattern(self, spec):
        with pytest.raises(SimulationError, match=f"pattern spec '{spec}'"):
            resolve_pattern(spec, n=12, strict=True)

    @pytest.mark.parametrize(
        "spec,n,sizes",
        [("transpose", 12, "9 and 16"), ("shuffle", 12, "8 and 16")],
    )
    def test_strict_error_reports_nearest_valid_sizes(self, spec, n, sizes):
        with pytest.raises(SimulationError) as excinfo:
            resolve_pattern(spec, n=n, strict=True)
        message = str(excinfo.value)
        assert f"n={n}" in message
        assert f"nearest valid sizes: {sizes}" in message

    @pytest.mark.parametrize(
        "spec,good_n", [("transpose", 16), ("bit_reverse", 16), ("shuffle", 8)]
    )
    def test_strict_resolve_accepts_good_size(self, spec, good_n):
        assert callable(resolve_pattern(spec, n=good_n, strict=True))

    @pytest.mark.parametrize(
        "fn,name",
        [
            (transpose_pattern, "transpose"),
            (bit_complement_pattern, "bit_complement"),
            (bit_reverse_pattern, "bit_reverse"),
            (bit_rotation_pattern, "bit_rotation"),
            (shuffle_pattern, "shuffle"),
        ],
    )
    def test_default_fallback_warns_once_per_size(self, fn, name):
        rng = random.Random(0)
        with pytest.warns(RuntimeWarning, match=name):
            dest = fn(0, 12, rng)
        assert 0 <= dest < 12 and dest != 0
        # Second call with the same (pattern, n): silent fallback.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fn(1, 12, rng)
        # A different n warns again.
        with pytest.warns(RuntimeWarning, match=name):
            fn(0, 6, rng)

    @pytest.mark.parametrize(
        "fn,name,sizes",
        [
            (transpose_pattern, "transpose", "9 and 16"),
            (bit_reverse_pattern, "bit_reverse", "8 and 16"),
        ],
    )
    def test_fallback_warning_reports_spec_and_required_sizes(self, fn, name, sizes):
        rng = random.Random(0)
        with pytest.warns(RuntimeWarning) as record:
            fn(0, 12, rng)
        message = str(record[0].message)
        assert f"pattern spec '{name}'" in message
        assert "n=12" in message
        assert f"nearest valid sizes: {sizes}" in message
        assert "falling back to uniform random" in message


class TestStructuredPatterns:
    def test_tornado(self):
        rng = random.Random(0)
        assert tornado_pattern(0, 8, rng) == 4
        assert tornado_pattern(6, 8, rng) == 2

    def test_transpose_values(self):
        rng = random.Random(0)
        assert transpose_pattern(1, 16, rng) == 4
        assert transpose_pattern(14, 16, rng) == 11

    def test_bit_complement(self):
        rng = random.Random(0)
        assert bit_complement_pattern(0b0110, 16, rng) == 0b1001

    def test_bit_reverse(self):
        rng = random.Random(0)
        assert bit_reverse_pattern(0b0011, 16, rng) == 0b1100

    def test_bit_rotation_and_shuffle_are_inverses(self):
        rng = random.Random(0)
        # 0b0000 and 0b1111 are rotation fixed points (uniform draws);
        # every other address rotates right then shuffles back exactly.
        for src in range(1, 15):
            rotated = bit_rotation_pattern(src, 16, rng)
            assert shuffle_pattern(rotated, 16, rng) == src

    def test_fixed_points_draw_uniform_not_self(self):
        rng = random.Random(0)
        for _ in range(50):
            assert transpose_pattern(0, 16, rng) != 0  # diagonal
            assert shuffle_pattern(15, 16, rng) != 15  # all-ones cycle


class TestAdversarial:
    def test_permutation_is_valid_derangement(self):
        top = mesh(4, 4)
        perm = adversarial_permutation(top)
        assert sorted(perm) == list(range(16))
        assert sorted(perm.values()) == list(range(16))
        assert all(perm[s] != s for s in perm)

    def test_permutation_loads_a_channel_heavily(self):
        """The whole point: peak channel load must exceed a permutation
        with no overlap (load 1)."""
        from repro.model.message import Communication

        top = mesh(4, 4)
        perm = adversarial_permutation(top)
        loads = {}
        for src, dest in perm.items():
            for hop in top.routing.route(Communication(src, dest)).hops:
                loads[hop] = loads.get(hop, 0) + 1
        assert max(loads.values()) >= 3

    def test_deterministic(self):
        top = torus(4, 2)
        assert adversarial_permutation(top) == adversarial_permutation(top)

    def test_pattern_never_returns_source(self):
        top = mesh(2, 2)
        fn = adversarial_pattern(top)
        rng = random.Random(0)
        assert all(fn(s, 4, rng) != s for s in range(4) for _ in range(20))

    def test_resolve_requires_topology(self):
        with pytest.raises(SimulationError, match="routing-aware"):
            resolve_pattern("adversarial")

    def test_resolve_with_topology(self):
        top = mesh(2, 2)
        fn = resolve_pattern("adversarial", topology=top)
        assert callable(fn)

    def test_single_node_rejected(self):
        with pytest.raises(SimulationError):
            adversarial_permutation(mesh(1, 1))
