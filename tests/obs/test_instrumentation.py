"""Instrumentation must observe, never perturb.

These tests pin the determinism contract: simulated results are
byte-identical with observability on or off, metric values agree with
the result fields they mirror, and the canonical metric snapshot is
itself byte-stable across identical runs.
"""

from repro.eval.serialize import result_to_dict
from repro.model.cliques import CliqueAnalysis
from repro.obs import DISABLED, MANDATORY_COUNTERS, enabled_observability
from repro.simulator import SimConfig, simulate
from repro.simulator.openloop import run_open_loop, uniform_random
from repro.synthesis.annealing import AnnealSchedule, SimulatedAnnealing
from repro.synthesis.partition import Partitioner
from repro.topology import crossbar, mesh
from repro.workloads import PhaseProgramBuilder, benchmark


def _program(n=4):
    b = PhaseProgramBuilder(n, "obs")
    for k in (1, 2):
        b.compute(50)
        b.phase([(i, (i + k) % n, 128) for i in range(n)])
    return b.build()


def _cfg():
    return SimConfig(deadlock_threshold=500, max_cycles=2_000_000)


class TestSimulatorNeutrality:
    def test_result_identical_with_obs_on_and_off(self):
        base = simulate(_program(), mesh(2, 2), _cfg())
        obs = enabled_observability(sample_every=16)
        observed = simulate(_program(), mesh(2, 2), _cfg(), obs=obs)
        assert result_to_dict(base) == result_to_dict(observed)

    def test_counters_match_result_fields(self):
        obs = enabled_observability()
        r = simulate(_program(), mesh(2, 2), _cfg(), obs=obs)
        snap = obs.metrics.snapshot()
        assert snap["counters"]["sim.packets_delivered"] == r.delivered_packets
        assert snap["counters"]["sim.flit_hops"] == r.flit_hops
        assert snap["counters"]["sim.flits_injected"] > 0
        assert snap["histograms"]["sim.packet_latency_cycles"]["count"] == (
            r.delivered_packets
        )
        assert snap["gauges"]["sim.execution_cycles"] == r.execution_cycles

    def test_occupancy_series_sampled_in_cycle_coordinates(self):
        obs = enabled_observability(sample_every=8)
        simulate(_program(), mesh(2, 2), _cfg(), obs=obs)
        series = obs.metrics.snapshot()["series"]
        xs = [x for x, _ in series["sim.flits_in_network"]]
        assert xs == sorted(xs)
        assert all(isinstance(x, int) for x in xs)
        assert any(name.startswith("sim.channel_occupancy.") for name in series)

    def test_canonical_metrics_byte_stable_across_runs(self):
        snaps = []
        for _ in range(2):
            obs = enabled_observability(sample_every=32)
            simulate(_program(), mesh(2, 2), _cfg(), obs=obs)
            snaps.append(obs.metrics.canonical_json())
        assert snaps[0] == snaps[1]

    def test_open_loop_identical_with_obs(self):
        kwargs = dict(measure_cycles=600, seed=7)
        base = run_open_loop(crossbar(4), 0.2, pattern=uniform_random, **kwargs)
        observed = run_open_loop(
            crossbar(4),
            0.2,
            pattern=uniform_random,
            obs=enabled_observability(),
            **kwargs,
        )
        assert base == observed


class TestSynthesisNeutrality:
    def _analysis(self):
        return CliqueAnalysis.of(benchmark("cg", 8).pattern)

    def test_partitioner_result_identical_with_obs(self):
        base = Partitioner(self._analysis(), seed=1).run()
        obs = enabled_observability()
        observed = Partitioner(self._analysis(), seed=1, obs=obs).run()
        assert observed.bisections == base.bisections
        assert observed.route_moves == base.route_moves
        assert observed.processor_moves == base.processor_moves
        assert observed.state.proc_switch == base.state.proc_switch
        snap = obs.metrics.snapshot()
        assert snap["counters"]["synthesis.bisections"] == base.bisections
        assert snap["counters"]["synthesis.route_moves"] == base.route_moves
        assert snap["counters"]["synthesis.color.pipes"] >= len(base.pipe_finals)

    def test_annealing_rng_unperturbed_by_obs(self):
        def energy(x):
            return float(x * x)

        def neighbor(x, rng):
            return x + rng.choice((-1, 1))

        sched = AnnealSchedule(steps=400, moves_per_temperature=20)
        base = SimulatedAnnealing(energy, neighbor, sched, seed=3).run(40)
        obs = enabled_observability()
        observed = SimulatedAnnealing(
            energy, neighbor, sched, seed=3, obs=obs, label="t.anneal"
        ).run(40)
        assert observed == base
        snap = obs.metrics.snapshot()
        accepted = snap["counters"]["t.anneal.accepted"]
        rejected = snap["counters"]["t.anneal.rejected"]
        assert accepted + rejected == sched.steps
        assert len(snap["series"]["t.anneal.temperature"]) == 400 // 20


class TestBundles:
    def test_disabled_bundle_is_off(self):
        assert not DISABLED.enabled
        assert DISABLED.metrics.enabled is False
        assert DISABLED.tracer.enabled is False

    def test_enabled_bundle_is_identity_hashed(self):
        a = enabled_observability()
        b = enabled_observability()
        assert a.enabled
        assert hash(a) != hash(b) or a is b
        assert a != b

    def test_profile_covers_mandatory_counters(self):
        from repro.obs.profile import run_profile

        report = run_profile("cg", 8, kinds=("crossbar",), cache=None)
        counters = report.obs.metrics.snapshot()["counters"]
        for name in MANDATORY_COUNTERS:
            assert name in counters, f"missing mandatory counter {name}"
        rendered = report.render()
        for name in MANDATORY_COUNTERS:
            assert name in rendered
        assert "profile: cg-8" in rendered

    def test_spans_nest_through_the_full_pipeline(self):
        from repro.obs.profile import run_profile

        report = run_profile("cg", 8, kinds=("crossbar",), cache=None)
        names = {s["name"] for s in report.obs.tracer.spans()}
        assert {
            "profile.setup",
            "setup.synthesize",
            "synthesis.restart",
            "setup.floorplan",
            "profile.simulate",
            "simulate.run",
            "eval.cell",
        } <= names
