"""Tests for span tracing and the Chrome-trace exporter."""

import json

from repro.obs import NULL_TRACER, Tracer, validate_chrome_trace


class TestSpans:
    def test_span_records_duration_and_args(self):
        tr = Tracer()
        with tr.span("phase", n=8):
            pass
        (span,) = tr.spans()
        assert span["name"] == "phase"
        assert span["args"] == {"n": 8}
        assert span["dur_s"] >= 0.0

    def test_nesting_depths(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {s["name"]: s for s in tr.spans()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # Inner closes first, so it is recorded first.
        assert tr.spans()[0]["name"] == "inner"

    def test_span_recorded_even_when_body_raises(self):
        tr = Tracer()
        try:
            with tr.span("bad"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s["name"] for s in tr.spans()] == ["bad"]
        assert tr._depth == 0

    def test_complete_records_pre_timed_span(self):
        tr = Tracer()
        tr.complete("cell", 1.25, label="cg-8/mesh")
        (span,) = tr.spans()
        assert span["dur_s"] == 1.25
        assert span["start_s"] >= 0.0

    def test_instant_event_carries_cycle(self):
        tr = Tracer()
        tr.event("sim.deadlock", cycle=400, packet=3)
        (inst,) = tr.instants()
        assert inst["args"] == {"packet": 3, "cycle": 400}

    def test_disabled_tracer_records_nothing(self):
        with NULL_TRACER.span("x"):
            NULL_TRACER.event("y", cycle=1)
        NULL_TRACER.complete("z", 1.0)
        assert NULL_TRACER.events == []


class TestExport:
    def _traced(self):
        tr = Tracer()
        with tr.span("synthesis.bisect", level=0):
            tr.event("synthesis.color.gap", estimate=1, exact=2)
        return tr

    def test_jsonl_one_object_per_line(self):
        lines = self._traced().to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert len(parsed) == 2
        assert {e["type"] for e in parsed} == {"span", "instant"}

    def test_chrome_trace_validates(self):
        trace = self._traced().chrome_trace()
        assert validate_chrome_trace(trace) == []

    def test_chrome_trace_has_metadata_and_microseconds(self):
        tr = Tracer()
        tr.complete("cell", 0.5)
        trace = tr.chrome_trace(process_name="repro-test")
        meta, span = trace["traceEvents"]
        assert meta["ph"] == "M"
        assert meta["args"] == {"name": "repro-test"}
        assert span["ph"] == "X"
        assert span["dur"] == 0.5 * 1e6

    def test_write_jsonl_vs_chrome(self, tmp_path):
        tr = self._traced()
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        tr.write(str(jsonl))
        tr.write(str(chrome))
        assert len(jsonl.read_text(encoding="utf-8").strip().splitlines()) == 2
        trace = json.loads(chrome.read_text(encoding="utf-8"))
        assert validate_chrome_trace(trace) == []


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]

    def test_rejects_bad_phase_and_missing_fields(self):
        trace = {"traceEvents": [{"name": "x", "ph": "Q", "pid": 0, "tid": 0}]}
        problems = validate_chrome_trace(trace)
        assert any("unknown phase" in p for p in problems)

    def test_rejects_complete_event_without_dur(self):
        trace = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0}
            ]
        }
        problems = validate_chrome_trace(trace)
        assert any("missing numeric dur" in p for p in problems)
