"""Tests for the zero-dependency metrics registry."""

import json

from repro.obs import NULL_REGISTRY, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        m = MetricsRegistry()
        c = m.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_instruments_shared_by_name(self):
        m = MetricsRegistry()
        m.counter("shared").inc()
        m.counter("shared").inc()
        assert m.counter("shared").value == 2

    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        g = m.gauge("g")
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_histogram_summary_stats(self):
        m = MetricsRegistry()
        h = m.histogram("lat")
        for v in (1, 2, 3, 10):
            h.observe(v)
        assert h.count == 4
        assert h.total == 16
        assert h.min == 1
        assert h.max == 10
        assert h.mean == 4.0

    def test_histogram_power_of_two_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("lat")
        for v in (0, 1, 2, 3, 4, 7, 8, 1024):
            h.observe(v)
        # [0,2) -> bucket 0 twice, [2,4) -> 1 twice, [4,8) -> 2 twice,
        # [8,16) -> 3 once, [1024,2048) -> 10 once.
        assert h.buckets == {0: 2, 1: 2, 2: 2, 3: 1, 10: 1}

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0

    def test_series_keeps_order(self):
        m = MetricsRegistry()
        s = m.series("temp")
        s.append(0, 10.0)
        s.append(128, 9.5)
        assert s.points == [(0, 10.0), (128, 9.5)]


class TestDisabledRegistry:
    def test_disabled_returns_nulls_and_records_nothing(self):
        m = MetricsRegistry(enabled=False)
        m.counter("c").inc(100)
        m.gauge("g").set(5)
        m.histogram("h").observe(3)
        m.series("s").append(1, 2)
        m.record_wall("w", 1.5)
        snap = m.snapshot(include_wall=True)
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["series"] == {}
        assert snap["wall"] == {}

    def test_null_registry_shared_instruments_stay_empty(self):
        NULL_REGISTRY.counter("anything").inc()
        assert NULL_REGISTRY.snapshot()["counters"] == {}


class TestSnapshots:
    def _populated(self):
        m = MetricsRegistry()
        m.counter("b").inc(2)
        m.counter("a").inc()
        m.gauge("g").set(7)
        m.histogram("h").observe(5)
        m.series("s").append(0, 1)
        m.record_wall("phase", 0.25)
        return m

    def test_snapshot_excludes_wall_by_default(self):
        snap = self._populated().snapshot()
        assert "wall" not in snap

    def test_snapshot_include_wall_accumulates(self):
        m = self._populated()
        m.record_wall("phase", 0.75)
        assert m.snapshot(include_wall=True)["wall"] == {"phase": 1.0}

    def test_canonical_json_is_byte_stable(self):
        a = self._populated()
        b = self._populated()
        # Wall clock differs between the two registries; canonical
        # output must not.
        b.record_wall("phase", 99.0)
        assert a.canonical_json() == b.canonical_json()

    def test_canonical_json_sorted_keys(self):
        data = json.loads(self._populated().canonical_json())
        assert list(data["counters"]) == ["a", "b"]

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "metrics.json"
        self._populated().write_json(str(path))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["counters"] == {"a": 1, "b": 2}
        assert data["wall"] == {"phase": 0.25}
