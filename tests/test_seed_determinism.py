"""Seed determinism of synthesis and placement.

The parallel evaluation runner rebuilds setups in worker processes and
caches them by (benchmark, size, seed); both are only sound if the same
seed always yields the identical network and floorplan.  The seed
matrix is exercised in CI so a nondeterminism regression on any seed
path fails fast.
"""

import pytest

from repro.floorplan import place
from repro.synthesis import generate_network
from repro.workloads import benchmark

SEEDS = [0, 1, 2]


def _design_signature(design):
    """Everything observable about a generated design, comparably."""
    routes = {
        str(comm): (route.switch_path, route.link_ids)
        for comm in design.pattern.communications
        for route in [design.topology.routing.route(comm)]
    }
    return {
        "describe": design.topology.network.describe(),
        "switch_map": dict(design.switch_map),
        "pipe_links": dict(design.pipe_links),
        "contention_free": design.certificate.contention_free,
        "routes": routes,
    }


def _floorplan_signature(plan):
    return {
        "grid": plan.grid,
        "switch_corner": dict(plan.switch_corner),
        "processor_cell": dict(plan.processor_cell),
        "link_costs": dict(plan.link_costs),
        "feasible": plan.feasible,
        "link_delays": dict(plan.link_delays()),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_generate_network_is_seed_deterministic(seed):
    pattern = benchmark("cg", 8).pattern
    first = generate_network(pattern, seed=seed, restarts=2)
    second = generate_network(pattern, seed=seed, restarts=2)
    assert _design_signature(first) == _design_signature(second)


@pytest.mark.parametrize("seed", SEEDS)
def test_place_is_seed_deterministic(seed):
    pattern = benchmark("cg", 8).pattern
    design = generate_network(pattern, seed=0, restarts=2)
    first = place(design.network, seed=seed)
    second = place(design.network, seed=seed)
    assert _floorplan_signature(first) == _floorplan_signature(second)


def test_different_restart_budgets_are_still_deterministic():
    """The restart budget is part of the setup cache key; each budget
    must be internally reproducible."""
    pattern = benchmark("fft", 8).pattern
    for restarts in (1, 3):
        a = generate_network(pattern, seed=0, restarts=restarts)
        b = generate_network(pattern, seed=0, restarts=restarts)
        assert _design_signature(a) == _design_signature(b)
