"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize"])

    def test_synthesize_sources_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["synthesize", "--benchmark", "cg", "--trace", "x.jsonl"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["synthesize", "--benchmark", "cg"])
        assert args.nodes == 16
        assert args.max_degree == 5


class TestSynthesizeCommand:
    def test_benchmark_synthesis_prints_network(self, capsys):
        rc = main(
            ["synthesize", "--benchmark", "cg", "--nodes", "8", "--restarts", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "contention-free: True" in out
        assert "switches" in out

    def test_floorplan_flag_renders(self, capsys):
        rc = main(
            [
                "synthesize", "--benchmark", "cg", "--nodes", "8",
                "--restarts", "4", "--floorplan",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "link area" in out
        assert "at corner" in out

    def test_trace_synthesis(self, tmp_path, capsys):
        from repro.workloads import cg, write_trace

        path = tmp_path / "cg.jsonl"
        write_trace(cg(8, iterations=1).trace, path)
        rc = main(["synthesize", "--trace", str(path), "--restarts", "4"])
        assert rc == 0
        assert "contention-free" in capsys.readouterr().out

    def test_missing_trace_reports_error(self, capsys):
        rc = main(["synthesize", "--trace", "/nonexistent/file.jsonl"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulate_mesh(self, capsys):
        rc = main(
            ["simulate", "--benchmark", "cg", "--nodes", "8", "--topology", "mesh"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cg-8 on mesh" in out
        assert "deadlocks" in out


class TestInfeasibleSynthesis:
    def test_clean_error_message(self, capsys):
        rc = main(
            [
                "synthesize", "--benchmark", "cg", "--nodes", "8",
                "--max-degree", "2", "--restarts", "2",
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestResilienceCommand:
    def test_generated_campaign_reports_degradation(self, capsys):
        rc = main(
            [
                "resilience", "--benchmark", "cg", "--nodes", "8",
                "--topologies", "generated",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Resilience of" in out
        assert "scenario" in out and "status" in out
        assert "survive connected" in out

    def test_unknown_topology_reports_error(self, capsys):
        rc = main(
            ["resilience", "--benchmark", "cg", "--topologies", "blimp"]
        )
        assert rc == 1
        assert "unknown topology" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["resilience"])
        assert args.benchmark == "cg"
        assert args.nodes == 8
        assert args.faults == "link"
        assert args.transient is None
