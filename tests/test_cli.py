"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize"])

    def test_synthesize_sources_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["synthesize", "--benchmark", "cg", "--trace", "x.jsonl"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["synthesize", "--benchmark", "cg"])
        assert args.nodes == 16
        assert args.max_degree == 5


class TestSynthesizeCommand:
    def test_benchmark_synthesis_prints_network(self, capsys):
        rc = main(
            ["synthesize", "--benchmark", "cg", "--nodes", "8", "--restarts", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "contention-free: True" in out
        assert "switches" in out

    def test_floorplan_flag_renders(self, capsys):
        rc = main(
            [
                "synthesize", "--benchmark", "cg", "--nodes", "8",
                "--restarts", "4", "--floorplan",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "link area" in out
        assert "at corner" in out

    def test_trace_synthesis(self, tmp_path, capsys):
        from repro.workloads import cg, write_trace

        path = tmp_path / "cg.jsonl"
        write_trace(cg(8, iterations=1).trace, path)
        rc = main(["synthesize", "--trace", str(path), "--restarts", "4"])
        assert rc == 0
        assert "contention-free" in capsys.readouterr().out

    def test_missing_trace_reports_error(self, capsys):
        rc = main(["synthesize", "--trace", "/nonexistent/file.jsonl"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestPortfolioSynthesis:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["synthesize", "--benchmark", "cg"])
        assert args.portfolio is None
        assert args.seed_base is None
        assert args.objective == "links"
        assert args.target_objective is None

    def test_portfolio_prints_run_table_and_winner(self, capsys):
        rc = main(
            [
                "synthesize", "--benchmark", "cg", "--nodes", "8",
                "--portfolio", "2", "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "synth:cg-8:s0" in out and "synth:cg-8:s1" in out
        assert "*" in out  # winner marker
        assert "contention-free: True" in out

    def test_seed_base_shifts_the_grid(self, capsys):
        rc = main(
            [
                "synthesize", "--benchmark", "cg", "--nodes", "8",
                "--portfolio", "2", "--seed-base", "5", "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "synth:cg-8:s5" in out and "synth:cg-8:s6" in out

    def test_all_infeasible_portfolio_is_clean_error(self, capsys):
        rc = main(
            [
                "synthesize", "--benchmark", "cg", "--nodes", "8",
                "--portfolio", "2", "--max-degree", "2", "--no-cache",
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulate_mesh(self, capsys):
        rc = main(
            ["simulate", "--benchmark", "cg", "--nodes", "8", "--topology", "mesh"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "cg-8 on mesh" in out
        assert "deadlocks" in out


class TestInfeasibleSynthesis:
    def test_clean_error_message(self, capsys):
        rc = main(
            [
                "synthesize", "--benchmark", "cg", "--nodes", "8",
                "--max-degree", "2", "--restarts", "2",
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestResilienceCommand:
    def test_generated_campaign_reports_degradation(self, capsys):
        rc = main(
            [
                "resilience", "--benchmark", "cg", "--nodes", "8",
                "--topologies", "generated",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Resilience of" in out
        assert "scenario" in out and "status" in out
        assert "survive connected" in out

    def test_unknown_topology_reports_error(self, capsys):
        rc = main(
            ["resilience", "--benchmark", "cg", "--topologies", "blimp"]
        )
        assert rc == 1
        assert "unknown topology" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["resilience"])
        assert args.benchmark == "cg"
        assert args.nodes == 8
        assert args.faults == "link"
        assert args.transient is None


class TestVerifyCommand:
    def test_generated_certificate_passes(self, capsys):
        rc = main(["verify", "--benchmark", "cg", "--nodes", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[PASS] contention" in out
        assert "[PASS] deadlock" in out

    def test_mesh_contention_reported_but_not_gating(self, capsys):
        rc = main(["verify", "--benchmark", "cg", "--nodes", "8",
                   "--topology", "mesh"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[FAIL] contention" in out
        assert "[PASS] deadlock" in out

    def test_mesh_fails_when_contention_required(self, capsys):
        rc = main(["verify", "--benchmark", "cg", "--nodes", "8",
                   "--topology", "mesh", "--require-contention-free"])
        assert rc == 1

    def test_json_certificate_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "cert.json"
        rc = main(["verify", "--benchmark", "cg", "--nodes", "8",
                   "--json", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["pattern_name"] == "cg-8"
        assert str(path) in capsys.readouterr().err

    def test_dynamic_cross_validation(self, capsys):
        rc = main(["verify", "--benchmark", "cg", "--nodes", "8", "--dynamic"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replayed" in out
        assert "0 contention stalls" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["verify", "--benchmark", "cg"])
        assert args.nodes == 16
        assert args.topology == "generated"
        assert args.require_cf is None
        assert not args.dynamic


class TestSweepCommand:
    FAST = [
        "sweep", "--nodes", "8", "--points", "2", "--refine", "1", "--no-cache",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.pattern == "uniform"
        assert args.topology == "mesh"
        assert args.nodes == 16
        assert args.points == 6 and args.refine == 4
        assert not args.strict_patterns

    def test_list_patterns(self, capsys):
        rc = main(["sweep", "--list-patterns"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tornado" in out
        assert "hotspot" in out
        assert "routing-aware" in out

    def test_mesh_tornado_sweep_prints_curve(self, capsys):
        rc = main(self.FAST + ["--pattern", "tornado"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "saturation sweep: tornado on mesh" in out
        assert "offered" in out and "accepted" in out

    def test_json_and_csv_artifacts(self, tmp_path, capsys):
        import json

        jpath, cpath = tmp_path / "curve.json", tmp_path / "points.csv"
        rc = main(
            self.FAST
            + ["--pattern", "hotspot:1:0.8", "--json", str(jpath), "--csv", str(cpath)]
        )
        assert rc == 0
        payload = json.loads(jpath.read_text())
        assert payload["kind"] == "saturation-curve"
        assert payload["pattern"] == "hotspot:1:0.8"
        assert payload["schema"] == 2
        for point in payload["points"]:
            assert point["p50_latency"] <= point["p95_latency"] <= point["p99_latency"]
        assert cpath.read_text().startswith("offered,accepted,")

    def test_criterion_recorded_in_artifact(self, tmp_path):
        import json

        jpath = tmp_path / "curve.json"
        rc = main(
            self.FAST + ["--criterion", "p99-knee", "--json", str(jpath)]
        )
        assert rc == 0
        assert json.loads(jpath.read_text())["params"]["criterion"] == "p99-knee"

    def test_unknown_criterion_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--criterion", "p42-knee"])

    def test_plot_writes_ascii_chart(self, tmp_path, capsys):
        path = tmp_path / "curve.txt"
        rc = main(self.FAST + ["--plot", str(path)])
        assert rc == 0
        text = path.read_text()
        assert "latency vs offered rate" in text
        assert "5 = p50" in text
        assert str(path) in capsys.readouterr().err

    def test_plot_svg_extension_switches_format(self, tmp_path):
        import xml.etree.ElementTree as ET

        path = tmp_path / "curve.svg"
        rc = main(self.FAST + ["--plot", str(path)])
        assert rc == 0
        root = ET.fromstring(path.read_text())
        assert root.tag.endswith("svg")

    def test_strict_pattern_violation_is_clean_error(self, capsys):
        rc = main(self.FAST + ["--pattern", "transpose", "--strict-patterns"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "requires" in err

    def test_unknown_pattern_is_clean_error(self, capsys):
        rc = main(self.FAST + ["--pattern", "bogus"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "unknown pattern" in err


class TestServeSubmitCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.workers == 2
        assert args.port_file is None
        assert not args.no_cache

    def test_submit_parser_defaults(self):
        args = build_parser().parse_args(["submit"])
        assert args.url == "http://127.0.0.1:8787"
        assert args.spec is None
        assert args.benchmark == "cg"
        assert not args.no_wait

    def test_submit_against_live_service(self, tmp_path, monkeypatch, capsys):
        import json

        import repro.service.manager as manager_mod
        from repro.service import ServiceConfig, ServiceThread

        def fake(spec, cache=None, jobs=None, progress=None, obs=None):
            return {"schema": 1, "kind": spec["kind"], "spec": dict(spec)}

        monkeypatch.setattr(manager_mod, "execute_spec", fake)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            json.dumps({"kind": "synthesize", "benchmark": "cg", "nodes": 8})
        )
        out_file = tmp_path / "bundle.json"
        with ServiceThread(ServiceConfig(port=0, cache_dir=None)) as svc:
            rc = main(
                [
                    "submit", "--url", svc.base_url, "--spec", str(spec_file),
                    "--out", str(out_file),
                ]
            )
            err = capsys.readouterr().err
            assert rc == 0
            assert "dedupe: miss" in err
            bundle = json.loads(out_file.read_bytes())
            assert bundle["kind"] == "synthesize"

    def test_submit_unreachable_service_is_clean_error(self, capsys):
        rc = main(
            ["submit", "--url", "http://127.0.0.1:9", "--no-wait"]
        )
        assert rc == 1
        assert "cannot reach service" in capsys.readouterr().err


class TestCacheCommand:
    def test_info_enumerates_synthesis_and_bundles(self, tmp_path, capsys):
        from repro.eval.parallel import ResultCache, SynthesisCell, run_cells
        from repro.synthesis import DesignConstraints
        from repro.workloads import benchmark

        cache = ResultCache(str(tmp_path))
        run_cells(
            [
                SynthesisCell(
                    label="synth:ok", pattern=benchmark("cg", 8).pattern,
                    seed=0, constraints=DesignConstraints(max_degree=5),
                    restarts=2,
                )
            ],
            cache=cache,
        )
        cache.put_bundle("a" * 64, {"schema": 1})
        rc = main(["cache", "info", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "synthesis: 1 (1 designs, 0 infeasible seeds" in out
        assert "job bundles: 1" in out
        assert "evaluation: 0" in out

    def test_clear_reports_removed_count(self, tmp_path, capsys):
        from repro.eval.parallel import ResultCache

        ResultCache(str(tmp_path)).put_result("e" * 64, {"status": "ok"})
        rc = main(["cache", "clear", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "removed 1 cached entries" in out
