"""mypy spot-check of the sweep and synthesis subsystems.

CI installs mypy via the ``test`` extra and this test gates the
annotations of ``repro.sweeps``, ``repro.simulator.openloop``,
``repro.synthesis``, ``repro.service`` and ``repro.eval.parallel``
(the modules whose signatures the sweep artifacts, the portfolio
cache keys and the service job keys depend on).  The local toolchain
may not carry mypy — the test skips rather than fails, so a plain
``pytest`` run never needs network access.  Scope and strictness live
in ``[tool.mypy]`` in ``pyproject.toml``.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy", reason="mypy is a CI-only dependency")

ROOT = Path(__file__).resolve().parent.parent

SPOT_CHECK = (
    "src/repro/sweeps",
    "src/repro/simulator/openloop.py",
    "src/repro/synthesis",
    "src/repro/eval/parallel.py",
    "src/repro/service",
)


def test_sweep_subsystem_typechecks():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *SPOT_CHECK],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"mypy failed:\n{proc.stdout}\n{proc.stderr}"
