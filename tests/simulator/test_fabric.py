"""Unit tests for channels, routers and NICs."""

import pytest

from repro.errors import SimulationError
from repro.simulator import SimConfig
from repro.simulator.fabric import Channel, Nic, Router
from repro.simulator.packet import Flit, Packet


def _packet(pid=0, flits=3):
    return Packet(
        packet_id=pid,
        source=0,
        dest=1,
        size_bytes=8,
        num_flits=flits,
        seq=0,
        inject_cycle=0,
    )


def _channel(delay=1, config=None):
    config = config or SimConfig()
    return Channel.build(("link", 0, 0), ("router", 0), ("router", 1), delay, config)


class TestChannel:
    def test_build_initializes_credits(self):
        cfg = SimConfig(num_vcs=3, vc_buffer_flits=4)
        ch = _channel(config=cfg)
        assert ch.credits == [4, 4, 4]
        assert ch.owner == [None, None, None]

    def test_long_links_get_round_trip_buffers(self):
        """Buffer depth covers the credit round trip so long links keep
        full bandwidth."""
        cfg = SimConfig(vc_buffer_flits=4)
        ch = _channel(delay=5, config=cfg)
        assert ch.buffer_depth == 10
        assert ch.credits[0] == 10

    def test_zero_delay_rejected(self):
        with pytest.raises(SimulationError):
            _channel(delay=0)

    def test_free_vc_order(self):
        ch = _channel()
        assert ch.free_vc() == 0
        ch.owner[0] = 7
        assert ch.free_vc() == 1
        ch.owner[1] = 8
        ch.owner[2] = 9
        assert ch.free_vc() is None

    def test_busy_vcs(self):
        ch = _channel()
        assert ch.busy_vcs() == 0
        ch.owner[1] = 3
        assert ch.busy_vcs() == 1


class TestRouter:
    def _router(self):
        cfg = SimConfig(num_vcs=2, vc_buffer_flits=2)
        r = Router(0, cfg)
        r.add_input(("link", 0, 0))
        r.add_output(("link", 1, 0))
        return r

    def test_accept_buffers_flit(self):
        r = self._router()
        pkt = _packet()
        r.accept(("link", 0, 0), 0, Flit(pkt, 0), depth=2)
        assert r.inputs[("link", 0, 0)][0].front.is_head

    def test_accept_overflow_raises(self):
        r = self._router()
        pkt = _packet()
        r.accept(("link", 0, 0), 0, Flit(pkt, 0), depth=1)
        with pytest.raises(SimulationError):
            r.accept(("link", 0, 0), 0, Flit(pkt, 1), depth=1)

    def test_active_vcs_lists_nonempty_only(self):
        r = self._router()
        assert r.active_vcs() == []
        pkt = _packet()
        r.accept(("link", 0, 0), 1, Flit(pkt, 0), depth=2)
        active = r.active_vcs()
        assert len(active) == 1
        assert active[0][1] == 1  # vc index

    def test_round_robin_arbitration(self):
        r = self._router()
        out = ("link", 1, 0)
        assert r.arbitrate(out, [0, 1, 2]) == 0
        assert r.arbitrate(out, [0, 1, 2]) == 1
        assert r.arbitrate(out, [0, 1, 2]) == 2
        assert r.arbitrate(out, [0, 1, 2]) == 0  # wraps

    def test_arbitrate_empty_raises(self):
        r = self._router()
        with pytest.raises(SimulationError):
            r.arbitrate(("link", 1, 0), [])


class TestNic:
    def test_queue_and_pending_cycles(self):
        nic = Nic(0, ("inj", 0))
        nic.enqueue(_packet(pid=1))
        p2 = _packet(pid=2)
        p2.inject_cycle = 50
        nic.enqueue(p2)
        assert sorted(nic.pending_inject_cycles()) == [0, 50]

    def test_abort_stream_returns_vc(self):
        nic = Nic(0, ("inj", 0))
        pkt = _packet(pid=3)
        nic.streaming = (pkt, 2)
        assert nic.abort_stream(3) == 2
        assert nic.streaming is None

    def test_abort_stream_ignores_other_packets(self):
        nic = Nic(0, ("inj", 0))
        pkt = _packet(pid=3)
        nic.streaming = (pkt, 2)
        assert nic.abort_stream(99) is None
        assert nic.streaming is not None


class TestFlit:
    def test_head_and_tail_flags(self):
        pkt = _packet(flits=3)
        assert Flit(pkt, 0).is_head
        assert not Flit(pkt, 0).is_tail
        assert Flit(pkt, 2).is_tail

    def test_single_flit_packet_is_head_and_tail(self):
        pkt = _packet(flits=1)
        f = Flit(pkt, 0)
        assert f.is_head and f.is_tail
