"""Deadlock detection -> regressive recovery, exercised end to end.

The recovery discipline (Section 3.3 of the paper's simulator setup):
when no flit moves for ``deadlock_threshold`` cycles, the youngest
in-flight packet is killed, its buffered flits drain, its resources are
released, and the source retransmits it after a backoff.  These tests
create real stalls — the destination's ejection channel is held by a
phantom owner — and watch ``step()`` run the whole cycle.
"""

from repro.simulator import Engine, SimConfig
from repro.simulator.simulation import routing_policy_for
from repro.topology import mesh


def _engine(**cfg_kw):
    top = mesh(2, 1)
    config = SimConfig(**cfg_kw)
    return Engine(top, routing_policy_for(top), config), config


def _block_ejection(engine, processor):
    ch = engine.channels[("ej", processor)]
    saved = list(ch.owner)
    ch.owner = [10**9] * len(ch.owner)  # phantom owner on every VC
    return ch, saved


def _step_until(engine, predicate, start=0, limit=10_000):
    for t in range(start, limit):
        engine.step(t)
        if predicate():
            return t
    raise AssertionError(f"condition not reached within {limit} cycles")


class TestDetection:
    def test_stall_past_threshold_triggers_recovery(self):
        engine, config = _engine(deadlock_threshold=50)
        _block_ejection(engine, 1)
        engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=0, seq=0)
        t = _step_until(engine, lambda: engine.deadlocks_detected > 0)
        # Detection waited out the full timeout, not less.
        assert t >= config.deadlock_threshold
        assert engine.deadlocks_detected == 1
        assert engine.retransmissions == 1

    def test_no_false_positives_while_traffic_flows(self):
        engine, _ = _engine(deadlock_threshold=50)
        engine.submit(source=0, dest=1, size_bytes=400, inject_cycle=0, seq=0)
        _step_until(engine, lambda: not engine.busy())
        assert engine.deadlocks_detected == 0
        assert engine.retransmissions == 0


class TestVictimSelection:
    def test_youngest_stuck_packet_is_killed(self):
        engine, _ = _engine(deadlock_threshold=50)
        _block_ejection(engine, 1)
        old = engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=0, seq=0)
        young = engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=5, seq=1)
        _step_until(engine, lambda: engine.deadlocks_detected > 0)
        assert engine._packets[young].killed
        assert not engine._packets[old].killed


class TestRetransmission:
    def test_replacement_keeps_identity_and_backs_off(self):
        engine, config = _engine(deadlock_threshold=50)
        _block_ejection(engine, 1)
        victim_id = engine.submit(source=0, dest=1, size_bytes=40, inject_cycle=0, seq=7)
        t = _step_until(engine, lambda: engine.deadlocks_detected > 0)
        victim = engine._packets[victim_id]
        replacement = engine._packets[max(engine._packets)]
        assert replacement.packet_id != victim.packet_id
        assert (replacement.source, replacement.dest, replacement.seq) == (0, 1, 7)
        assert replacement.num_flits == victim.num_flits
        assert replacement.inject_cycle == t + config.retransmit_backoff
        assert replacement.route_hops is not None  # re-prepared by routing

    def test_retransmission_delivers_after_unblock(self):
        engine, config = _engine(deadlock_threshold=50)
        ch, saved = _block_ejection(engine, 1)
        engine.submit(source=0, dest=1, size_bytes=40, inject_cycle=0, seq=3)
        deliveries = []
        engine.set_delivery_handler(lambda s, d, q, t: deliveries.append((s, d, q)))
        t = _step_until(engine, lambda: engine.deadlocks_detected > 0)
        ch.owner = saved
        _step_until(engine, lambda: not engine.busy(), start=t + 1)
        assert deliveries == [(0, 1, 3)]
        assert engine.delivered_packets == 1
        # Killed flits drained; every credit and VC came back.
        assert engine.flits_in_network == 0
        for cid, channel in engine.channels.items():
            assert channel.credits == [channel.buffer_depth] * config.num_vcs
            assert all(owner is None for owner in channel.owner)

    def test_repeated_stall_retries_each_timeout(self):
        engine, config = _engine(deadlock_threshold=50)
        _block_ejection(engine, 1)
        engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=0, seq=0)
        _step_until(engine, lambda: engine.deadlocks_detected >= 3)
        assert engine.retransmissions == engine.deadlocks_detected
        # Exactly one live (non-killed, undelivered) copy at any time.
        live = [
            p
            for p in engine._packets.values()
            if not p.killed and not p.delivered
        ]
        assert len(live) == 1
