"""Unit tests for the engine's internals: credits, deadlock recovery,
idle bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.simulator import Engine, SimConfig
from repro.simulator.simulation import routing_policy_for
from repro.topology import crossbar, mesh


def _engine(top=None, **cfg_kw):
    top = top or mesh(2, 1)
    config = SimConfig(**cfg_kw)
    return Engine(top, routing_policy_for(top), config), config


class TestFabricConstruction:
    def test_channel_inventory(self):
        engine, _ = _engine(mesh(2, 2))
        # 4 links x 2 directions + 4 inj + 4 ej.
        assert len(engine.channels) == 4 * 2 + 4 + 4

    def test_router_ports(self):
        engine, _ = _engine(mesh(2, 2))
        # Corner switch: 2 link inputs + 1 injection input.
        r = engine.routers[0]
        assert len(r.inputs) == 3
        assert len(r.output_channels) == 3

    def test_crossbar_has_only_endpoint_channels(self):
        engine, _ = _engine(crossbar(4))
        assert len(engine.channels) == 8


class TestSubmitAndStep:
    def test_submit_prepares_route(self):
        engine, _ = _engine()
        pid = engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=0, seq=0)
        pkt = engine._packets[pid]
        assert pkt.route_hops is not None
        assert pkt.dest_switch == engine.network.switch_of(1)

    def test_full_transfer_returns_all_credits(self):
        engine, config = _engine()
        deliveries = []
        engine.set_delivery_handler(lambda s, d, q, t: deliveries.append((s, d, q, t)))
        engine.submit(source=0, dest=1, size_bytes=16, inject_cycle=0, seq=0)
        t = 0
        while engine.busy() and t < 10_000:
            engine.step(t)
            t += 1
        assert deliveries and deliveries[0][:3] == (0, 1, 0)
        assert engine.flits_in_network == 0
        # Every channel's credits must be fully restored.
        for ch in engine.channels.values():
            assert ch.credits == [ch.buffer_depth] * config.num_vcs
            assert all(owner is None for owner in ch.owner)

    def test_flit_conservation(self):
        engine, config = _engine()
        engine.submit(source=0, dest=1, size_bytes=40, inject_cycle=0, seq=0)
        engine.submit(source=1, dest=0, size_bytes=40, inject_cycle=0, seq=0)
        t = 0
        while engine.busy() and t < 10_000:
            engine.step(t)
            t += 1
        total_flits = 2 * config.flits_for(40)
        assert engine.delivered_packets == 2
        assert engine.flit_hops >= total_flits  # at least one hop each

    def test_next_times_for_idle_skip(self):
        engine, _ = _engine()
        assert engine.next_heap_time() is None
        assert engine.next_inject_time(0) is None
        engine.submit(source=0, dest=1, size_bytes=4, inject_cycle=500, seq=0)
        assert engine.next_inject_time(0) == 500
        assert engine.next_inject_time(500) is None  # strictly greater


class TestDeadlockRecovery:
    def test_recovery_requires_presence(self):
        engine, _ = _engine(deadlock_threshold=10)
        # No traffic: forcing the recovery path must raise the
        # accounting error rather than kill thin air.
        engine.flits_in_network = 1  # corrupt on purpose
        with pytest.raises(SimulationError):
            engine._recover_deadlock(100)

    def test_kill_and_retransmit_bookkeeping(self):
        engine, config = _engine(deadlock_threshold=50)
        deliveries = []
        engine.set_delivery_handler(lambda s, d, q, t: deliveries.append(q))
        engine.submit(source=0, dest=1, size_bytes=400, inject_cycle=0, seq=0)
        # Run a few cycles so flits enter the network, then force
        # recovery and let it finish.
        for t in range(5):
            engine.step(t)
        assert engine.flits_in_network > 0
        engine._recover_deadlock(4)
        assert engine.deadlocks_detected == 1
        assert engine.retransmissions == 1
        t = 5
        while engine.busy() and t < 50_000:
            engine.step(t)
            t += 1
        # The retransmitted packet carries the same seq and delivers.
        assert deliveries == [0]
        assert engine.flits_in_network == 0
