"""Tests for simulation statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulator import SimConfig
from repro.simulator.stats import SimulationResult, nearest_rank_percentile


def _result(**overrides):
    base = dict(
        topology_name="mesh-2x2",
        program_name="p",
        execution_cycles=1000,
        comm_cycles_per_process=(100, 300),
        delivered_packets=4,
        deadlocks_detected=0,
        retransmissions=0,
        flit_hops=64,
        link_utilization={("link", 0, 0): 0.5},
        config=SimConfig(),
        packet_latencies=(10, 20, 30, 40),
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestDerivedStats:
    def test_avg_and_max_comm(self):
        r = _result()
        assert r.avg_comm_cycles == 200.0
        assert r.max_comm_cycles == 300

    def test_comm_fraction(self):
        assert _result().comm_fraction == pytest.approx(0.2)

    def test_comm_fraction_zero_cycles(self):
        assert _result(execution_cycles=0).comm_fraction == 0.0

    def test_packet_latency_stats(self):
        r = _result()
        assert r.avg_packet_latency == 25.0
        assert r.max_packet_latency == 40

    def test_empty_latencies(self):
        r = _result(packet_latencies=())
        assert r.avg_packet_latency == 0.0
        assert r.max_packet_latency == 0

    def test_execution_us_uses_clock(self):
        r = _result(config=SimConfig(clock_mhz=1000.0))
        assert r.execution_us == pytest.approx(1.0)

    def test_summary_mentions_key_facts(self):
        text = _result().summary()
        assert "mesh-2x2" in text
        assert "0 deadlocks" in text
        assert "4 messages" in text


class TestLatencyPercentiles:
    def test_nearest_rank(self):
        r = _result(packet_latencies=(10, 20, 30, 40))
        assert r.latency_percentile(25) == 10
        assert r.latency_percentile(50) == 20
        assert r.latency_percentile(75) == 30
        assert r.latency_percentile(100) == 40

    def test_order_independent(self):
        r = _result(packet_latencies=(40, 10, 30, 20))
        assert r.latency_percentile(50) == 20

    def test_properties(self):
        r = _result(packet_latencies=tuple(range(1, 101)))
        assert r.p50_packet_latency == 50
        assert r.p95_packet_latency == 95
        assert r.p99_packet_latency == 99

    def test_zero_percentile_is_minimum(self):
        r = _result()
        assert r.latency_percentile(0) == 10

    def test_empty_latencies_give_zero(self):
        r = _result(packet_latencies=())
        assert r.p50_packet_latency == 0
        assert r.p99_packet_latency == 0

    def test_single_sample_at_every_boundary_rank(self):
        r = _result(packet_latencies=(7,))
        assert r.latency_percentile(0) == 7
        assert r.latency_percentile(50) == 7
        assert r.latency_percentile(100) == 7

    def test_tiny_percentile_clamps_to_first_rank(self):
        # ceil(0.1/100 * 4) = 1: must not index below the first sample.
        r = _result(packet_latencies=(10, 20, 30, 40))
        assert r.latency_percentile(0.1) == 10

    def test_p100_hits_last_rank_exactly(self):
        # ceil(100/100 * n) = n: must not index past the last sample.
        for n in (1, 2, 7, 100):
            r = _result(packet_latencies=tuple(range(1, n + 1)))
            assert r.latency_percentile(100) == n

    def test_out_of_range_rejected(self):
        r = _result()
        with pytest.raises(ValueError):
            r.latency_percentile(-1)
        with pytest.raises(ValueError):
            r.latency_percentile(101)


class TestNearestRankPercentile:
    """The module-level helper shared by SimulationResult and LoadPoint."""

    def test_matches_result_convention(self):
        values = (40, 10, 30, 20)
        r = _result(packet_latencies=values)
        for p in (0, 0.1, 25, 50, 75, 95, 99, 100):
            assert nearest_rank_percentile(values, p) == r.latency_percentile(p)

    def test_empty_gives_zero(self):
        assert nearest_rank_percentile([], 99) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank_percentile([1], 100.5)

    @given(
        latencies=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200
        )
    )
    def test_percentiles_are_monotone_and_bounded(self, latencies):
        p50 = nearest_rank_percentile(latencies, 50)
        p95 = nearest_rank_percentile(latencies, 95)
        p99 = nearest_rank_percentile(latencies, 99)
        assert min(latencies) <= p50 <= p95 <= p99 <= max(latencies)
