"""The O(1) kill path: packet-indexed VC-assignment registry.

``Engine._kill_packet`` used to scan every input VC of every router to
find the victim's held resources; it now reads them straight from
``_vc_assignments``, a registry maintained where assignments are made
and cleared.  These tests prove the registry is *exact* — on every kill
it names precisely the assignments a full fabric scan finds — and that
kill/retransmit accounting over deadlock and fault campaigns is
identical to a vendored full-scan implementation of the release.
"""

from repro.faults import FaultScenario, FaultState, LinkFault
from repro.simulator import Engine, SimConfig
from repro.simulator.simulation import routing_policy_for
from repro.topology import mesh


def _engine(*faults, top=None, **cfg_kw):
    top = top or mesh(2, 1)
    config = SimConfig(**cfg_kw)
    state = FaultState(top.network, FaultScenario.of(*faults)) if faults else None
    return Engine(top, routing_policy_for(top), config, fault_state=state)


def _scan_assignments(engine, packet_id):
    """The pre-registry full scan: every input VC whose assignment
    belongs to ``packet_id``."""
    held = set()
    for router in engine.routers.values():
        for vcs in router.inputs.values():
            for ivc in vcs:
                if ivc.assignment is not None and ivc.assignment[0] == packet_id:
                    held.add(id(ivc))
    return held


def _checked_kills(engine):
    """Wrap ``_kill_packet`` to cross-check the registry against a full
    fabric scan on every kill; returns the list of kill records."""
    original = engine._kill_packet
    kills = []

    def checked(victim):
        scanned = _scan_assignments(engine, victim.packet_id)
        registered = set(engine._vc_assignments.get(victim.packet_id, {}))
        assert registered == scanned, (
            f"registry diverged for packet {victim.packet_id}: "
            f"registered {registered} vs scanned {scanned}"
        )
        original(victim)
        assert not _scan_assignments(engine, victim.packet_id)
        assert victim.packet_id not in engine._vc_assignments
        kills.append((victim.packet_id, len(scanned)))

    engine._kill_packet = checked
    return kills


def _full_scan_kill(engine):
    """Replace the registry release with the vendored pre-registry scan
    (the registry is still popped so it cannot silently assist)."""

    def kill(victim):
        victim.killed = True
        engine._vc_assignments.pop(victim.packet_id, None)
        for router in engine.routers.values():
            for vcs in router.inputs.values():
                for ivc in vcs:
                    if ivc.assignment is not None and ivc.assignment[0] == victim.packet_id:
                        _, out_cid, out_vc = ivc.assignment
                        engine.channels[out_cid].owner[out_vc] = None
                        ivc.assignment = None
        nic = engine.nics[victim.source]
        held_vc = nic.abort_stream(victim.packet_id)
        if held_vc is not None:
            engine.channels[nic.inject_channel].owner[held_vc] = None
        engine._active_routers.update(engine.routers)
        engine._activate_nic(victim.source)

    engine._kill_packet = kill


def _block_ejection(engine, processor):
    ch = engine.channels[("ej", processor)]
    saved = list(ch.owner)
    ch.owner = [10**9] * len(ch.owner)
    return ch, saved


def _drive(engine, max_cycles=30_000):
    t = 0
    while engine.busy() and t < max_cycles:
        engine.step(t)
        t += 1
    return t


def _accounting(engine):
    return (
        engine.delivered_packets,
        engine.deadlocks_detected,
        engine.retransmissions,
        engine.fault_packet_kills,
        engine.flits_in_network,
        tuple(engine.packet_latencies),
        sorted(engine._channel_busy_cycles.items()),
    )


class TestRegistryExactness:
    def test_deadlock_kills_match_full_scan(self):
        engine = _engine(deadlock_threshold=50)
        kills = _checked_kills(engine)
        ch, saved = _block_ejection(engine, 1)
        for seq in range(3):
            engine.submit(source=0, dest=1, size_bytes=40, inject_cycle=seq, seq=seq)
        t = 0
        while engine.deadlocks_detected < 3 and t < 20_000:
            engine.step(t)
            t += 1
        ch.owner = saved
        _drive(engine, max_cycles=40_000)
        assert len(kills) >= 3
        # At least one victim actually held router VC assignments, so
        # the exactness check exercised a non-empty registry entry.
        assert any(held > 0 for _, held in kills)
        assert engine.delivered_packets == 3

    def test_fault_kills_match_full_scan(self):
        engine = _engine(
            LinkFault(0, start=4, end=200), deadlock_threshold=100
        )
        kills = _checked_kills(engine)
        engine.submit(source=0, dest=1, size_bytes=400, inject_cycle=0, seq=0)
        _drive(engine)
        assert engine.fault_packet_kills >= 1
        assert len(kills) == engine.fault_packet_kills + engine.deadlocks_detected
        assert engine.delivered_packets == 1

    def test_released_resources_leave_no_residue(self):
        engine = _engine(LinkFault(0, start=4, end=200), deadlock_threshold=100)
        _checked_kills(engine)
        engine.submit(source=0, dest=1, size_bytes=400, inject_cycle=0, seq=0)
        _drive(engine)
        assert engine.flits_in_network == 0
        assert not engine._vc_assignments
        for ch in engine.channels.values():
            assert ch.credits == [ch.buffer_depth] * engine.config.num_vcs
            assert all(owner is None for owner in ch.owner)


class TestAccountingIdentity:
    """The registry-based release and the full fabric scan produce the
    same kill/retransmit accounting over whole campaigns."""

    def _campaign(self, use_full_scan):
        engine = _engine(
            LinkFault(0, start=10, end=400),
            LinkFault(1, start=600, end=900),
            top=mesh(2, 2),
            deadlock_threshold=80,
        )
        if use_full_scan:
            _full_scan_kill(engine)
        for seq in range(6):
            engine.submit(source=0, dest=3, size_bytes=200, inject_cycle=seq * 3, seq=seq)
            engine.submit(source=3, dest=0, size_bytes=200, inject_cycle=seq * 3, seq=seq)
        _drive(engine, max_cycles=60_000)
        return _accounting(engine)

    def test_fault_campaign_accounting_identical(self):
        registry = self._campaign(use_full_scan=False)
        scan = self._campaign(use_full_scan=True)
        assert registry == scan
        delivered = registry[0]
        assert delivered == 12
        kills = registry[1] + registry[3]
        assert kills >= 1  # the campaign really exercised the kill path

    def test_deadlock_campaign_accounting_identical(self):
        def run(use_full_scan):
            engine = _engine(deadlock_threshold=50)
            if use_full_scan:
                _full_scan_kill(engine)
            ch, saved = _block_ejection(engine, 1)
            for seq in range(4):
                engine.submit(source=0, dest=1, size_bytes=40, inject_cycle=seq, seq=seq)
            t = 0
            while engine.deadlocks_detected < 4 and t < 20_000:
                engine.step(t)
                t += 1
            ch.owner = saved
            _drive(engine, max_cycles=40_000)
            return _accounting(engine)

        registry = run(use_full_scan=False)
        scan = run(use_full_scan=True)
        assert registry == scan
        assert registry[1] >= 4  # deadlocks detected
        assert registry[0] == 4  # all eventually delivered
