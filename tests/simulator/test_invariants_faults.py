"""Engine invariants across topology classes, with and without faults.

Conservation in the presence of the recovery machinery: whatever the
topology (mesh, torus, generated) and whatever faults are injected,
every logical message is delivered exactly once per (source, dest, seq),
and when the network drains no flits or credits are left behind.
"""

from collections import Counter

import pytest

from repro.faults import FaultScenario, FaultState, LinkFault
from repro.simulator import Engine, SimConfig
from repro.simulator.process import ProcessReplay
from repro.simulator.simulation import routing_policy_for
from repro.synthesis import generate_network
from repro.topology import mesh_for, torus_for
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def cg8():
    return benchmark("cg", 8)


@pytest.fixture(scope="module")
def generated_cg8(cg8):
    return generate_network(cg8.pattern, seed=0, restarts=2).topology


def _topologies(cg8_generated):
    return {
        "mesh": mesh_for(8),
        "torus": torus_for(8),
        "generated": cg8_generated,
    }


def _drive(program, topology, config, fault_state=None):
    """Run a replay with a delivery observer attached; plain t+=1 loop
    so fault windows and recovery interleave exactly as in production."""
    engine = Engine(
        topology, routing_policy_for(topology), config, fault_state=fault_state
    )
    deliveries = Counter()
    engine.add_delivery_observer(
        lambda source, dest, seq, t: deliveries.update([(source, dest, seq)])
    )
    replay = ProcessReplay(program, engine, config)
    t = 0
    replay.run_ready()
    while (not replay.all_done() or engine.busy()) and t < config.max_cycles:
        if engine.step(t):
            replay.run_ready()
        t += 1
    assert replay.all_done(), "program did not finish within max_cycles"
    return engine, deliveries


def _assert_drained(engine, deliveries, total_messages, config):
    assert sum(deliveries.values()) == total_messages
    duplicates = {key: n for key, n in deliveries.items() if n != 1}
    assert not duplicates, f"messages not delivered exactly once: {duplicates}"
    assert engine.flits_in_network == 0
    for channel in engine.channels.values():
        assert channel.credits == [channel.buffer_depth] * config.num_vcs
        assert all(owner is None for owner in channel.owner)


class TestFaultFreeInvariants:
    @pytest.mark.parametrize("kind", ["mesh", "torus", "generated"])
    def test_exactly_once_delivery(self, kind, cg8, generated_cg8):
        topology = _topologies(generated_cg8)[kind]
        config = SimConfig(max_cycles=3_000_000)
        engine, deliveries = _drive(cg8.program, topology, config)
        _assert_drained(engine, deliveries, cg8.program.total_messages, config)
        assert engine.delivered_packets == cg8.program.total_messages
        assert engine.fault_packet_kills == 0


class TestFaultedInvariants:
    @pytest.mark.parametrize("kind", ["mesh", "torus", "generated"])
    def test_exactly_once_despite_transient_link_faults(
        self, kind, cg8, generated_cg8
    ):
        """Fault every link for a mid-run window: in-flight flits are
        killed and retransmitted, yet each message still arrives exactly
        once and the network drains clean.

        CG-8 computes until ~cycle 2900 and communicates until ~30000
        on every topology here, so a [3000, 3800) outage is guaranteed
        to catch flits in flight.
        """
        topology = _topologies(generated_cg8)[kind]
        scenario = FaultScenario.of(
            *[
                LinkFault(link.link_id, start=3000, end=3800)
                for link in topology.network.links
            ],
            name="all-links-transient",
        )
        config = SimConfig(max_cycles=3_000_000)
        engine, deliveries = _drive(
            cg8.program,
            topology,
            config,
            fault_state=FaultState(topology.network, scenario),
        )
        _assert_drained(engine, deliveries, cg8.program.total_messages, config)
        # The outage window catches traffic in flight: the recovery path
        # (kill + retransmit) must actually have fired.
        assert engine.fault_packet_kills > 0
        assert engine.retransmissions >= engine.fault_packet_kills

    @pytest.mark.parametrize("kind", ["mesh", "generated"])
    def test_repeated_outages_still_conserve(self, kind, cg8, generated_cg8):
        """Two disjoint outage windows on a subset of links — recovery
        fires repeatedly without double-delivering or leaking."""
        topology = _topologies(generated_cg8)[kind]
        links = [link.link_id for link in topology.network.links]
        faults = []
        for link_id in links[: max(1, len(links) // 2)]:
            faults.append(LinkFault(link_id, start=3000, end=3600))
            faults.append(LinkFault(link_id, start=8000, end=8600))
        scenario = FaultScenario.of(*faults, name="double-window")
        config = SimConfig(max_cycles=3_000_000)
        engine, deliveries = _drive(
            cg8.program,
            topology,
            config,
            fault_state=FaultState(topology.network, scenario),
        )
        _assert_drained(engine, deliveries, cg8.program.total_messages, config)
