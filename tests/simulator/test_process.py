"""Unit tests for the process-replay layer."""

import pytest

from repro.errors import SimulationError
from repro.simulator import Engine, SimConfig
from repro.simulator.process import ProcessReplay
from repro.simulator.simulation import routing_policy_for
from repro.topology import crossbar
from repro.workloads.events import ComputeEvent, Program, RecvEvent, SendEvent


def _replay(events, n=2, config=None):
    config = config or SimConfig()
    top = crossbar(n)
    engine = Engine(top, routing_policy_for(top), config)
    program = Program(name="t", num_processes=n, events=events)
    return ProcessReplay(program, engine, config), engine


class TestRunReady:
    def test_compute_advances_virtual_time(self):
        replay, _ = _replay(((ComputeEvent(123),), ()))
        replay.run_ready()
        assert replay.states[0].ready_at == 123
        assert replay.all_done()

    def test_send_costs_overhead_and_submits(self):
        cfg = SimConfig(send_overhead=10)
        replay, engine = _replay(
            ((SendEvent(dest=1, size_bytes=8),), (RecvEvent(source=0),)),
            config=cfg,
        )
        replay.run_ready()
        assert replay.states[0].ready_at == 10
        assert replay.states[0].comm_cycles == 10
        assert engine.has_queued_packets()

    def test_recv_blocks_until_delivery(self):
        replay, engine = _replay(((), (RecvEvent(source=0),)))
        replay.run_ready()
        assert replay.states[1].blocked_on == (0, 0)
        assert not replay.all_done()
        # Simulate the delivery arriving at cycle 500.
        replay._on_delivery(0, 1, 0, 500)
        assert replay.states[1].blocked_on is None
        assert replay.states[1].ready_at == 500 + replay.config.recv_overhead
        replay.run_ready()
        assert replay.all_done()

    def test_early_delivery_consumed_without_blocking(self):
        replay, _ = _replay(((), (ComputeEvent(1000), RecvEvent(source=0))))
        # Delivery lands before the process reaches the receive.
        replay._on_delivery(0, 1, 0, 50)
        replay.run_ready()
        state = replay.states[1]
        assert state.blocked_on is None
        # No waiting: message was already there.
        assert state.wait_cycles == 0
        assert state.ready_at == 1000 + replay.config.recv_overhead

    def test_wait_time_accrued(self):
        replay, _ = _replay(((), (RecvEvent(source=0),)))
        replay.run_ready()
        replay._on_delivery(0, 1, 0, 300)
        assert replay.states[1].wait_cycles == 300

    def test_sequence_matching_is_per_pair(self):
        events = (
            (SendEvent(dest=1, size_bytes=8), SendEvent(dest=1, size_bytes=8)),
            (RecvEvent(source=0), RecvEvent(source=0)),
        )
        replay, _ = _replay(events)
        replay.run_ready()
        # Out-of-order delivery: seq 1 arrives first; the first receive
        # (seq 0) must keep blocking.
        replay._on_delivery(0, 1, 1, 100)
        assert replay.states[1].blocked_on == (0, 0)
        replay._on_delivery(0, 1, 0, 200)
        replay.run_ready()
        assert replay.all_done()

    def test_execution_cycles_is_max(self):
        replay, _ = _replay(((ComputeEvent(10),), (ComputeEvent(999),)))
        replay.run_ready()
        assert replay.execution_cycles() == 999

    def test_blocked_summary_names_processes(self):
        replay, _ = _replay(((), (RecvEvent(source=0),)))
        replay.run_ready()
        assert "process 1" in replay.blocked_summary()

    def test_program_size_mismatch_rejected(self):
        cfg = SimConfig()
        top = crossbar(4)
        engine = Engine(top, routing_policy_for(top), cfg)
        program = Program(name="t", num_processes=2, events=((), ()))
        with pytest.raises(SimulationError):
            ProcessReplay(program, engine, cfg)
