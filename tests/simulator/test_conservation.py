"""Property tests: the simulator conserves messages and resources on
randomly generated (but well-formed) programs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulator import Engine, SimConfig, simulate
from repro.simulator.simulation import routing_policy_for
from repro.topology import crossbar, mesh_for, torus_for
from repro.workloads import PhaseProgramBuilder


def _random_program(n, phase_perms, sizes):
    builder = PhaseProgramBuilder(n, "rand")
    for k, (shift, size) in enumerate(zip(phase_perms, sizes)):
        builder.compute(20 * (k + 1))
        builder.phase(
            [(i, (i + shift) % n, size) for i in range(n) if (i + shift) % n != i]
        )
    return builder.build()


program_strategy = st.tuples(
    st.sampled_from([4, 6, 8]),
    st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=4),
    st.lists(st.integers(min_value=4, max_value=300), min_size=4, max_size=4),
)


class TestConservation:
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(args=program_strategy)
    def test_every_message_delivered_exactly_once(self, args):
        n, shifts, sizes = args
        shifts = [s % n or 1 for s in shifts]
        program = _random_program(n, shifts, sizes)
        for top in (crossbar(n), mesh_for(n)):
            result = simulate(program, top, SimConfig(max_cycles=3_000_000))
            assert result.delivered_packets == program.total_messages
            assert len(result.packet_latencies) == program.total_messages
            assert all(lat >= 1 for lat in result.packet_latencies)

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(args=program_strategy)
    def test_credits_fully_restored_after_drain(self, args):
        """After every packet drains, each channel's credit count and VC
        ownership must return to the initial state — leaked credits are
        the classic flow-control bug."""
        n, shifts, sizes = args
        shifts = [s % n or 1 for s in shifts]
        program = _random_program(n, shifts, sizes)
        config = SimConfig(max_cycles=3_000_000)
        top = torus_for(n)
        engine = Engine(top, routing_policy_for(top), config)
        from repro.simulator.process import ProcessReplay

        replay = ProcessReplay(program, engine, config)
        t = 0
        replay.run_ready()
        while (not replay.all_done() or engine.busy()) and t < config.max_cycles:
            if engine.step(t):
                replay.run_ready()
            t += 1
        assert replay.all_done()
        for channel in engine.channels.values():
            assert channel.credits == [channel.buffer_depth] * config.num_vcs
            assert all(owner is None for owner in channel.owner)
        assert engine.flits_in_network == 0

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(args=program_strategy, threshold=st.integers(min_value=50, max_value=200))
    def test_delivery_holds_under_aggressive_recovery(self, args, threshold):
        """Even with spuriously low deadlock thresholds (forcing kills
        and retransmissions), every logical message arrives once."""
        n, shifts, sizes = args
        shifts = [s % n or 1 for s in shifts]
        program = _random_program(n, shifts, sizes)
        config = SimConfig(max_cycles=5_000_000, deadlock_threshold=threshold)
        result = simulate(program, torus_for(n), config)
        assert result.delivered_packets == program.total_messages
